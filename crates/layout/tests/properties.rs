//! Property tests: rectangle algebra, GDSII round trips and DRC soundness.

use chipforge_layout::{drc, gds, Layout, LayoutCell, Rect};
use chipforge_pdk::{DesignRules, Layer, TechnologyNode};
use proptest::prelude::*;

fn any_rect() -> impl Strategy<Value = Rect> {
    (
        -10_000i32..10_000,
        -10_000i32..10_000,
        1i32..5_000,
        1i32..5_000,
    )
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

fn any_layer() -> impl Strategy<Value = Layer> {
    prop_oneof![
        Just(Layer::Diffusion),
        Just(Layer::Poly),
        (1u8..6).prop_map(Layer::Metal),
        (1u8..5).prop_map(Layer::Via),
    ]
}

proptest! {
    #[test]
    fn separation_is_symmetric_and_zero_iff_touching(a in any_rect(), b in any_rect()) {
        prop_assert_eq!(a.separation(&b), b.separation(&a));
        if a.touches(&b) {
            prop_assert_eq!(a.separation(&b), 0);
        } else {
            prop_assert!(a.separation(&b) > 0);
        }
    }

    #[test]
    fn expansion_preserves_containment(r in any_rect(), margin in 0i32..1000) {
        let grown = r.expanded(margin);
        prop_assert!(grown.contains(&r));
        prop_assert_eq!(grown.width(), r.width() + 2 * margin);
    }

    #[test]
    fn translation_preserves_dimensions(r in any_rect(), dx in -500i32..500, dy in -500i32..500) {
        let moved = r.translated(dx, dy);
        prop_assert_eq!(moved.width(), r.width());
        prop_assert_eq!(moved.height(), r.height());
        prop_assert_eq!(moved.area(), r.area());
    }

    #[test]
    fn overlap_implies_touch(a in any_rect(), b in any_rect()) {
        if a.overlaps(&b) {
            prop_assert!(a.touches(&b));
        }
    }

    #[test]
    fn gds_round_trips_random_layouts(
        shapes in proptest::collection::vec((any_layer(), any_rect()), 1..40),
        name in "[a-zA-Z][a-zA-Z0-9_]{0,12}",
    ) {
        let mut cell = LayoutCell::new(name.clone());
        for (layer, rect) in &shapes {
            cell.add_shape(*layer, *rect);
        }
        let mut layout = Layout::new("proplib", 1e-9);
        layout.add_cell(cell);
        let bytes = gds::write_gds(&layout);
        let parsed = gds::read_gds(&bytes).expect("round trip parses");
        let original = layout.cell(&name).expect("exists");
        let restored = parsed.cell(&name).expect("exists after round trip");
        prop_assert_eq!(restored.shapes(), original.shapes());
    }

    #[test]
    fn drc_accepts_well_separated_grids(cols in 1usize..5, rows in 1usize..5) {
        // A grid of fat, well-spaced M1 rectangles must always pass.
        let rules = DesignRules::for_node(TechnologyNode::N130);
        let w = (rules.min_width_um(Layer::Metal(1)) * 1000.0) as i32 * 3;
        let s = (rules.min_spacing_um(Layer::Metal(1)) * 1000.0) as i32 * 3;
        let pitch = w + s;
        let mut cell = LayoutCell::new("grid");
        for i in 0..cols {
            for j in 0..rows {
                let x = i as i32 * pitch;
                let y = j as i32 * pitch;
                cell.add_shape(Layer::Metal(1), Rect::new(x, y, x + w, y + w));
            }
        }
        let mut layout = Layout::new("t", 1e-9);
        layout.add_cell(cell);
        let report = drc::check(&layout, &rules);
        prop_assert!(report.is_clean(), "{:?}", report.violations.first());
    }

    #[test]
    fn drc_flags_every_too_narrow_shape(narrow_count in 1usize..10) {
        let rules = DesignRules::for_node(TechnologyNode::N130);
        let min_w = (rules.min_width_um(Layer::Metal(1)) * 1000.0) as i32;
        let mut cell = LayoutCell::new("narrow");
        for i in 0..narrow_count {
            // Far apart, each 1 nm too narrow.
            let x = i as i32 * 100_000;
            cell.add_shape(Layer::Metal(1), Rect::new(x, 0, x + 10_000, min_w - 1));
        }
        let mut layout = Layout::new("t", 1e-9);
        layout.add_cell(cell);
        let report = drc::check(&layout, &rules);
        prop_assert_eq!(report.count_of(drc::ViolationKind::Width), narrow_count);
    }
}
