//! Cell instances and their Boolean/sequential functions.

use crate::ids::{CellId, NetId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The logical function computed by a [`Cell`].
///
/// The set covers the primitive gates produced by the `chipforge-synth`
/// technology mapper plus the sequential elements supported by the flow.
/// All functions have exactly one output. Input pin order is significant
/// and documented per variant.
///
/// ```
/// use chipforge_netlist::CellFunction;
/// assert_eq!(CellFunction::Nand2.input_count(), 2);
/// assert!(CellFunction::Dff.is_sequential());
/// assert_eq!(CellFunction::Mux2.eval(&[false, true, true]), true);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellFunction {
    /// Constant logic 0 (tie-low cell). No inputs.
    Const0,
    /// Constant logic 1 (tie-high cell). No inputs.
    Const1,
    /// Buffer: `y = a`.
    Buf,
    /// Inverter: `y = !a`.
    Inv,
    /// Two-input AND: `y = a & b`.
    And2,
    /// Two-input NAND: `y = !(a & b)`.
    Nand2,
    /// Two-input OR: `y = a | b`.
    Or2,
    /// Two-input NOR: `y = !(a | b)`.
    Nor2,
    /// Two-input XOR: `y = a ^ b`.
    Xor2,
    /// Two-input XNOR: `y = !(a ^ b)`.
    Xnor2,
    /// Three-input AND: `y = a & b & c`.
    And3,
    /// Three-input NAND: `y = !(a & b & c)`.
    Nand3,
    /// Three-input OR: `y = a | b | c`.
    Or3,
    /// Three-input NOR: `y = !(a | b | c)`.
    Nor3,
    /// AND-OR-invert: `y = !((a & b) | c)`. Inputs `[a, b, c]`.
    Aoi21,
    /// OR-AND-invert: `y = !((a | b) & c)`. Inputs `[a, b, c]`.
    Oai21,
    /// Two-to-one multiplexer: `y = s ? b : a`. Inputs `[a, b, s]`.
    Mux2,
    /// Majority-of-three: `y = ab | ac | bc` (full-adder carry).
    Maj3,
    /// Three-input XOR: `y = a ^ b ^ c` (full-adder sum).
    Xor3,
    /// Rising-edge D flip-flop on the implicit clock. Inputs `[d]`.
    Dff,
    /// D flip-flop with active-high enable. Inputs `[d, en]`.
    DffEn,
}

impl CellFunction {
    /// All functions, in a stable order (useful for iteration in library
    /// generators and tests).
    pub const ALL: [CellFunction; 21] = [
        CellFunction::Const0,
        CellFunction::Const1,
        CellFunction::Buf,
        CellFunction::Inv,
        CellFunction::And2,
        CellFunction::Nand2,
        CellFunction::Or2,
        CellFunction::Nor2,
        CellFunction::Xor2,
        CellFunction::Xnor2,
        CellFunction::And3,
        CellFunction::Nand3,
        CellFunction::Or3,
        CellFunction::Nor3,
        CellFunction::Aoi21,
        CellFunction::Oai21,
        CellFunction::Mux2,
        CellFunction::Maj3,
        CellFunction::Xor3,
        CellFunction::Dff,
        CellFunction::DffEn,
    ];

    /// Number of input pins of the function.
    #[must_use]
    pub fn input_count(self) -> usize {
        match self {
            CellFunction::Const0 | CellFunction::Const1 => 0,
            CellFunction::Buf | CellFunction::Inv | CellFunction::Dff => 1,
            CellFunction::And2
            | CellFunction::Nand2
            | CellFunction::Or2
            | CellFunction::Nor2
            | CellFunction::Xor2
            | CellFunction::Xnor2
            | CellFunction::DffEn => 2,
            CellFunction::And3
            | CellFunction::Nand3
            | CellFunction::Or3
            | CellFunction::Nor3
            | CellFunction::Aoi21
            | CellFunction::Oai21
            | CellFunction::Mux2
            | CellFunction::Maj3
            | CellFunction::Xor3 => 3,
        }
    }

    /// Returns `true` for state-holding elements (flip-flops).
    #[must_use]
    pub fn is_sequential(self) -> bool {
        matches!(self, CellFunction::Dff | CellFunction::DffEn)
    }

    /// Returns `true` for constant drivers (tie cells).
    #[must_use]
    pub fn is_constant(self) -> bool {
        matches!(self, CellFunction::Const0 | CellFunction::Const1)
    }

    /// Evaluates the combinational function on the given input values.
    ///
    /// For sequential functions this evaluates the *next-state* function
    /// given the current output as unavailable: `Dff` returns `d`, `DffEn`
    /// is evaluated by the simulator which supplies the held value; calling
    /// `eval` on `DffEn` returns `d` when `en` is high and panics otherwise
    /// is avoided by returning `d & en`-style semantics — therefore the
    /// simulator in `chipforge-hdl`/`chipforge-synth` special-cases `DffEn`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.input_count()`.
    #[must_use]
    pub fn eval(self, inputs: &[bool]) -> bool {
        assert_eq!(
            inputs.len(),
            self.input_count(),
            "wrong input count for {self}"
        );
        match self {
            CellFunction::Const0 => false,
            CellFunction::Const1 => true,
            CellFunction::Buf => inputs[0],
            CellFunction::Inv => !inputs[0],
            CellFunction::And2 => inputs[0] & inputs[1],
            CellFunction::Nand2 => !(inputs[0] & inputs[1]),
            CellFunction::Or2 => inputs[0] | inputs[1],
            CellFunction::Nor2 => !(inputs[0] | inputs[1]),
            CellFunction::Xor2 => inputs[0] ^ inputs[1],
            CellFunction::Xnor2 => !(inputs[0] ^ inputs[1]),
            CellFunction::And3 => inputs[0] & inputs[1] & inputs[2],
            CellFunction::Nand3 => !(inputs[0] & inputs[1] & inputs[2]),
            CellFunction::Or3 => inputs[0] | inputs[1] | inputs[2],
            CellFunction::Nor3 => !(inputs[0] | inputs[1] | inputs[2]),
            CellFunction::Aoi21 => !((inputs[0] & inputs[1]) | inputs[2]),
            CellFunction::Oai21 => !((inputs[0] | inputs[1]) & inputs[2]),
            CellFunction::Mux2 => {
                if inputs[2] {
                    inputs[1]
                } else {
                    inputs[0]
                }
            }
            CellFunction::Maj3 => {
                (inputs[0] & inputs[1]) | (inputs[0] & inputs[2]) | (inputs[1] & inputs[2])
            }
            CellFunction::Xor3 => inputs[0] ^ inputs[1] ^ inputs[2],
            CellFunction::Dff => inputs[0],
            CellFunction::DffEn => inputs[0] & inputs[1],
        }
    }

    /// Evaluates the function on 64 input vectors at once, one per bit
    /// lane of the `u64` words (bit-parallel simulation).
    ///
    /// Lane `i` of the result equals `eval` applied to lane `i` of every
    /// input word. Sequential functions follow the same next-state
    /// convention as [`CellFunction::eval`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.input_count()`.
    #[must_use]
    pub fn eval64(self, inputs: &[u64]) -> u64 {
        assert_eq!(
            inputs.len(),
            self.input_count(),
            "wrong input count for {self}"
        );
        match self {
            CellFunction::Const0 => 0,
            CellFunction::Const1 => u64::MAX,
            CellFunction::Buf => inputs[0],
            CellFunction::Inv => !inputs[0],
            CellFunction::And2 => inputs[0] & inputs[1],
            CellFunction::Nand2 => !(inputs[0] & inputs[1]),
            CellFunction::Or2 => inputs[0] | inputs[1],
            CellFunction::Nor2 => !(inputs[0] | inputs[1]),
            CellFunction::Xor2 => inputs[0] ^ inputs[1],
            CellFunction::Xnor2 => !(inputs[0] ^ inputs[1]),
            CellFunction::And3 => inputs[0] & inputs[1] & inputs[2],
            CellFunction::Nand3 => !(inputs[0] & inputs[1] & inputs[2]),
            CellFunction::Or3 => inputs[0] | inputs[1] | inputs[2],
            CellFunction::Nor3 => !(inputs[0] | inputs[1] | inputs[2]),
            CellFunction::Aoi21 => !((inputs[0] & inputs[1]) | inputs[2]),
            CellFunction::Oai21 => !((inputs[0] | inputs[1]) & inputs[2]),
            CellFunction::Mux2 => (inputs[2] & inputs[1]) | (!inputs[2] & inputs[0]),
            CellFunction::Maj3 => {
                (inputs[0] & inputs[1]) | (inputs[0] & inputs[2]) | (inputs[1] & inputs[2])
            }
            CellFunction::Xor3 => inputs[0] ^ inputs[1] ^ inputs[2],
            CellFunction::Dff => inputs[0],
            CellFunction::DffEn => inputs[0] & inputs[1],
        }
    }

    /// Canonical pin names, in pin order, matching [`CellFunction::eval`].
    #[must_use]
    pub fn pin_names(self) -> &'static [&'static str] {
        match self {
            CellFunction::Const0 | CellFunction::Const1 => &[],
            CellFunction::Buf | CellFunction::Inv => &["A"],
            CellFunction::Dff => &["D"],
            CellFunction::DffEn => &["D", "EN"],
            CellFunction::And2
            | CellFunction::Nand2
            | CellFunction::Or2
            | CellFunction::Nor2
            | CellFunction::Xor2
            | CellFunction::Xnor2 => &["A", "B"],
            CellFunction::Mux2 => &["A", "B", "S"],
            CellFunction::And3
            | CellFunction::Nand3
            | CellFunction::Or3
            | CellFunction::Nor3
            | CellFunction::Maj3
            | CellFunction::Xor3 => &["A", "B", "C"],
            CellFunction::Aoi21 | CellFunction::Oai21 => &["A", "B", "C"],
        }
    }
}

impl fmt::Display for CellFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CellFunction::Const0 => "CONST0",
            CellFunction::Const1 => "CONST1",
            CellFunction::Buf => "BUF",
            CellFunction::Inv => "INV",
            CellFunction::And2 => "AND2",
            CellFunction::Nand2 => "NAND2",
            CellFunction::Or2 => "OR2",
            CellFunction::Nor2 => "NOR2",
            CellFunction::Xor2 => "XOR2",
            CellFunction::Xnor2 => "XNOR2",
            CellFunction::And3 => "AND3",
            CellFunction::Nand3 => "NAND3",
            CellFunction::Or3 => "OR3",
            CellFunction::Nor3 => "NOR3",
            CellFunction::Aoi21 => "AOI21",
            CellFunction::Oai21 => "OAI21",
            CellFunction::Mux2 => "MUX2",
            CellFunction::Maj3 => "MAJ3",
            CellFunction::Xor3 => "XOR3",
            CellFunction::Dff => "DFF",
            CellFunction::DffEn => "DFFE",
        };
        f.write_str(s)
    }
}

/// An instantiated gate inside a [`crate::Netlist`].
///
/// A cell records its instance name, logical [`CellFunction`], the name of
/// the library cell chosen by technology mapping (e.g. `"NAND2_X1"`), its
/// input nets in pin order and its single output net.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cell {
    pub(crate) id: CellId,
    pub(crate) name: String,
    pub(crate) function: CellFunction,
    pub(crate) lib_cell: String,
    pub(crate) inputs: Vec<NetId>,
    pub(crate) output: NetId,
}

impl Cell {
    /// Identifier of this cell within its owning netlist.
    #[must_use]
    pub fn id(&self) -> CellId {
        self.id
    }

    /// Instance name (unique within the netlist).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Logical function of the cell.
    #[must_use]
    pub fn function(&self) -> CellFunction {
        self.function
    }

    /// Name of the library cell implementing the function.
    #[must_use]
    pub fn lib_cell(&self) -> &str {
        &self.lib_cell
    }

    /// Rebinds the cell to a different library cell (e.g. after sizing).
    pub fn set_lib_cell(&mut self, lib_cell: impl Into<String>) {
        self.lib_cell = lib_cell.into();
    }

    /// Input nets in pin order (see [`CellFunction::pin_names`]).
    #[must_use]
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// The single output net.
    #[must_use]
    pub fn output(&self) -> NetId {
        self.output
    }

    /// Returns `true` for state-holding cells.
    #[must_use]
    pub fn is_sequential(&self) -> bool {
        self.function.is_sequential()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_counts_match_pin_names() {
        for f in [
            CellFunction::Const0,
            CellFunction::Inv,
            CellFunction::Nand2,
            CellFunction::Mux2,
            CellFunction::Aoi21,
            CellFunction::Dff,
            CellFunction::DffEn,
            CellFunction::Xor3,
        ] {
            assert_eq!(f.input_count(), f.pin_names().len(), "{f}");
        }
    }

    #[test]
    fn eval_truth_tables() {
        use CellFunction as F;
        assert!(!F::Const0.eval(&[]));
        assert!(F::Const1.eval(&[]));
        assert!(F::Inv.eval(&[false]));
        assert!(!F::Nand2.eval(&[true, true]));
        assert!(F::Nand2.eval(&[true, false]));
        assert!(F::Nor2.eval(&[false, false]));
        assert!(F::Xor2.eval(&[true, false]));
        assert!(!F::Xnor2.eval(&[true, false]));
        assert!(F::Aoi21.eval(&[false, true, false]));
        assert!(!F::Aoi21.eval(&[true, true, false]));
        assert!(F::Oai21.eval(&[false, false, true]));
        assert!(!F::Oai21.eval(&[true, false, true]));
        assert!(F::Maj3.eval(&[true, true, false]));
        assert!(!F::Maj3.eval(&[true, false, false]));
        assert!(F::Xor3.eval(&[true, true, true]));
        assert!(!F::Xor3.eval(&[true, true, false]));
    }

    #[test]
    fn mux_selects_correct_input() {
        // s = 0 -> a, s = 1 -> b
        assert!(!CellFunction::Mux2.eval(&[false, true, false]));
        assert!(CellFunction::Mux2.eval(&[false, true, true]));
    }

    #[test]
    #[should_panic(expected = "wrong input count")]
    fn eval_panics_on_arity_mismatch() {
        let _ = CellFunction::And2.eval(&[true]);
    }

    #[test]
    fn eval64_matches_eval_on_every_lane() {
        // Exhaust every input combination of every function: lane `i`
        // carries input pattern `i`, so 8 lanes cover 3-input cells and
        // the remaining lanes repeat the pattern (masked off here).
        for f in CellFunction::ALL {
            let arity = f.input_count();
            let words: Vec<u64> = (0..arity)
                .map(|pin| {
                    let mut w = 0u64;
                    for lane in 0..64 {
                        if (lane >> pin) & 1 == 1 {
                            w |= 1 << lane;
                        }
                    }
                    w
                })
                .collect();
            let parallel = f.eval64(&words);
            for lane in 0..64u64 {
                let scalar: Vec<bool> = (0..arity).map(|pin| (lane >> pin) & 1 == 1).collect();
                assert_eq!(
                    (parallel >> lane) & 1 == 1,
                    f.eval(&scalar),
                    "{f} lane {lane}"
                );
            }
        }
    }

    #[test]
    fn sequential_classification() {
        assert!(CellFunction::Dff.is_sequential());
        assert!(CellFunction::DffEn.is_sequential());
        assert!(!CellFunction::Nand2.is_sequential());
        assert!(CellFunction::Const1.is_constant());
        assert!(!CellFunction::Buf.is_constant());
    }

    #[test]
    fn display_names_are_unique() {
        use std::collections::HashSet;
        let mut names = HashSet::new();
        for f in [
            CellFunction::Const0,
            CellFunction::Const1,
            CellFunction::Buf,
            CellFunction::Inv,
            CellFunction::And2,
            CellFunction::Nand2,
            CellFunction::Or2,
            CellFunction::Nor2,
            CellFunction::Xor2,
            CellFunction::Xnor2,
            CellFunction::And3,
            CellFunction::Nand3,
            CellFunction::Or3,
            CellFunction::Nor3,
            CellFunction::Aoi21,
            CellFunction::Oai21,
            CellFunction::Mux2,
            CellFunction::Maj3,
            CellFunction::Xor3,
            CellFunction::Dff,
            CellFunction::DffEn,
        ] {
            assert!(names.insert(f.to_string()), "duplicate name {f}");
        }
        assert_eq!(names.len(), 21);
    }
}
