//! Error type shared by netlist construction and validation.

use crate::ids::{CellId, NetId};
use std::error::Error;
use std::fmt;

/// Errors produced while building, validating or parsing a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A cell or net name was declared twice.
    DuplicateName(String),
    /// A cell was connected with the wrong number of input nets.
    ArityMismatch {
        /// Instance name of the offending cell.
        cell: String,
        /// Number of inputs the function expects.
        expected: usize,
        /// Number of inputs supplied.
        found: usize,
    },
    /// Two drivers were attached to the same net.
    MultipleDrivers(NetId),
    /// A net referenced by a cell or port does not exist.
    UnknownNet(NetId),
    /// A cell id does not exist.
    UnknownCell(CellId),
    /// Validation found a net with no driver.
    UndrivenNet {
        /// The floating net.
        net: NetId,
        /// Its name, for diagnostics.
        name: String,
    },
    /// The combinational portion of the netlist contains a cycle.
    CombinationalLoop {
        /// A cell participating in the cycle.
        cell: CellId,
        /// Its instance name.
        name: String,
    },
    /// Structural Verilog input could not be parsed.
    Parse {
        /// 1-based source line of the problem.
        line: usize,
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateName(name) => write!(f, "duplicate name `{name}`"),
            NetlistError::ArityMismatch {
                cell,
                expected,
                found,
            } => write!(
                f,
                "cell `{cell}` expects {expected} inputs but {found} were supplied"
            ),
            NetlistError::MultipleDrivers(net) => {
                write!(f, "net {net} already has a driver")
            }
            NetlistError::UnknownNet(net) => write!(f, "unknown net {net}"),
            NetlistError::UnknownCell(cell) => write!(f, "unknown cell {cell}"),
            NetlistError::UndrivenNet { net, name } => {
                write!(f, "net {net} (`{name}`) has no driver")
            }
            NetlistError::CombinationalLoop { cell, name } => {
                write!(f, "combinational loop through cell {cell} (`{name}`)")
            }
            NetlistError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_specific() {
        let err = NetlistError::DuplicateName("foo".into());
        assert_eq!(err.to_string(), "duplicate name `foo`");
        let err = NetlistError::ArityMismatch {
            cell: "u1".into(),
            expected: 2,
            found: 3,
        };
        assert!(err.to_string().contains("expects 2 inputs"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
