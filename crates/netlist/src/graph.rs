//! The flat gate-level netlist graph.

use crate::cell::{Cell, CellFunction};
use crate::error::NetlistError;
use crate::ids::{CellId, NetId};
use crate::net::{Net, NetDriver};
use crate::stats::NetlistStats;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// A flat, mapped, single-clock gate-level netlist.
///
/// The netlist is an append-only graph: cells and nets can be added and
/// rewired, but identifiers stay stable for the lifetime of the object,
/// which lets downstream engines (placement, timing) use dense vectors
/// indexed by [`CellId`]/[`NetId`].
///
/// See the [crate-level documentation](crate) for a construction example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Netlist {
    name: String,
    cells: Vec<Cell>,
    nets: Vec<Net>,
    /// Primary inputs as `(port_name, net)` in declaration order.
    inputs: Vec<(String, NetId)>,
    /// Primary outputs as `(port_name, net)` in declaration order.
    outputs: Vec<(String, NetId)>,
    /// Used-name set for uniquification. A sorted map rather than a hash
    /// map so netlist JSON serializes deterministically (snapshot and
    /// byte-identity checks depend on stable field ordering).
    names: BTreeMap<String, ()>,
}

impl Netlist {
    /// Creates an empty netlist with the given module name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            cells: Vec::new(),
            nets: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            names: BTreeMap::new(),
        }
    }

    /// Module name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of cells.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of nets.
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Primary inputs as `(port_name, net)` pairs in declaration order.
    #[must_use]
    pub fn inputs(&self) -> &[(String, NetId)] {
        &self.inputs
    }

    /// Primary outputs as `(port_name, net)` pairs in declaration order.
    #[must_use]
    pub fn outputs(&self) -> &[(String, NetId)] {
        &self.outputs
    }

    /// Adds a fresh net with a unique name.
    ///
    /// If `name` collides with an existing name a numeric suffix is
    /// appended, so `add_net` never fails.
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        let name = self.unique_name(name.into());
        let id = NetId::new(self.nets.len());
        self.nets.push(Net {
            id,
            name,
            driver: None,
            sinks: Vec::new(),
            is_output: false,
        });
        id
    }

    /// Declares a primary input port and returns the net it drives.
    pub fn add_input(&mut self, port: impl Into<String>) -> NetId {
        let port = port.into();
        let net = self.add_net(port.clone());
        let index = self.inputs.len();
        self.nets[net.index()].driver = Some(NetDriver::Input(index));
        self.inputs.push((port, net));
        net
    }

    /// Marks an existing net as driving a primary output port.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownNet`] if `net` does not exist.
    pub fn mark_output(&mut self, port: impl Into<String>, net: NetId) -> Result<(), NetlistError> {
        if net.index() >= self.nets.len() {
            return Err(NetlistError::UnknownNet(net));
        }
        self.nets[net.index()].is_output = true;
        self.outputs.push((port.into(), net));
        Ok(())
    }

    /// Instantiates a cell driving `output` from `inputs`.
    ///
    /// # Errors
    ///
    /// * [`NetlistError::ArityMismatch`] if `inputs.len()` does not match
    ///   [`CellFunction::input_count`];
    /// * [`NetlistError::UnknownNet`] if any referenced net does not exist;
    /// * [`NetlistError::MultipleDrivers`] if `output` already has a driver.
    pub fn add_cell(
        &mut self,
        name: impl Into<String>,
        function: CellFunction,
        lib_cell: impl Into<String>,
        inputs: &[NetId],
        output: NetId,
    ) -> Result<CellId, NetlistError> {
        let name = self.unique_name(name.into());
        if inputs.len() != function.input_count() {
            return Err(NetlistError::ArityMismatch {
                cell: name,
                expected: function.input_count(),
                found: inputs.len(),
            });
        }
        for &net in inputs.iter().chain(std::iter::once(&output)) {
            if net.index() >= self.nets.len() {
                return Err(NetlistError::UnknownNet(net));
            }
        }
        if self.nets[output.index()].driver.is_some() {
            return Err(NetlistError::MultipleDrivers(output));
        }
        let id = CellId::new(self.cells.len());
        for (pin, &net) in inputs.iter().enumerate() {
            self.nets[net.index()].sinks.push((id, pin));
        }
        self.nets[output.index()].driver = Some(NetDriver::Cell(id));
        self.cells.push(Cell {
            id,
            name,
            function,
            lib_cell: lib_cell.into(),
            inputs: inputs.to_vec(),
            output,
        });
        Ok(id)
    }

    /// Looks up a cell by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this netlist.
    #[must_use]
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// Mutable access to a cell (for re-sizing `lib_cell` bindings).
    #[must_use]
    pub fn cell_mut(&mut self, id: CellId) -> &mut Cell {
        &mut self.cells[id.index()]
    }

    /// Looks up a net by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this netlist.
    #[must_use]
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Iterates over all cells in id order.
    pub fn cells(&self) -> impl Iterator<Item = &Cell> {
        self.cells.iter()
    }

    /// Iterates over all nets in id order.
    pub fn nets(&self) -> impl Iterator<Item = &Net> {
        self.nets.iter()
    }

    /// Finds a net by name (linear scan; intended for tests and I/O).
    #[must_use]
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.nets.iter().find(|n| n.name == name).map(|n| n.id)
    }

    /// Finds a cell by instance name (linear scan; tests and I/O only).
    #[must_use]
    pub fn find_cell(&self, name: &str) -> Option<CellId> {
        self.cells.iter().find(|c| c.name == name).map(|c| c.id)
    }

    /// Checks structural invariants: every net is driven and the
    /// combinational core is acyclic.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UndrivenNet`] or
    /// [`NetlistError::CombinationalLoop`] on the first violation found.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for net in &self.nets {
            if net.driver.is_none() {
                return Err(NetlistError::UndrivenNet {
                    net: net.id,
                    name: net.name.clone(),
                });
            }
        }
        self.combinational_order().map(|_| ())
    }

    /// Returns all combinational cells in topological order.
    ///
    /// Sequential cell outputs and primary inputs are treated as sources;
    /// sequential cells themselves are not part of the order.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalLoop`] if the combinational
    /// core contains a cycle.
    pub fn combinational_order(&self) -> Result<Vec<CellId>, NetlistError> {
        // Kahn's algorithm over combinational cells only.
        let mut indegree = vec![0usize; self.cells.len()];
        for cell in &self.cells {
            if cell.function.is_sequential() {
                continue;
            }
            for &input in &cell.inputs {
                if let Some(NetDriver::Cell(src)) = self.nets[input.index()].driver {
                    if !self.cells[src.index()].function.is_sequential() {
                        indegree[cell.id.index()] += 1;
                    }
                }
            }
        }
        let mut queue: Vec<CellId> = self
            .cells
            .iter()
            .filter(|c| !c.function.is_sequential() && indegree[c.id.index()] == 0)
            .map(|c| c.id)
            .collect();
        let mut order = Vec::with_capacity(self.cells.len());
        while let Some(id) = queue.pop() {
            order.push(id);
            let out = self.cells[id.index()].output;
            for &(sink, _) in &self.nets[out.index()].sinks {
                if self.cells[sink.index()].function.is_sequential() {
                    continue;
                }
                indegree[sink.index()] -= 1;
                if indegree[sink.index()] == 0 {
                    queue.push(sink);
                }
            }
        }
        let comb_total = self
            .cells
            .iter()
            .filter(|c| !c.function.is_sequential())
            .count();
        if order.len() != comb_total {
            let cell = self
                .cells
                .iter()
                .find(|c| !c.function.is_sequential() && indegree[c.id.index()] > 0)
                .expect("a cell with nonzero indegree must remain");
            return Err(NetlistError::CombinationalLoop {
                cell: cell.id,
                name: cell.name.clone(),
            });
        }
        Ok(order)
    }

    /// Number of logic levels on the longest combinational path.
    ///
    /// Returns 0 for purely sequential or empty netlists.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError::CombinationalLoop`].
    pub fn logic_depth(&self) -> Result<usize, NetlistError> {
        let order = self.combinational_order()?;
        let mut level = vec![0usize; self.cells.len()];
        let mut max = 0;
        // `order` from Kahn is a valid topological order (sources first).
        for id in order {
            let cell = &self.cells[id.index()];
            let mut lvl = 1;
            for &input in &cell.inputs {
                if let Some(NetDriver::Cell(src)) = self.nets[input.index()].driver {
                    if !self.cells[src.index()].function.is_sequential() {
                        lvl = lvl.max(level[src.index()] + 1);
                    }
                }
            }
            level[id.index()] = lvl;
            max = max.max(lvl);
        }
        Ok(max)
    }

    /// Simulates one evaluation of the combinational logic given primary
    /// input values and current flip-flop states.
    ///
    /// `ff_state` maps sequential [`CellId`]s to their current output value;
    /// missing entries default to `false`. Returns the value of every net.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError::CombinationalLoop`]; returns
    /// [`NetlistError::ArityMismatch`]-style errors via `validate` first if
    /// the netlist is malformed.
    ///
    /// # Panics
    ///
    /// Panics if `input_values.len() != self.inputs().len()`.
    pub fn eval_combinational(
        &self,
        input_values: &[bool],
        ff_state: &HashMap<CellId, bool>,
    ) -> Result<Vec<bool>, NetlistError> {
        assert_eq!(
            input_values.len(),
            self.inputs.len(),
            "one value per primary input required"
        );
        let order = self.combinational_order()?;
        let mut net_values = vec![false; self.nets.len()];
        for (index, &(_, net)) in self.inputs.iter().enumerate() {
            net_values[net.index()] = input_values[index];
        }
        for cell in &self.cells {
            if cell.function.is_sequential() {
                let value = ff_state.get(&cell.id).copied().unwrap_or(false);
                net_values[cell.output.index()] = value;
            }
        }
        for id in order {
            let cell = &self.cells[id.index()];
            let inputs: Vec<bool> = cell.inputs.iter().map(|n| net_values[n.index()]).collect();
            net_values[cell.output.index()] = cell.function.eval(&inputs);
        }
        Ok(net_values)
    }

    /// Bit-parallel variant of [`Netlist::eval_combinational`]: evaluates
    /// 64 independent input vectors at once, one per bit lane of the
    /// `u64` words.
    ///
    /// Lane `i` of every returned word equals the scalar evaluation of
    /// lane `i` of the inputs and flip-flop states. One topological pass
    /// therefore replaces 64 scalar passes, which is what makes random
    /// simulation-based equivalence checking fast.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError::CombinationalLoop`].
    ///
    /// # Panics
    ///
    /// Panics if `input_values.len() != self.inputs().len()`.
    pub fn eval_combinational64(
        &self,
        input_values: &[u64],
        ff_state: &HashMap<CellId, u64>,
    ) -> Result<Vec<u64>, NetlistError> {
        assert_eq!(
            input_values.len(),
            self.inputs.len(),
            "one value per primary input required"
        );
        let order = self.combinational_order()?;
        let mut net_values = vec![0u64; self.nets.len()];
        for (index, &(_, net)) in self.inputs.iter().enumerate() {
            net_values[net.index()] = input_values[index];
        }
        for cell in &self.cells {
            if cell.function.is_sequential() {
                let value = ff_state.get(&cell.id).copied().unwrap_or(0);
                net_values[cell.output.index()] = value;
            }
        }
        let mut inputs = Vec::new();
        for id in order {
            let cell = &self.cells[id.index()];
            inputs.clear();
            inputs.extend(cell.inputs.iter().map(|n| net_values[n.index()]));
            net_values[cell.output.index()] = cell.function.eval64(&inputs);
        }
        Ok(net_values)
    }

    /// Advances flip-flop state by one clock edge given evaluated net
    /// values (from [`Netlist::eval_combinational`]).
    #[must_use]
    pub fn next_state(
        &self,
        net_values: &[bool],
        ff_state: &HashMap<CellId, bool>,
    ) -> HashMap<CellId, bool> {
        let mut next = HashMap::new();
        for cell in &self.cells {
            match cell.function {
                CellFunction::Dff => {
                    next.insert(cell.id, net_values[cell.inputs[0].index()]);
                }
                CellFunction::DffEn => {
                    let d = net_values[cell.inputs[0].index()];
                    let en = net_values[cell.inputs[1].index()];
                    let held = ff_state.get(&cell.id).copied().unwrap_or(false);
                    next.insert(cell.id, if en { d } else { held });
                }
                _ => {}
            }
        }
        next
    }

    /// Bit-parallel variant of [`Netlist::next_state`]: advances all 64
    /// lanes of flip-flop state by one clock edge.
    #[must_use]
    pub fn next_state64(
        &self,
        net_values: &[u64],
        ff_state: &HashMap<CellId, u64>,
    ) -> HashMap<CellId, u64> {
        let mut next = HashMap::new();
        for cell in &self.cells {
            match cell.function {
                CellFunction::Dff => {
                    next.insert(cell.id, net_values[cell.inputs[0].index()]);
                }
                CellFunction::DffEn => {
                    let d = net_values[cell.inputs[0].index()];
                    let en = net_values[cell.inputs[1].index()];
                    let held = ff_state.get(&cell.id).copied().unwrap_or(0);
                    // Per-lane enable: lanes with en high take d, the
                    // rest hold their value.
                    next.insert(cell.id, (en & d) | (!en & held));
                }
                _ => {}
            }
        }
        next
    }

    /// Summary statistics for reporting.
    #[must_use]
    pub fn stats(&self) -> NetlistStats {
        let mut seq = 0usize;
        let mut comb = 0usize;
        for cell in &self.cells {
            if cell.function.is_sequential() {
                seq += 1;
            } else {
                comb += 1;
            }
        }
        let total_fanout: usize = self.nets.iter().map(Net::fanout).sum();
        let driven = self.nets.iter().filter(|n| n.driver.is_some()).count();
        NetlistStats {
            cells: self.cells.len(),
            combinational_cells: comb,
            sequential_cells: seq,
            nets: self.nets.len(),
            inputs: self.inputs.len(),
            outputs: self.outputs.len(),
            average_fanout: if driven == 0 {
                0.0
            } else {
                total_fanout as f64 / driven as f64
            },
            logic_depth: self.logic_depth().unwrap_or(0),
        }
    }

    /// Cell counts per function, in [`CellFunction::ALL`] order (functions
    /// with zero instances are omitted).
    #[must_use]
    pub fn function_histogram(&self) -> Vec<(CellFunction, usize)> {
        CellFunction::ALL
            .into_iter()
            .filter_map(|f| {
                let count = self.cells.iter().filter(|c| c.function == f).count();
                (count > 0).then_some((f, count))
            })
            .collect()
    }

    fn unique_name(&mut self, base: String) -> String {
        if self.names.insert(base.clone(), ()).is_none() {
            return base;
        }
        let mut counter = 1usize;
        loop {
            let candidate = format!("{base}_{counter}");
            if self.names.insert(candidate.clone(), ()).is_none() {
                return candidate;
            }
            counter += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_adder() -> Netlist {
        let mut nl = Netlist::new("full_adder");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let cin = nl.add_input("cin");
        let sum = nl.add_net("sum");
        let cout = nl.add_net("cout");
        nl.add_cell("u_sum", CellFunction::Xor3, "XOR3_X1", &[a, b, cin], sum)
            .unwrap();
        nl.add_cell("u_carry", CellFunction::Maj3, "MAJ3_X1", &[a, b, cin], cout)
            .unwrap();
        nl.mark_output("sum", sum).unwrap();
        nl.mark_output("cout", cout).unwrap();
        nl
    }

    #[test]
    fn full_adder_truth_table() {
        let nl = full_adder();
        nl.validate().unwrap();
        let state = HashMap::new();
        for a in [false, true] {
            for b in [false, true] {
                for cin in [false, true] {
                    let values = nl.eval_combinational(&[a, b, cin], &state).unwrap();
                    let sum = values[nl.find_net("sum").unwrap().index()];
                    let cout = values[nl.find_net("cout").unwrap().index()];
                    let expected = u8::from(a) + u8::from(b) + u8::from(cin);
                    assert_eq!(u8::from(sum) + 2 * u8::from(cout), expected);
                }
            }
        }
    }

    #[test]
    fn bit_parallel_eval_matches_scalar_lanes() {
        // Full adder plus an enabled flip-flop on the carry: exercises
        // combinational eval and both next-state rules across lanes.
        let mut nl = full_adder();
        let en = nl.add_input("en");
        let cout = nl.find_net("cout").unwrap();
        let q = nl.add_net("q");
        let ff = nl
            .add_cell("u_hold", CellFunction::DffEn, "DFFE_X1", &[cout, en], q)
            .unwrap();
        nl.mark_output("q", q).unwrap();
        nl.validate().unwrap();

        // Deterministic per-lane stimulus words (splitmix-style stirring).
        let stir = |x: u64| {
            let mut z = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z ^= z >> 31;
            z.wrapping_mul(0xBF58_476D_1CE4_E5B9)
        };
        let mut wide_state: HashMap<CellId, u64> = HashMap::new();
        let mut lane_states: Vec<HashMap<CellId, bool>> = (0..64).map(|_| HashMap::new()).collect();
        for cycle in 0..8u64 {
            let words: Vec<u64> = (0..4).map(|pin| stir(cycle * 4 + pin)).collect();
            let wide = nl.eval_combinational64(&words, &wide_state).unwrap();
            for lane in 0..64u64 {
                let bits: Vec<bool> = words.iter().map(|w| (w >> lane) & 1 == 1).collect();
                let narrow = nl
                    .eval_combinational(&bits, &lane_states[lane as usize])
                    .unwrap();
                for (net, &value) in narrow.iter().enumerate() {
                    assert_eq!(
                        (wide[net] >> lane) & 1 == 1,
                        value,
                        "cycle {cycle} lane {lane} net {net}"
                    );
                }
                lane_states[lane as usize] = nl.next_state(&narrow, &lane_states[lane as usize]);
            }
            wide_state = nl.next_state64(&wide, &wide_state);
            for lane in 0..64u64 {
                assert_eq!(
                    (wide_state[&ff] >> lane) & 1 == 1,
                    lane_states[lane as usize]
                        .get(&ff)
                        .copied()
                        .unwrap_or(false),
                    "state diverged at cycle {cycle} lane {lane}"
                );
            }
        }
    }

    #[test]
    fn duplicate_names_are_uniquified() {
        let mut nl = Netlist::new("t");
        let n1 = nl.add_net("w");
        let n2 = nl.add_net("w");
        assert_ne!(nl.net(n1).name(), nl.net(n2).name());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let y = nl.add_net("y");
        let err = nl
            .add_cell("u", CellFunction::And2, "AND2_X1", &[a], y)
            .unwrap_err();
        assert!(matches!(err, NetlistError::ArityMismatch { .. }));
    }

    #[test]
    fn double_driver_rejected() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let y = nl.add_net("y");
        nl.add_cell("u1", CellFunction::Inv, "INV_X1", &[a], y)
            .unwrap();
        let err = nl
            .add_cell("u2", CellFunction::Buf, "BUF_X1", &[a], y)
            .unwrap_err();
        assert_eq!(err, NetlistError::MultipleDrivers(y));
    }

    #[test]
    fn undriven_net_fails_validation() {
        let mut nl = Netlist::new("t");
        let floating = nl.add_net("floating");
        let y = nl.add_net("y");
        nl.add_cell("u", CellFunction::Inv, "INV_X1", &[floating], y)
            .unwrap();
        let err = nl.validate().unwrap_err();
        assert!(matches!(err, NetlistError::UndrivenNet { .. }));
    }

    #[test]
    fn combinational_loop_detected() {
        let mut nl = Netlist::new("t");
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        nl.add_cell("u1", CellFunction::Inv, "INV_X1", &[a], b)
            .unwrap();
        nl.add_cell("u2", CellFunction::Inv, "INV_X1", &[b], a)
            .unwrap();
        let err = nl.validate().unwrap_err();
        assert!(matches!(err, NetlistError::CombinationalLoop { .. }));
    }

    #[test]
    fn dff_breaks_loops() {
        // a toggle flip-flop: q -> inv -> d -> dff -> q is fine.
        let mut nl = Netlist::new("toggle");
        let q = nl.add_net("q");
        let d = nl.add_net("d");
        let ff = nl
            .add_cell("u_ff", CellFunction::Dff, "DFF_X1", &[d], q)
            .unwrap();
        nl.add_cell("u_inv", CellFunction::Inv, "INV_X1", &[q], d)
            .unwrap();
        nl.mark_output("q", q).unwrap();
        nl.validate().unwrap();

        // Simulate four edges: q = 0, 1, 0, 1.
        let mut state: HashMap<CellId, bool> = HashMap::new();
        let mut seen = Vec::new();
        for _ in 0..4 {
            let values = nl.eval_combinational(&[], &state).unwrap();
            seen.push(values[q.index()]);
            state = nl.next_state(&values, &state);
        }
        assert_eq!(seen, vec![false, true, false, true]);
        let _ = ff;
    }

    #[test]
    fn dff_en_holds_value_when_disabled() {
        let mut nl = Netlist::new("hold");
        let d = nl.add_input("d");
        let en = nl.add_input("en");
        let q = nl.add_net("q");
        let ff = nl
            .add_cell("u_ff", CellFunction::DffEn, "DFFE_X1", &[d, en], q)
            .unwrap();
        nl.mark_output("q", q).unwrap();

        let mut state = HashMap::new();
        // load 1 with enable
        let v = nl.eval_combinational(&[true, true], &state).unwrap();
        state = nl.next_state(&v, &state);
        assert!(state[&ff]);
        // d=0 but enable low: hold
        let v = nl.eval_combinational(&[false, false], &state).unwrap();
        state = nl.next_state(&v, &state);
        assert!(state[&ff]);
        // enable high: capture 0
        let v = nl.eval_combinational(&[false, true], &state).unwrap();
        state = nl.next_state(&v, &state);
        assert!(!state[&ff]);
    }

    #[test]
    fn stats_report_counts_and_depth() {
        let nl = full_adder();
        let stats = nl.stats();
        assert_eq!(stats.cells, 2);
        assert_eq!(stats.combinational_cells, 2);
        assert_eq!(stats.sequential_cells, 0);
        assert_eq!(stats.inputs, 3);
        assert_eq!(stats.outputs, 2);
        assert_eq!(stats.logic_depth, 1);
        assert!(stats.average_fanout > 0.0);
    }

    #[test]
    fn function_histogram_counts_instances() {
        let nl = full_adder();
        let hist = nl.function_histogram();
        assert_eq!(hist.len(), 2);
        assert!(hist.contains(&(CellFunction::Maj3, 1)));
        assert!(hist.contains(&(CellFunction::Xor3, 1)));
        let total: usize = hist.iter().map(|(_, c)| c).sum();
        assert_eq!(total, nl.cell_count());
    }

    #[test]
    fn logic_depth_chains() {
        let mut nl = Netlist::new("chain");
        let mut prev = nl.add_input("a");
        for i in 0..5 {
            let next = nl.add_net(format!("w{i}"));
            nl.add_cell(format!("u{i}"), CellFunction::Inv, "INV_X1", &[prev], next)
                .unwrap();
            prev = next;
        }
        nl.mark_output("y", prev).unwrap();
        assert_eq!(nl.logic_depth().unwrap(), 5);
    }
}
