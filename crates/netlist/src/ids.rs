//! Index newtypes addressing objects inside a [`crate::Netlist`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a [`crate::Cell`] inside a [`crate::Netlist`].
///
/// `CellId`s are dense indices assigned in insertion order; they are only
/// meaningful relative to the netlist that produced them.
///
/// ```
/// use chipforge_netlist::CellId;
/// let id = CellId::new(3);
/// assert_eq!(id.index(), 3);
/// assert_eq!(id.to_string(), "c3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CellId(u32);

/// Identifier of a [`crate::Net`] inside a [`crate::Netlist`].
///
/// ```
/// use chipforge_netlist::NetId;
/// let id = NetId::new(7);
/// assert_eq!(id.index(), 7);
/// assert_eq!(id.to_string(), "n7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NetId(u32);

macro_rules! impl_id {
    ($ty:ident, $prefix:literal) => {
        impl $ty {
            /// Creates an identifier from a raw dense index.
            #[must_use]
            pub fn new(index: usize) -> Self {
                Self(index as u32)
            }

            /// Returns the dense index backing this identifier.
            #[must_use]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$ty> for usize {
            fn from(id: $ty) -> usize {
                id.index()
            }
        }
    };
}

impl_id!(CellId, "c");
impl_id!(NetId, "n");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_id_round_trips_index() {
        let id = CellId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(usize::from(id), 42);
    }

    #[test]
    fn net_id_round_trips_index() {
        let id = NetId::new(0);
        assert_eq!(id.index(), 0);
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(CellId::new(1) < CellId::new(2));
        assert!(NetId::new(3) > NetId::new(1));
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(CellId::new(5).to_string(), "c5");
        assert_eq!(NetId::new(9).to_string(), "n9");
    }
}
