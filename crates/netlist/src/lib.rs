//! # chipforge-netlist
//!
//! Gate-level netlist database for the `chipforge` EDA flow.
//!
//! This crate provides the central in-memory design representation shared by
//! the synthesis, timing, placement and routing crates: a flat,
//! single-clock-domain, mapped gate-level netlist.
//!
//! The model is deliberately simple but complete enough to carry a design
//! from technology mapping to GDSII:
//!
//! * a [`Netlist`] owns [`Cell`]s and [`Net`]s addressed by the index
//!   newtypes [`CellId`] and [`NetId`];
//! * every cell has a single output pin (multi-output macros are modelled as
//!   cell groups), a [`CellFunction`] describing its Boolean/sequential
//!   behaviour, and the name of the library cell implementing it;
//! * sequential elements ([`CellFunction::Dff`], [`CellFunction::DffEn`])
//!   belong to one implicit clock domain — the common case for small
//!   academic tape-outs and the simplification used throughout the flow.
//!
//! ## Example
//!
//! Build a one-bit half adder netlist by hand and inspect it:
//!
//! ```
//! use chipforge_netlist::{CellFunction, Netlist};
//!
//! # fn main() -> Result<(), chipforge_netlist::NetlistError> {
//! let mut nl = Netlist::new("half_adder");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let sum = nl.add_net("sum");
//! let carry = nl.add_net("carry");
//! nl.add_cell("u_xor", CellFunction::Xor2, "XOR2_X1", &[a, b], sum)?;
//! nl.add_cell("u_and", CellFunction::And2, "AND2_X1", &[a, b], carry)?;
//! nl.mark_output("sum", sum)?;
//! nl.mark_output("carry", carry)?;
//! nl.validate()?;
//! assert_eq!(nl.stats().combinational_cells, 2);
//! # Ok(())
//! # }
//! ```
//!
//! Netlists can be written to and parsed back from a structural Verilog
//! subset via [`verilog::write_verilog`] and [`verilog::parse_verilog`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cell;
mod error;
mod graph;
mod ids;
mod net;
mod stats;
pub mod verilog;

pub use cell::{Cell, CellFunction};
pub use error::NetlistError;
pub use graph::Netlist;
pub use ids::{CellId, NetId};
pub use net::{Net, NetDriver};
pub use stats::NetlistStats;
