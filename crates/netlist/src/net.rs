//! Nets (wires) connecting cell pins and ports.

use crate::ids::{CellId, NetId};
use serde::{Deserialize, Serialize};

/// The object driving a [`Net`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetDriver {
    /// Driven by the output pin of a cell.
    Cell(CellId),
    /// Driven by the primary input port with the given index into
    /// [`crate::Netlist::inputs`].
    Input(usize),
}

/// A wire in the netlist, with one driver and any number of sinks.
///
/// Sinks are `(cell, pin_index)` pairs; a net listed in
/// [`crate::Netlist::outputs`] additionally drives a primary output port.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Net {
    pub(crate) id: NetId,
    pub(crate) name: String,
    pub(crate) driver: Option<NetDriver>,
    pub(crate) sinks: Vec<(CellId, usize)>,
    pub(crate) is_output: bool,
}

impl Net {
    /// Identifier of this net within its owning netlist.
    #[must_use]
    pub fn id(&self) -> NetId {
        self.id
    }

    /// Net name (unique within the netlist).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The driver of this net, if connected.
    #[must_use]
    pub fn driver(&self) -> Option<NetDriver> {
        self.driver
    }

    /// `(cell, input-pin-index)` sinks of this net.
    #[must_use]
    pub fn sinks(&self) -> &[(CellId, usize)] {
        &self.sinks
    }

    /// Fanout: number of cell pins plus one if the net feeds a primary
    /// output port.
    #[must_use]
    pub fn fanout(&self) -> usize {
        self.sinks.len() + usize::from(self.is_output)
    }

    /// Whether this net drives a primary output port.
    #[must_use]
    pub fn is_output(&self) -> bool {
        self.is_output
    }

    /// Whether this net is driven by a primary input port.
    #[must_use]
    pub fn is_input(&self) -> bool {
        matches!(self.driver, Some(NetDriver::Input(_)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_net() -> Net {
        Net {
            id: NetId::new(0),
            name: "n".into(),
            driver: Some(NetDriver::Input(0)),
            sinks: vec![(CellId::new(0), 0), (CellId::new(1), 1)],
            is_output: true,
        }
    }

    #[test]
    fn fanout_counts_output_port() {
        let net = sample_net();
        assert_eq!(net.fanout(), 3);
    }

    #[test]
    fn input_detection() {
        let net = sample_net();
        assert!(net.is_input());
        assert!(net.is_output());
    }

    #[test]
    fn undriven_net_has_no_driver() {
        let net = Net {
            id: NetId::new(1),
            name: "floating".into(),
            driver: None,
            sinks: Vec::new(),
            is_output: false,
        };
        assert!(net.driver().is_none());
        assert_eq!(net.fanout(), 0);
    }
}
