//! Netlist summary statistics.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Summary counts and structural metrics of a [`crate::Netlist`].
///
/// Produced by [`crate::Netlist::stats`]; used by the flow reports and by
/// the abstraction-gap experiment (gates per line of RTL).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct NetlistStats {
    /// Total cell instances.
    pub cells: usize,
    /// Combinational gates.
    pub combinational_cells: usize,
    /// Flip-flops.
    pub sequential_cells: usize,
    /// Total nets.
    pub nets: usize,
    /// Primary input ports.
    pub inputs: usize,
    /// Primary output ports.
    pub outputs: usize,
    /// Mean fanout over driven nets.
    pub average_fanout: f64,
    /// Longest combinational path in logic levels.
    pub logic_depth: usize,
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cells ({} comb, {} seq), {} nets, {} PI, {} PO, depth {}, avg fanout {:.2}",
            self.cells,
            self.combinational_cells,
            self.sequential_cells,
            self.nets,
            self.inputs,
            self.outputs,
            self.logic_depth,
            self.average_fanout
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_all_counts() {
        let stats = NetlistStats {
            cells: 10,
            combinational_cells: 8,
            sequential_cells: 2,
            nets: 12,
            inputs: 3,
            outputs: 1,
            average_fanout: 1.5,
            logic_depth: 4,
        };
        let s = stats.to_string();
        assert!(s.contains("10 cells"));
        assert!(s.contains("depth 4"));
    }

    #[test]
    fn default_is_zeroed() {
        let stats = NetlistStats::default();
        assert_eq!(stats.cells, 0);
        assert_eq!(stats.average_fanout, 0.0);
    }
}
