//! Structural Verilog emission and parsing.
//!
//! The supported subset is the classic mapped-netlist style emitted by
//! synthesis tools: a single `module` with scalar ports, `wire`
//! declarations, named-port cell instantiations of library cells, and
//! `assign a = b;` aliases.
//!
//! ```
//! use chipforge_netlist::{CellFunction, Netlist, verilog};
//!
//! # fn main() -> Result<(), chipforge_netlist::NetlistError> {
//! let mut nl = Netlist::new("inv");
//! let a = nl.add_input("a");
//! let y = nl.add_net("y");
//! nl.add_cell("u0", CellFunction::Inv, "INV_X1", &[a], y)?;
//! nl.mark_output("y", y)?;
//! let text = verilog::write_verilog(&nl);
//! let parsed = verilog::parse_verilog(&text)?;
//! assert_eq!(parsed.cell_count(), 1);
//! # Ok(())
//! # }
//! ```

use crate::cell::CellFunction;
use crate::error::NetlistError;
use crate::graph::Netlist;
use crate::ids::NetId;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Maps a library cell name (e.g. `NAND2_X1`) to its logical function.
///
/// The mapping matches on the name prefix before the first `_`, following
/// the naming convention of the `chipforge-pdk` library generator. Returns
/// `None` for unknown prefixes.
#[must_use]
pub fn function_from_lib_cell(lib_cell: &str) -> Option<CellFunction> {
    let prefix = lib_cell.split('_').next().unwrap_or(lib_cell);
    Some(match prefix {
        "TIELO" | "CONST0" => CellFunction::Const0,
        "TIEHI" | "CONST1" => CellFunction::Const1,
        "BUF" => CellFunction::Buf,
        "INV" => CellFunction::Inv,
        "AND2" => CellFunction::And2,
        "NAND2" => CellFunction::Nand2,
        "OR2" => CellFunction::Or2,
        "NOR2" => CellFunction::Nor2,
        "XOR2" => CellFunction::Xor2,
        "XNOR2" => CellFunction::Xnor2,
        "AND3" => CellFunction::And3,
        "NAND3" => CellFunction::Nand3,
        "OR3" => CellFunction::Or3,
        "NOR3" => CellFunction::Nor3,
        "AOI21" => CellFunction::Aoi21,
        "OAI21" => CellFunction::Oai21,
        "MUX2" => CellFunction::Mux2,
        "MAJ3" => CellFunction::Maj3,
        "XOR3" => CellFunction::Xor3,
        "DFF" => CellFunction::Dff,
        "DFFE" => CellFunction::DffEn,
        _ => return None,
    })
}

/// Output pin name used by the writer for a function.
fn output_pin(function: CellFunction) -> &'static str {
    if function.is_sequential() {
        "Q"
    } else {
        "Y"
    }
}

/// Serializes a netlist as structural Verilog.
///
/// Primary output ports whose name differs from the driving net are
/// emitted as `assign` statements so the result parses back losslessly
/// (modulo the synthetic alias wires).
#[must_use]
pub fn write_verilog(nl: &Netlist) -> String {
    let mut out = String::new();
    let ports: Vec<String> = nl
        .inputs()
        .iter()
        .map(|(p, _)| p.clone())
        .chain(nl.outputs().iter().map(|(p, _)| p.clone()))
        .collect();
    let _ = writeln!(out, "module {} ({});", nl.name(), ports.join(", "));
    for (port, _) in nl.inputs() {
        let _ = writeln!(out, "  input {port};");
    }
    for (port, _) in nl.outputs() {
        let _ = writeln!(out, "  output {port};");
    }
    let port_names: std::collections::HashSet<&str> = nl
        .inputs()
        .iter()
        .chain(nl.outputs().iter())
        .map(|(p, _)| p.as_str())
        .collect();
    for net in nl.nets() {
        if !port_names.contains(net.name()) {
            let _ = writeln!(out, "  wire {};", net.name());
        }
    }
    // Alias assigns for output ports whose net name differs from the port.
    for (port, net) in nl.outputs() {
        let net_name = nl.net(*net).name();
        if port != net_name {
            let _ = writeln!(out, "  assign {port} = {net_name};");
        }
    }
    for cell in nl.cells() {
        let mut pins = String::new();
        for (pin_name, net) in cell.function().pin_names().iter().zip(cell.inputs().iter()) {
            let _ = write!(pins, ".{}({}), ", pin_name, nl.net(*net).name());
        }
        let _ = write!(
            pins,
            ".{}({})",
            output_pin(cell.function()),
            nl.net(cell.output()).name()
        );
        let _ = writeln!(out, "  {} {} ({});", cell.lib_cell(), cell.name(), pins);
    }
    let _ = writeln!(out, "endmodule");
    out
}

/// Parses the structural Verilog subset produced by [`write_verilog`].
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] with a line number on any syntax or
/// semantic problem (unknown library cell, undeclared net, missing pin).
pub fn parse_verilog(text: &str) -> Result<Netlist, NetlistError> {
    let mut parser = Parser::new(text);
    parser.parse()
}

struct Parser<'a> {
    lines: Vec<(usize, &'a str)>,
    pos: usize,
}

struct PendingInstance {
    line: usize,
    lib_cell: String,
    instance: String,
    connections: Vec<(String, String)>,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        let lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| {
                let l = l.split("//").next().unwrap_or("").trim();
                (i + 1, l)
            })
            .filter(|(_, l)| !l.is_empty())
            .collect();
        Self { lines, pos: 0 }
    }

    fn error(&self, line: usize, message: impl Into<String>) -> NetlistError {
        NetlistError::Parse {
            line,
            message: message.into(),
        }
    }

    fn parse(&mut self) -> Result<Netlist, NetlistError> {
        let (line, header) = self
            .lines
            .get(self.pos)
            .copied()
            .ok_or_else(|| self.error(1, "empty input"))?;
        self.pos += 1;
        let header = header
            .strip_prefix("module")
            .ok_or_else(|| self.error(line, "expected `module`"))?
            .trim();
        let name_end = header
            .find('(')
            .ok_or_else(|| self.error(line, "expected `(` in module header"))?;
        let module_name = header[..name_end].trim().to_string();
        if module_name.is_empty() {
            return Err(self.error(line, "missing module name"));
        }

        let mut nl = Netlist::new(module_name);
        let mut nets: HashMap<String, NetId> = HashMap::new();
        let mut outputs: Vec<(usize, String)> = Vec::new();
        let mut instances: Vec<PendingInstance> = Vec::new();
        let mut assigns: Vec<(usize, String, String)> = Vec::new();

        while self.pos < self.lines.len() {
            let (line, text) = self.lines[self.pos];
            self.pos += 1;
            if text == "endmodule" {
                return self.finish(nl, nets, outputs, instances, assigns);
            }
            let stmt = text
                .strip_suffix(';')
                .ok_or_else(|| self.error(line, "expected trailing `;`"))?
                .trim();
            if let Some(rest) = stmt.strip_prefix("input ") {
                for port in rest.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                    let net = nl.add_input(port);
                    nets.insert(port.to_string(), net);
                }
            } else if let Some(rest) = stmt.strip_prefix("output ") {
                for port in rest.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                    outputs.push((line, port.to_string()));
                }
            } else if let Some(rest) = stmt.strip_prefix("wire ") {
                for wire in rest.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                    let net = nl.add_net(wire);
                    nets.insert(wire.to_string(), net);
                }
            } else if let Some(rest) = stmt.strip_prefix("assign ") {
                let mut parts = rest.splitn(2, '=');
                let lhs = parts.next().unwrap_or("").trim().to_string();
                let rhs = parts
                    .next()
                    .ok_or_else(|| self.error(line, "expected `=` in assign"))?
                    .trim()
                    .to_string();
                assigns.push((line, lhs, rhs));
            } else {
                instances.push(self.parse_instance(line, stmt)?);
            }
        }
        Err(self.error(
            self.lines.last().map_or(1, |(l, _)| *l),
            "missing `endmodule`",
        ))
    }

    fn parse_instance(&self, line: usize, stmt: &str) -> Result<PendingInstance, NetlistError> {
        let open = stmt
            .find('(')
            .ok_or_else(|| self.error(line, "expected `(` in instantiation"))?;
        let close = stmt
            .rfind(')')
            .ok_or_else(|| self.error(line, "expected `)` in instantiation"))?;
        let head: Vec<&str> = stmt[..open].split_whitespace().collect();
        if head.len() != 2 {
            return Err(self.error(line, "expected `CELL instance (...)`"));
        }
        let mut connections = Vec::new();
        for conn in stmt[open + 1..close]
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
        {
            let conn = conn
                .strip_prefix('.')
                .ok_or_else(|| self.error(line, "expected named connection `.PIN(net)`"))?;
            let pin_end = conn
                .find('(')
                .ok_or_else(|| self.error(line, "expected `(` in connection"))?;
            let pin = conn[..pin_end].trim().to_string();
            let net = conn[pin_end + 1..]
                .strip_suffix(')')
                .ok_or_else(|| self.error(line, "expected `)` in connection"))?
                .trim()
                .to_string();
            connections.push((pin, net));
        }
        Ok(PendingInstance {
            line,
            lib_cell: head[0].to_string(),
            instance: head[1].to_string(),
            connections,
        })
    }

    fn finish(
        &self,
        mut nl: Netlist,
        mut nets: HashMap<String, NetId>,
        outputs: Vec<(usize, String)>,
        instances: Vec<PendingInstance>,
        assigns: Vec<(usize, String, String)>,
    ) -> Result<Netlist, NetlistError> {
        // Output ports that were not declared as wires get their own nets.
        for (_, port) in &outputs {
            if !nets.contains_key(port) {
                let net = nl.add_net(port.clone());
                nets.insert(port.clone(), net);
            }
        }
        for inst in instances {
            let function = function_from_lib_cell(&inst.lib_cell).ok_or_else(|| {
                self.error(
                    inst.line,
                    format!("unknown library cell `{}`", inst.lib_cell),
                )
            })?;
            let out_pin = output_pin(function);
            let mut inputs = vec![None; function.input_count()];
            let mut output = None;
            for (pin, net_name) in &inst.connections {
                let net = *nets
                    .get(net_name)
                    .ok_or_else(|| self.error(inst.line, format!("undeclared net `{net_name}`")))?;
                if pin == out_pin {
                    output = Some(net);
                } else {
                    let idx = function
                        .pin_names()
                        .iter()
                        .position(|p| p == pin)
                        .ok_or_else(|| self.error(inst.line, format!("unknown pin `{pin}`")))?;
                    inputs[idx] = Some(net);
                }
            }
            let output =
                output.ok_or_else(|| self.error(inst.line, "missing output connection"))?;
            let inputs: Vec<NetId> = inputs
                .into_iter()
                .enumerate()
                .map(|(i, n)| {
                    n.ok_or_else(|| {
                        self.error(
                            inst.line,
                            format!("missing connection for pin `{}`", function.pin_names()[i]),
                        )
                    })
                })
                .collect::<Result<_, _>>()?;
            nl.add_cell(&inst.instance, function, &inst.lib_cell, &inputs, output)
                .map_err(|e| self.error(inst.line, e.to_string()))?;
        }
        for (line, lhs, rhs) in assigns {
            let rhs_net = *nets
                .get(&rhs)
                .ok_or_else(|| self.error(line, format!("undeclared net `{rhs}`")))?;
            let lhs_net = *nets
                .get(&lhs)
                .ok_or_else(|| self.error(line, format!("undeclared net `{lhs}`")))?;
            nl.add_cell(
                format!("assign_{lhs}"),
                CellFunction::Buf,
                "BUF_X1",
                &[rhs_net],
                lhs_net,
            )
            .map_err(|e| self.error(line, e.to_string()))?;
        }
        for (line, port) in outputs {
            let net = *nets
                .get(&port)
                .ok_or_else(|| self.error(line, format!("undeclared output `{port}`")))?;
            nl.mark_output(port, net)
                .map_err(|e| self.error(line, e.to_string()))?;
        }
        Ok(nl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap as Map;

    fn adder() -> Netlist {
        let mut nl = Netlist::new("fa");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let cin = nl.add_input("cin");
        let sum = nl.add_net("sum");
        let cout = nl.add_net("cout");
        nl.add_cell("u_s", CellFunction::Xor3, "XOR3_X1", &[a, b, cin], sum)
            .unwrap();
        nl.add_cell("u_c", CellFunction::Maj3, "MAJ3_X1", &[a, b, cin], cout)
            .unwrap();
        nl.mark_output("sum", sum).unwrap();
        nl.mark_output("cout", cout).unwrap();
        nl
    }

    #[test]
    fn round_trip_preserves_behaviour() {
        let nl = adder();
        let text = write_verilog(&nl);
        let parsed = parse_verilog(&text).unwrap();
        parsed.validate().unwrap();
        assert_eq!(parsed.name(), "fa");
        assert_eq!(parsed.cell_count(), nl.cell_count());
        let state = Map::new();
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    let v1 = nl.eval_combinational(&[a, b, c], &state).unwrap();
                    let v2 = parsed.eval_combinational(&[a, b, c], &state).unwrap();
                    let s1 = v1[nl.find_net("sum").unwrap().index()];
                    let s2 = v2[parsed.find_net("sum").unwrap().index()];
                    assert_eq!(s1, s2);
                }
            }
        }
    }

    #[test]
    fn round_trip_sequential() {
        let mut nl = Netlist::new("reg1");
        let d = nl.add_input("d");
        let q = nl.add_net("q");
        nl.add_cell("u_ff", CellFunction::Dff, "DFF_X1", &[d], q)
            .unwrap();
        nl.mark_output("q", q).unwrap();
        let parsed = parse_verilog(&write_verilog(&nl)).unwrap();
        assert_eq!(parsed.stats().sequential_cells, 1);
    }

    #[test]
    fn parse_rejects_unknown_cell() {
        let src =
            "module m (a, y);\n  input a;\n  output y;\n  MAGIC_X1 u0 (.A(a), .Y(y));\nendmodule\n";
        let err = parse_verilog(src).unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 4, .. }));
    }

    #[test]
    fn parse_rejects_undeclared_net() {
        let src =
            "module m (a, y);\n  input a;\n  output y;\n  INV_X1 u0 (.A(ghost), .Y(y));\nendmodule\n";
        let err = parse_verilog(src).unwrap_err();
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn parse_rejects_missing_endmodule() {
        let src = "module m (a);\n  input a;\n";
        let err = parse_verilog(src).unwrap_err();
        assert!(err.to_string().contains("endmodule"));
    }

    #[test]
    fn parse_handles_assign_alias() {
        let src = "module m (a, y);\n  input a;\n  output y;\n  wire w;\n  INV_X1 u0 (.A(a), .Y(w));\n  assign y = w;\nendmodule\n";
        let nl = parse_verilog(src).unwrap();
        nl.validate().unwrap();
        // inverter plus alias buffer
        assert_eq!(nl.cell_count(), 2);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "// top\nmodule m (a, y);\n\n  input a; // in\n  output y;\n  INV_X1 u0 (.A(a), .Y(y));\nendmodule\n";
        let nl = parse_verilog(src).unwrap();
        assert_eq!(nl.cell_count(), 1);
    }

    #[test]
    fn function_mapping_covers_library_names() {
        assert_eq!(
            function_from_lib_cell("NAND2_X2"),
            Some(CellFunction::Nand2)
        );
        assert_eq!(function_from_lib_cell("DFFE_X1"), Some(CellFunction::DffEn));
        assert_eq!(
            function_from_lib_cell("TIEHI_X1"),
            Some(CellFunction::Const1)
        );
        assert_eq!(function_from_lib_cell("WEIRD_X1"), None);
    }
}
