//! Property-based tests for the netlist graph and Verilog round-trip.

use chipforge_netlist::{verilog, CellFunction, NetId, Netlist};
use proptest::prelude::*;
use std::collections::HashMap;

/// Strategy: a random combinational DAG built layer by layer.
///
/// Each step picks a gate function and wires its inputs to already-existing
/// nets, which guarantees acyclicity by construction.
fn random_dag() -> impl Strategy<Value = Netlist> {
    let gate = prop_oneof![
        Just(CellFunction::Inv),
        Just(CellFunction::Buf),
        Just(CellFunction::And2),
        Just(CellFunction::Nand2),
        Just(CellFunction::Or2),
        Just(CellFunction::Nor2),
        Just(CellFunction::Xor2),
        Just(CellFunction::Mux2),
        Just(CellFunction::Aoi21),
        Just(CellFunction::Maj3),
    ];
    (
        2usize..6,
        proptest::collection::vec((gate, any::<u64>()), 1..40),
    )
        .prop_map(|(num_inputs, gates)| {
            let mut nl = Netlist::new("rand");
            let mut pool: Vec<NetId> = (0..num_inputs)
                .map(|i| nl.add_input(format!("in{i}")))
                .collect();
            for (i, (function, seed)) in gates.into_iter().enumerate() {
                let out = nl.add_net(format!("w{i}"));
                let inputs: Vec<NetId> = (0..function.input_count())
                    .map(|k| {
                        let idx = ((seed >> (k * 8)) as usize) % pool.len();
                        pool[idx]
                    })
                    .collect();
                nl.add_cell(
                    format!("g{i}"),
                    function,
                    format!("{function}_X1"),
                    &inputs,
                    out,
                )
                .expect("construction is valid by design");
                pool.push(out);
            }
            let last = *pool.last().expect("pool is never empty");
            nl.mark_output("y", last).expect("net exists");
            nl
        })
}

proptest! {
    #[test]
    fn constructed_dags_validate(nl in random_dag()) {
        nl.validate().expect("DAG construction must validate");
    }

    #[test]
    fn topological_order_respects_edges(nl in random_dag()) {
        let order = nl.combinational_order().unwrap();
        let mut position = HashMap::new();
        for (i, id) in order.iter().enumerate() {
            position.insert(*id, i);
        }
        for cell in nl.cells() {
            for &input in cell.inputs() {
                if let Some(chipforge_netlist::NetDriver::Cell(src)) = nl.net(input).driver() {
                    prop_assert!(position[&src] < position[&cell.id()],
                        "driver must precede sink in topological order");
                }
            }
        }
    }

    #[test]
    fn logic_depth_bounded_by_cell_count(nl in random_dag()) {
        let depth = nl.logic_depth().unwrap();
        prop_assert!(depth <= nl.cell_count());
        prop_assert!(depth >= 1);
    }

    #[test]
    fn verilog_round_trip_equivalence(nl in random_dag(), stimulus in proptest::collection::vec(any::<bool>(), 8)) {
        let text = verilog::write_verilog(&nl);
        let parsed = verilog::parse_verilog(&text).unwrap();
        parsed.validate().unwrap();
        // Output ports whose name differs from the driving net come back as
        // one explicit alias buffer each.
        let aliases = nl
            .outputs()
            .iter()
            .filter(|(port, net)| port != nl.net(*net).name())
            .count();
        prop_assert_eq!(parsed.cell_count(), nl.cell_count() + aliases);

        // Behavioural equivalence on random stimulus.
        let n = nl.inputs().len();
        let inputs: Vec<bool> = stimulus.iter().cycle().take(n).copied().collect();
        let state = HashMap::new();
        let v1 = nl.eval_combinational(&inputs, &state).unwrap();
        let v2 = parsed.eval_combinational(&inputs, &state).unwrap();
        let (_, out1) = nl.outputs()[0].clone();
        let out2 = parsed.outputs()[0].1;
        prop_assert_eq!(v1[out1.index()], v2[out2.index()]);
    }

    #[test]
    fn stats_are_consistent(nl in random_dag()) {
        let stats = nl.stats();
        prop_assert_eq!(stats.cells, stats.combinational_cells + stats.sequential_cells);
        prop_assert_eq!(stats.cells, nl.cell_count());
        prop_assert_eq!(stats.nets, nl.net_count());
        prop_assert!(stats.average_fanout >= 0.0);
    }
}
