//! Chrome trace-event JSON exporter and parser.
//!
//! Emits the [trace-event format] consumed by `about://tracing` and
//! Perfetto: complete events (`ph: "X"`) for spans, instant events
//! (`ph: "i"`) for markers, and metadata events (`ph: "M"`) naming each
//! track. Timestamps are microseconds, matching the tracer's native
//! unit. The metrics snapshot rides along under a top-level `metrics`
//! key, which trace viewers ignore and `forge report` reads back.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::span::{InstantRecord, SpanRecord};
use crate::tracer::Tracer;
use serde::{Error, Serialize, Value};

const PID: u64 = 1;

fn str_val(s: &str) -> Value {
    Value::Str(s.to_string())
}

fn map(pairs: Vec<(&str, Value)>) -> Value {
    Value::Map(pairs.into_iter().map(|(k, v)| (str_val(k), v)).collect())
}

fn span_event(span: &SpanRecord) -> Value {
    map(vec![
        ("name", str_val(&span.name)),
        ("cat", str_val(&span.category)),
        ("ph", str_val("X")),
        ("ts", Value::F64(span.start_us)),
        ("dur", Value::F64(span.dur_us)),
        ("pid", Value::U64(PID)),
        ("tid", Value::U64(span.track as u64)),
        (
            "args",
            map(vec![
                ("id", Value::U64(span.id)),
                ("parent", Value::U64(span.parent)),
                ("detail", str_val(&span.detail)),
            ]),
        ),
    ])
}

fn instant_event(instant: &InstantRecord) -> Value {
    map(vec![
        ("name", str_val(&instant.name)),
        ("cat", str_val(&instant.category)),
        ("ph", str_val("i")),
        ("s", str_val("t")),
        ("ts", Value::F64(instant.at_us)),
        ("pid", Value::U64(PID)),
        ("tid", Value::U64(instant.track as u64)),
        ("args", map(vec![("detail", str_val(&instant.detail))])),
    ])
}

fn thread_name_event(track: usize, name: &str) -> Value {
    map(vec![
        ("name", str_val("thread_name")),
        ("ph", str_val("M")),
        ("pid", Value::U64(PID)),
        ("tid", Value::U64(track as u64)),
        ("args", map(vec![("name", str_val(name))])),
    ])
}

/// Renders everything a tracer collected as Chrome trace-event JSON.
#[must_use]
pub fn trace_json(tracer: &Tracer) -> String {
    let mut events: Vec<Value> = Vec::new();
    for (track, name) in tracer.track_names() {
        events.push(thread_name_event(track, &name));
    }
    let mut spans = tracer.spans();
    spans.sort_by(|a, b| a.start_us.total_cmp(&b.start_us));
    events.extend(spans.iter().map(span_event));
    let mut instants = tracer.instants();
    instants.sort_by(|a, b| a.at_us.total_cmp(&b.at_us));
    events.extend(instants.iter().map(instant_event));
    let doc = map(vec![
        ("traceEvents", Value::Seq(events)),
        ("displayTimeUnit", str_val("ms")),
        ("metrics", tracer.snapshot().to_value()),
    ]);
    serde::json::to_string_pretty(&doc)
}

/// Span and instant events read back from a Chrome trace file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParsedTrace {
    /// All complete (`ph: "X"`) events.
    pub spans: Vec<SpanRecord>,
    /// All instant (`ph: "i"`) events.
    pub instants: Vec<InstantRecord>,
}

fn field_f64(event: &Value, key: &str) -> f64 {
    event.get(key).as_f64().unwrap_or(0.0)
}

fn field_str(event: &Value, key: &str) -> String {
    event.get(key).as_str().unwrap_or("").to_string()
}

/// Parses Chrome trace-event JSON produced by [`trace_json`] (or any
/// file using the same format: either `{"traceEvents": [...]}` or a
/// bare event array).
///
/// # Errors
///
/// Returns an error when the text is not valid JSON or has neither a
/// `traceEvents` array nor a top-level array.
pub fn parse_chrome_json(text: &str) -> Result<ParsedTrace, Error> {
    let doc = serde::json::parse(text)?;
    let events = match &doc {
        Value::Seq(_) => doc.seq()?,
        _ => doc
            .get("traceEvents")
            .seq()
            .map_err(|_| Error::new("expected a traceEvents array or a bare event array"))?,
    };
    let mut trace = ParsedTrace::default();
    for event in events {
        let ph = event.get("ph").as_str().unwrap_or("");
        let track = event.get("tid").as_u64().unwrap_or(0) as usize;
        match ph {
            "X" => trace.spans.push(SpanRecord {
                id: event.get("args").get("id").as_u64().unwrap_or(0),
                parent: event.get("args").get("parent").as_u64().unwrap_or(0),
                name: field_str(event, "name"),
                category: field_str(event, "cat"),
                track,
                start_us: field_f64(event, "ts"),
                dur_us: field_f64(event, "dur"),
                detail: field_str(event.get("args"), "detail"),
            }),
            "i" | "I" => trace.instants.push(InstantRecord {
                name: field_str(event, "name"),
                category: field_str(event, "cat"),
                track,
                at_us: field_f64(event, "ts"),
                detail: field_str(event.get("args"), "detail"),
            }),
            _ => {}
        }
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanId;

    fn sample_tracer() -> Tracer {
        let tracer = Tracer::new();
        tracer.set_track_name(0, "coordinator");
        tracer.set_track_name(1, "worker-0");
        let root = tracer.reserve_span();
        tracer.record_virtual_span(root, SpanId::NONE, "batch", "exec", 0, 0.0, 900.0, "");
        tracer.virtual_span(root, "synthesize", "flow", 1, 100.0, 400.0, "cells=12");
        tracer.virtual_instant("cache-hit", "exec", 1, 550.0, "counter8");
        tracer.add("exec.cache.hits", 1);
        tracer.observe("flow.stage_ms.synthesize", 0.4);
        tracer
    }

    #[test]
    fn trace_round_trips_through_the_parser() {
        let tracer = sample_tracer();
        let json = trace_json(&tracer);
        let parsed = parse_chrome_json(&json).expect("parses");
        assert_eq!(parsed.spans.len(), 2);
        assert_eq!(parsed.instants.len(), 1);
        let synth = parsed
            .spans
            .iter()
            .find(|s| s.name == "synthesize")
            .expect("synthesize span");
        assert_eq!(synth.category, "flow");
        assert_eq!(synth.track, 1);
        assert_eq!(synth.detail, "cells=12");
        assert!((synth.start_us - 100.0).abs() < 1e-9);
        assert!((synth.dur_us - 400.0).abs() < 1e-9);
        let batch = parsed
            .spans
            .iter()
            .find(|s| s.name == "batch")
            .expect("batch");
        assert_eq!(synth.parent, batch.id);
        assert_eq!(parsed.instants[0].name, "cache-hit");
    }

    #[test]
    fn document_carries_metadata_and_metrics() {
        let json = trace_json(&sample_tracer());
        let doc = serde::json::parse(&json).expect("valid json");
        assert_eq!(doc.get("displayTimeUnit").as_str(), Some("ms"));
        let events = doc.get("traceEvents").seq().expect("events");
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").as_str() == Some("M"))
            .filter_map(|e| e.get("args").get("name").as_str())
            .collect();
        assert_eq!(names, vec!["coordinator", "worker-0"]);
        let counters = doc.get("metrics").get("counters").seq().expect("counters");
        assert_eq!(counters[0].get("name").as_str(), Some("exec.cache.hits"));
    }

    #[test]
    fn bare_event_arrays_parse_too() {
        let json = r#"[{"name":"a","cat":"c","ph":"X","ts":1.0,"dur":2.0,"pid":1,"tid":0}]"#;
        let parsed = parse_chrome_json(json).expect("parses");
        assert_eq!(parsed.spans.len(), 1);
        assert_eq!(parsed.spans[0].name, "a");
    }

    #[test]
    fn garbage_input_is_an_error() {
        assert!(parse_chrome_json("not json").is_err());
        assert!(parse_chrome_json(r#"{"foo": 1}"#).is_err());
    }
}
