//! Flamegraph folded-stack exporter.
//!
//! Produces the `a;b;c <count>` text format consumed by
//! `flamegraph.pl` / inferno and speedscope's "folded" importer. Each
//! line is a root-to-leaf span name chain and the span's *self* time in
//! microseconds (its duration minus the duration of its direct
//! children), aggregated across identical stacks.

use crate::span::SpanRecord;
use std::collections::{BTreeMap, HashMap};

const MAX_DEPTH: usize = 64;

/// Renders spans as folded stacks, one `path;to;span <self_us>` line
/// per distinct stack, sorted lexicographically for stable output.
#[must_use]
pub fn folded_stacks(spans: &[SpanRecord]) -> String {
    let by_id: HashMap<u64, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
    let mut child_us: HashMap<u64, f64> = HashMap::new();
    for span in spans {
        if span.parent != 0 && by_id.contains_key(&span.parent) {
            *child_us.entry(span.parent).or_insert(0.0) += span.dur_us;
        }
    }
    let mut folded: BTreeMap<String, f64> = BTreeMap::new();
    for span in spans {
        let mut chain = vec![span.name.as_str()];
        let mut cursor = span.parent;
        while cursor != 0 && chain.len() < MAX_DEPTH {
            match by_id.get(&cursor) {
                Some(parent) => {
                    chain.push(parent.name.as_str());
                    cursor = parent.parent;
                }
                None => break,
            }
        }
        chain.reverse();
        let self_us = (span.dur_us - child_us.get(&span.id).copied().unwrap_or(0.0)).max(0.0);
        *folded.entry(chain.join(";")).or_insert(0.0) += self_us;
    }
    let mut out = String::new();
    for (stack, us) in folded {
        out.push_str(&format!("{stack} {}\n", us.round() as u64));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: u64, name: &str, start_us: f64, dur_us: f64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name: name.to_string(),
            category: "test".to_string(),
            track: 0,
            start_us,
            dur_us,
            detail: String::new(),
        }
    }

    #[test]
    fn self_time_subtracts_children() {
        let spans = vec![
            span(1, 0, "flow", 0.0, 1000.0),
            span(2, 1, "synthesize", 0.0, 600.0),
            span(3, 1, "route", 600.0, 300.0),
        ];
        let text = folded_stacks(&spans);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.contains(&"flow 100"), "{text}");
        assert!(lines.contains(&"flow;synthesize 600"), "{text}");
        assert!(lines.contains(&"flow;route 300"), "{text}");
    }

    #[test]
    fn identical_stacks_aggregate() {
        let spans = vec![
            span(1, 0, "batch", 0.0, 100.0),
            span(2, 1, "job", 0.0, 40.0),
            span(3, 1, "job", 40.0, 35.0),
        ];
        let text = folded_stacks(&spans);
        assert!(text.lines().any(|l| l == "batch;job 75"), "{text}");
        assert!(text.lines().any(|l| l == "batch 25"), "{text}");
    }

    #[test]
    fn oversubscribed_parent_clamps_to_zero_self_time() {
        // Children overlapping in time can sum past the parent; self
        // time must not go negative.
        let spans = vec![
            span(1, 0, "parent", 0.0, 100.0),
            span(2, 1, "a", 0.0, 80.0),
            span(3, 1, "b", 0.0, 80.0),
        ];
        let text = folded_stacks(&spans);
        assert!(text.lines().any(|l| l == "parent 0"), "{text}");
    }

    #[test]
    fn orphan_parents_truncate_the_chain() {
        let spans = vec![span(5, 99, "lost", 0.0, 10.0)];
        let text = folded_stacks(&spans);
        assert_eq!(text, "lost 10\n");
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert_eq!(folded_stacks(&[]), "");
    }
}
