//! chipforge-obs: unified tracing, metrics and profiling.
//!
//! The paper's enablement argument rests on *measured* effort, runtime
//! and turnaround; this crate is the substrate that turns every
//! chipforge layer — the RTL→GDSII flow, the batch execution engine and
//! the cloud discrete-event simulation — into structured, exportable
//! telemetry instead of scattered ad-hoc timers.
//!
//! Pieces:
//!
//! - [`Tracer`] / [`SpanGuard`]: hierarchical RAII spans with explicit
//!   parent ids and a thread-safe collector; disabled tracers make
//!   every call a no-op so instrumentation can stay always-on.
//! - [`MetricsRegistry`]: counters, gauges and fixed-bucket
//!   [`Histogram`]s with p50/p90/p99 summaries.
//! - Exporters: Chrome trace-event JSON ([`trace_json`], loadable in
//!   Perfetto / `about://tracing`), flamegraph folded stacks
//!   ([`folded_stacks`]) and a serializable [`MetricsSnapshot`].
//! - [`render_trace_report`]: the `forge report` per-stage breakdown.
//!
//! No external dependencies beyond the workspace-vendored serde.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod folded;
pub mod metrics;
pub mod report;
pub mod span;
pub mod tracer;

pub use chrome::{parse_chrome_json, trace_json, ParsedTrace};
pub use folded::folded_stacks;
pub use metrics::{
    CounterSample, GaugeSample, Histogram, HistogramSample, HistogramSummary, MetricsRegistry,
    MetricsSnapshot, HISTOGRAM_BUCKETS,
};
pub use report::render_trace_report;
pub use span::{InstantRecord, SpanId, SpanRecord};
pub use tracer::{SpanGuard, Tracer};
