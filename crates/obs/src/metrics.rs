//! Metrics: counters, gauges and fixed-bucket histograms.
//!
//! The registry is thread-safe (`&self` everywhere) and preserves the
//! insertion order of metric names, so exported snapshots list metrics
//! in the order the instrumented code first touched them — flow stages
//! come out in flow order, not alphabetically.
//!
//! Histograms use fixed power-of-two buckets: bucket 0 holds values in
//! `[0, 1)`, bucket *i* holds `[2^(i-1), 2^i)`. Fixed boundaries make
//! merging two histograms an element-wise add, which is exact and
//! associative on the bucket counts (the floating-point `sum` is
//! associative only up to rounding).

use serde::{Deserialize, Serialize};
use std::sync::Mutex;

/// Number of histogram buckets; the last bucket is open-ended.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A fixed-bucket histogram of non-negative samples.
///
/// Negative observations are clamped to zero (durations can round to
/// tiny negatives on some clocks; they carry no information).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            counts: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, value: f64) {
        let value = if value.is_finite() {
            value.max(0.0)
        } else {
            0.0
        };
        self.counts[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    fn bucket_index(value: f64) -> usize {
        let mut bound = 1.0;
        for i in 0..HISTOGRAM_BUCKETS - 1 {
            if value < bound {
                return i;
            }
            bound *= 2.0;
        }
        HISTOGRAM_BUCKETS - 1
    }

    /// Lower and upper bound of bucket `i` (bucket 0 is `[0, 1)`).
    #[must_use]
    pub fn bucket_bounds(i: usize) -> (f64, f64) {
        if i == 0 {
            (0.0, 1.0)
        } else {
            (2f64.powi(i as i32 - 1), 2f64.powi(i as i32))
        }
    }

    /// Samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample (0 when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Bucket counts, for exporters and tests.
    #[must_use]
    pub fn bucket_counts(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.counts
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`) by linear interpolation
    /// within the covering bucket, clamped to the observed `[min, max]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cum + c as f64;
            if next >= target {
                let (lo, hi) = Self::bucket_bounds(i);
                let frac = ((target - cum) / c as f64).clamp(0.0, 1.0);
                return (lo + (hi - lo) * frac).clamp(self.min, self.max);
            }
            cum = next;
        }
        self.max
    }

    /// Merges `other` into `self` (element-wise bucket add).
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Merged copy of two histograms.
    #[must_use]
    pub fn merged(&self, other: &Histogram) -> Histogram {
        let mut out = self.clone();
        out.merge(other);
        out
    }

    /// Compact serializable summary with the standard percentiles.
    #[must_use]
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            mean: self.mean(),
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// Serializable percentile summary of one histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median estimate.
    pub p50: f64,
    /// 90th-percentile estimate.
    pub p90: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
}

/// One named counter in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Metric name.
    pub name: String,
    /// Current value.
    pub value: u64,
}

/// One named gauge in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// Current value.
    pub value: f64,
}

/// One named histogram in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// Percentile summary.
    pub summary: HistogramSummary,
}

/// A serializable point-in-time view of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counters, in insertion order.
    pub counters: Vec<CounterSample>,
    /// All gauges, in insertion order.
    pub gauges: Vec<GaugeSample>,
    /// All histogram summaries, in insertion order.
    pub histograms: Vec<HistogramSample>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, Histogram)>,
}

fn slot<'a, T: Default>(entries: &'a mut Vec<(String, T)>, name: &str) -> &'a mut T {
    // Linear scan: registries hold tens of metrics, and insertion order
    // must be preserved for stable exports.
    if let Some(i) = entries.iter().position(|(n, _)| n == name) {
        return &mut entries[i].1;
    }
    entries.push((name.to_string(), T::default()));
    &mut entries.last_mut().expect("just pushed").1
}

/// Thread-safe, insertion-ordered registry of counters, gauges and
/// histograms. All methods take `&self`; metrics are created on first
/// touch.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter.
    pub fn add(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock().expect("metrics lock");
        *slot(&mut inner.counters, name) += delta;
    }

    /// Current value of a counter (0 when never touched).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        let inner = self.inner.lock().expect("metrics lock");
        inner
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Sets the named gauge.
    pub fn set_gauge(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock().expect("metrics lock");
        *slot(&mut inner.gauges, name) = value;
    }

    /// Current value of a gauge (0 when never set).
    #[must_use]
    pub fn gauge(&self, name: &str) -> f64 {
        let inner = self.inner.lock().expect("metrics lock");
        inner
            .gauges
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0.0, |(_, v)| *v)
    }

    /// Records one sample into the named histogram.
    pub fn observe(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock().expect("metrics lock");
        slot(&mut inner.histograms, name).observe(value);
    }

    /// A copy of the named histogram, if any sample was recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        let inner = self.inner.lock().expect("metrics lock");
        inner
            .histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h.clone())
    }

    /// All histograms in insertion order.
    #[must_use]
    pub fn histograms(&self) -> Vec<(String, Histogram)> {
        self.inner.lock().expect("metrics lock").histograms.clone()
    }

    /// A serializable snapshot of every metric, in insertion order.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics lock");
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(name, value)| CounterSample {
                    name: name.clone(),
                    value: *value,
                })
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(name, value)| GaugeSample {
                    name: name.clone(),
                    value: *value,
                })
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(name, histogram)| HistogramSample {
                    name: name.clone(),
                    summary: histogram.summary(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_summary_statistics() {
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.mean() - 2.5).abs() < 1e-12);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 4.0);
        let s = h.summary();
        assert!(s.p50 >= 1.0 && s.p50 <= 4.0);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99);
        assert!(s.p99 <= 4.0);
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn negative_and_non_finite_samples_are_clamped() {
        let mut h = Histogram::new();
        h.observe(-5.0);
        h.observe(f64::NAN);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn merge_adds_counts_and_widens_range() {
        let mut a = Histogram::new();
        a.observe(1.0);
        a.observe(100.0);
        let mut b = Histogram::new();
        b.observe(0.5);
        b.observe(5000.0);
        let m = a.merged(&b);
        assert_eq!(m.count(), 4);
        assert_eq!(m.min(), 0.5);
        assert_eq!(m.max(), 5000.0);
        assert!((m.sum() - 5101.5).abs() < 1e-9);
    }

    #[test]
    fn quantiles_track_a_known_distribution() {
        let mut h = Histogram::new();
        for i in 0..1000 {
            h.observe(f64::from(i));
        }
        // Buckets are power-of-two wide, so percentile estimates are
        // coarse; they must still land in the right region.
        let p50 = h.quantile(0.5);
        assert!((250.0..=750.0).contains(&p50), "p50 {p50}");
        assert!(h.quantile(0.99) >= p50);
        assert!(h.quantile(1.0) <= 999.0);
    }

    #[test]
    fn registry_preserves_insertion_order() {
        let r = MetricsRegistry::new();
        r.observe("zulu", 1.0);
        r.observe("alpha", 2.0);
        r.add("hits", 3);
        r.set_gauge("load", 0.5);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.histograms.iter().map(|h| h.name.as_str()).collect();
        assert_eq!(names, vec!["zulu", "alpha"]);
        assert_eq!(r.counter("hits"), 3);
        assert_eq!(r.counter("misses"), 0);
        assert!((r.gauge("load") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let r = MetricsRegistry::new();
        r.add("jobs", 8);
        r.observe("run_ms", 12.5);
        r.observe("run_ms", 30.0);
        let snap = r.snapshot();
        let json = serde::json::to_string(&snap);
        let back: MetricsSnapshot = serde::json::from_str(&json).expect("round trips");
        assert_eq!(back, snap);
    }
}
