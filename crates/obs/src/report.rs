//! Human-readable trace summaries for `forge report`.
//!
//! Rebuilds per-stage histograms from a parsed Chrome trace and renders
//! a breakdown table: flow stages first (in first-occurrence order, so
//! they read in pipeline order), then every other span category. All
//! percentiles come from the [`Histogram`](crate::Histogram) registry —
//! the same estimator the live metrics path uses.

use crate::chrome::ParsedTrace;
use crate::metrics::MetricsRegistry;

fn push_row(out: &mut String, name: &str, summary: &crate::metrics::HistogramSummary) {
    out.push_str(&format!(
        "  {name:<14} {count:>5} {total:>12.2} {mean:>10.2} {p50:>10.2} {p90:>10.2} {p99:>10.2}\n",
        name = name,
        count = summary.count,
        total = summary.mean * summary.count as f64,
        mean = summary.mean,
        p50 = summary.p50,
        p90 = summary.p90,
        p99 = summary.p99,
    ));
}

fn section(out: &mut String, title: &str, rows: &[(String, crate::metrics::HistogramSummary)]) {
    if rows.is_empty() {
        return;
    }
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "  {:<14} {:>5} {:>12} {:>10} {:>10} {:>10} {:>10}\n",
        "span", "count", "total ms", "mean ms", "p50 ms", "p90 ms", "p99 ms"
    ));
    for (name, summary) in rows {
        push_row(out, name, summary);
    }
    out.push('\n');
}

/// Renders a per-stage time breakdown of a parsed trace.
///
/// Spans are grouped by `category/name`; durations are reported in
/// milliseconds with p50/p90/p99 percentile estimates.
#[must_use]
pub fn render_trace_report(trace: &ParsedTrace) -> String {
    let registry = MetricsRegistry::new();
    let mut spans = trace.spans.clone();
    spans.sort_by(|a, b| a.start_us.total_cmp(&b.start_us));
    let mut total_span_ms = 0.0;
    for span in &spans {
        let dur_ms = span.dur_us / 1e3;
        registry.observe(&format!("{}/{}", span.category, span.name), dur_ms);
        total_span_ms += dur_ms;
    }

    let mut flow_rows = Vec::new();
    let mut other_rows = Vec::new();
    for (key, histogram) in registry.histograms() {
        let (category, name) = key.split_once('/').unwrap_or(("", key.as_str()));
        let row = (name.to_string(), histogram.summary());
        if category == "flow" {
            flow_rows.push(row);
        } else {
            other_rows.push((format!("{category}/{name}"), row.1));
        }
    }

    let mut out = String::new();
    out.push_str(&format!(
        "trace summary: {} spans, {} instants, {:.2} ms total span time\n\n",
        spans.len(),
        trace.instants.len(),
        total_span_ms
    ));
    section(&mut out, "flow stages", &flow_rows);
    section(&mut out, "other spans", &other_rows);
    if !trace.instants.is_empty() {
        let counts = {
            let r = MetricsRegistry::new();
            for instant in &trace.instants {
                r.add(&format!("{}/{}", instant.category, instant.name), 1);
            }
            r.snapshot().counters
        };
        out.push_str("events\n");
        for counter in counts {
            out.push_str(&format!("  {:<24} {:>6}\n", counter.name, counter.value));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{InstantRecord, SpanRecord};

    fn span(id: u64, name: &str, category: &str, start_us: f64, dur_us: f64) -> SpanRecord {
        SpanRecord {
            id,
            parent: 0,
            name: name.to_string(),
            category: category.to_string(),
            track: 0,
            start_us,
            dur_us,
            detail: String::new(),
        }
    }

    #[test]
    fn flow_stages_lead_with_percentiles() {
        let trace = ParsedTrace {
            spans: vec![
                span(1, "synthesize", "flow", 0.0, 2000.0),
                span(2, "route", "flow", 2000.0, 3000.0),
                span(3, "counter8", "job", 0.0, 5000.0),
                span(4, "synthesize", "flow", 5000.0, 2500.0),
            ],
            instants: vec![InstantRecord {
                name: "cache-hit".to_string(),
                category: "exec".to_string(),
                track: 0,
                at_us: 10.0,
                detail: String::new(),
            }],
        };
        let text = render_trace_report(&trace);
        assert!(text.contains("flow stages"), "{text}");
        assert!(text.contains("p50 ms"), "{text}");
        assert!(text.contains("p90 ms"), "{text}");
        assert!(text.contains("p99 ms"), "{text}");
        assert!(text.contains("synthesize"), "{text}");
        assert!(text.contains("job/counter8"), "{text}");
        assert!(text.contains("exec/cache-hit"), "{text}");
        // synthesize appears before route: first-occurrence order.
        let synth = text.find("synthesize").expect("synth row");
        let route = text.find("route").expect("route row");
        assert!(synth < route);
    }

    #[test]
    fn empty_trace_renders_header_only() {
        let text = render_trace_report(&ParsedTrace::default());
        assert!(text.contains("0 spans"));
        assert!(!text.contains("flow stages"));
    }
}
