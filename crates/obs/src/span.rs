//! Span and instant-event records.
//!
//! A *span* is a named interval of (wall-clock or virtual) time with an
//! explicit parent, forming trees that exporters render as nested bars
//! (Chrome trace viewer) or folded stacks (flamegraphs). An *instant* is
//! a zero-duration marker — a cache hit, a retry, a job arrival.
//!
//! All timestamps are microseconds relative to the owning
//! [`Tracer`](crate::Tracer)'s epoch, so traces from concurrent threads
//! share one time axis.

use serde::Serialize;

/// Identity of a recorded span; `SpanId::NONE` means "no parent".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The absent parent (root spans).
    pub const NONE: SpanId = SpanId(0);

    /// Whether this id refers to an actual span.
    #[must_use]
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

/// One completed span.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SpanRecord {
    /// Unique id within the trace (monotonic, 1-based; 0 is reserved).
    pub id: u64,
    /// Parent span id, or 0 for roots.
    pub parent: u64,
    /// Span name (e.g. a flow stage or job name).
    pub name: String,
    /// Category: `flow`, `job`, `exec`, `des`, ...
    pub category: String,
    /// Track (Chrome `tid`): 0 = coordinator, workers/universities above.
    pub track: usize,
    /// Start, in microseconds since the tracer epoch.
    pub start_us: f64,
    /// Duration in microseconds (never negative).
    pub dur_us: f64,
    /// Free-form result annotation.
    pub detail: String,
}

impl SpanRecord {
    /// End timestamp, in microseconds since the tracer epoch.
    #[must_use]
    pub fn end_us(&self) -> f64 {
        self.start_us + self.dur_us
    }
}

/// One instantaneous event.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct InstantRecord {
    /// Event name (e.g. `cache-hit`, `retry`, `arrival`).
    pub name: String,
    /// Category, as for spans.
    pub category: String,
    /// Track the event belongs to.
    pub track: usize,
    /// Timestamp, in microseconds since the tracer epoch.
    pub at_us: f64,
    /// Free-form annotation.
    pub detail: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_id_none_is_absent() {
        assert!(!SpanId::NONE.is_some());
        assert!(SpanId(3).is_some());
    }

    #[test]
    fn end_is_start_plus_duration() {
        let record = SpanRecord {
            id: 1,
            parent: 0,
            name: "s".into(),
            category: "c".into(),
            track: 0,
            start_us: 10.0,
            dur_us: 5.5,
            detail: String::new(),
        };
        assert!((record.end_us() - 15.5).abs() < 1e-12);
    }
}
