//! The tracer: a cheap handle that records spans, instants and metrics
//! into a shared, thread-safe collector.
//!
//! A [`Tracer`] is either *enabled* (it holds an `Arc` to the shared
//! collector) or *disabled* (it holds nothing and every call is a
//! no-op). Instrumented code takes `&Tracer` unconditionally; the
//! disabled path costs one branch per call site, which keeps the
//! overhead of always-on instrumentation hooks well under the 5%
//! budget.
//!
//! Handles are scoped with [`Tracer::at`]: a worker thread gets a clone
//! whose default parent is the batch span and whose default track is
//! the worker's lane, so code deeper in the stack can open spans without
//! threading parent ids around explicitly.

use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::span::{InstantRecord, SpanId, SpanRecord};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    next_id: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
    instants: Mutex<Vec<InstantRecord>>,
    tracks: Mutex<Vec<(usize, String)>>,
    metrics: MetricsRegistry,
}

impl Inner {
    fn new() -> Self {
        Inner {
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            spans: Mutex::new(Vec::new()),
            instants: Mutex::new(Vec::new()),
            tracks: Mutex::new(Vec::new()),
            metrics: MetricsRegistry::new(),
        }
    }

    fn now_us(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e6
    }

    fn alloc_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }
}

/// Handle for recording trace events; cheap to clone, safe to share
/// across threads. See the module docs for the enabled/disabled and
/// scoping model.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
    parent: u64,
    track: usize,
}

impl Tracer {
    /// A fresh, enabled tracer with its own collector; the epoch is set
    /// to "now".
    #[must_use]
    pub fn new() -> Self {
        Tracer {
            inner: Some(Arc::new(Inner::new())),
            parent: 0,
            track: 0,
        }
    }

    /// A disabled tracer: every recording call is a no-op.
    #[must_use]
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// Whether events are actually being collected.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A handle sharing this collector whose spans default to the given
    /// parent and track.
    #[must_use]
    pub fn at(&self, parent: SpanId, track: usize) -> Tracer {
        Tracer {
            inner: self.inner.clone(),
            parent: parent.0,
            track,
        }
    }

    /// The track new spans land on by default.
    #[must_use]
    pub fn default_track(&self) -> usize {
        self.track
    }

    /// Names a track for exporters (Chrome trace thread names).
    pub fn set_track_name(&self, track: usize, name: &str) {
        if let Some(inner) = &self.inner {
            let mut tracks = inner.tracks.lock().expect("tracks lock");
            if let Some(entry) = tracks.iter_mut().find(|(t, _)| *t == track) {
                entry.1 = name.to_string();
            } else {
                tracks.push((track, name.to_string()));
            }
        }
    }

    /// Opens a span under this handle's default parent. The returned
    /// guard records the span when finished or dropped.
    #[must_use]
    pub fn span(&self, name: &str, category: &str) -> SpanGuard {
        self.child_span(name, category, SpanId(self.parent))
    }

    /// Opens a span under an explicit parent.
    #[must_use]
    pub fn child_span(&self, name: &str, category: &str, parent: SpanId) -> SpanGuard {
        let start = Instant::now();
        match &self.inner {
            Some(inner) => SpanGuard {
                inner: Some(inner.clone()),
                start,
                // Derived from the same clock read as `start` so that
                // start_us + dur_us equals the close time even when the
                // thread is preempted mid-open.
                start_us: start.duration_since(inner.epoch).as_secs_f64() * 1e6,
                id: inner.alloc_id(),
                parent: parent.0,
                track: self.track,
                name: name.to_string(),
                category: category.to_string(),
                detail: String::new(),
                finished: false,
            },
            None => SpanGuard {
                inner: None,
                start,
                start_us: 0.0,
                id: 0,
                parent: 0,
                track: 0,
                name: String::new(),
                category: String::new(),
                detail: String::new(),
                finished: false,
            },
        }
    }

    /// Records an instantaneous event on this handle's track.
    pub fn instant(&self, name: &str, category: &str, detail: &str) {
        if let Some(inner) = &self.inner {
            let at_us = inner.now_us();
            inner
                .instants
                .lock()
                .expect("instants lock")
                .push(InstantRecord {
                    name: name.to_string(),
                    category: category.to_string(),
                    track: self.track,
                    at_us,
                    detail: detail.to_string(),
                });
        }
    }

    /// Reserves a span id so children can reference a parent that will
    /// be recorded later (e.g. a simulation root closed at the end).
    /// Returns `SpanId::NONE` when disabled.
    #[must_use]
    pub fn reserve_span(&self) -> SpanId {
        match &self.inner {
            Some(inner) => SpanId(inner.alloc_id()),
            None => SpanId::NONE,
        }
    }

    /// Records a span with explicit (typically virtual) timestamps under
    /// a previously reserved id. No-op when disabled or `id` is `NONE`.
    #[allow(clippy::too_many_arguments)]
    pub fn record_virtual_span(
        &self,
        id: SpanId,
        parent: SpanId,
        name: &str,
        category: &str,
        track: usize,
        start_us: f64,
        dur_us: f64,
        detail: &str,
    ) {
        if let Some(inner) = &self.inner {
            if !id.is_some() {
                return;
            }
            inner.spans.lock().expect("spans lock").push(SpanRecord {
                id: id.0,
                parent: parent.0,
                name: name.to_string(),
                category: category.to_string(),
                track,
                start_us,
                dur_us: dur_us.max(0.0),
                detail: detail.to_string(),
            });
        }
    }

    /// Records a span with explicit timestamps, allocating a fresh id.
    /// Returns the id (`NONE` when disabled).
    #[allow(clippy::too_many_arguments)]
    pub fn virtual_span(
        &self,
        parent: SpanId,
        name: &str,
        category: &str,
        track: usize,
        start_us: f64,
        dur_us: f64,
        detail: &str,
    ) -> SpanId {
        let id = self.reserve_span();
        self.record_virtual_span(id, parent, name, category, track, start_us, dur_us, detail);
        id
    }

    /// Records an instant with an explicit (virtual) timestamp.
    pub fn virtual_instant(
        &self,
        name: &str,
        category: &str,
        track: usize,
        at_us: f64,
        detail: &str,
    ) {
        if let Some(inner) = &self.inner {
            inner
                .instants
                .lock()
                .expect("instants lock")
                .push(InstantRecord {
                    name: name.to_string(),
                    category: category.to_string(),
                    track,
                    at_us,
                    detail: detail.to_string(),
                });
        }
    }

    /// Adds to a counter in the trace's metrics registry.
    pub fn add(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.add(name, delta);
        }
    }

    /// Records a histogram sample in the trace's metrics registry.
    pub fn observe(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.metrics.observe(name, value);
        }
    }

    /// Sets a gauge in the trace's metrics registry.
    pub fn set_gauge(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.metrics.set_gauge(name, value);
        }
    }

    /// Snapshot of the trace's metrics (empty when disabled).
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(inner) => inner.metrics.snapshot(),
            None => MetricsSnapshot::default(),
        }
    }

    /// All spans recorded so far (start-order not guaranteed).
    #[must_use]
    pub fn spans(&self) -> Vec<SpanRecord> {
        match &self.inner {
            Some(inner) => inner.spans.lock().expect("spans lock").clone(),
            None => Vec::new(),
        }
    }

    /// All instants recorded so far.
    #[must_use]
    pub fn instants(&self) -> Vec<InstantRecord> {
        match &self.inner {
            Some(inner) => inner.instants.lock().expect("instants lock").clone(),
            None => Vec::new(),
        }
    }

    /// Track names registered so far, sorted by track index.
    #[must_use]
    pub fn track_names(&self) -> Vec<(usize, String)> {
        match &self.inner {
            Some(inner) => {
                let mut tracks = inner.tracks.lock().expect("tracks lock").clone();
                tracks.sort_by_key(|(t, _)| *t);
                tracks
            }
            None => Vec::new(),
        }
    }

    /// Microseconds elapsed since the tracer epoch (0 when disabled).
    #[must_use]
    pub fn elapsed_us(&self) -> f64 {
        match &self.inner {
            Some(inner) => inner.now_us(),
            None => 0.0,
        }
    }
}

/// RAII guard for an open span. Dropping the guard records the span;
/// [`SpanGuard::finish`] records it explicitly and returns the wall
/// time in milliseconds (measured even when tracing is disabled, so
/// callers can reuse it for their own reports).
#[derive(Debug)]
pub struct SpanGuard {
    inner: Option<Arc<Inner>>,
    start: Instant,
    start_us: f64,
    id: u64,
    parent: u64,
    track: usize,
    name: String,
    category: String,
    detail: String,
    finished: bool,
}

impl SpanGuard {
    /// This span's id, for parenting children (`NONE` when disabled).
    #[must_use]
    pub fn id(&self) -> SpanId {
        SpanId(self.id)
    }

    /// Sets the free-form annotation recorded with the span.
    pub fn set_detail(&mut self, detail: &str) {
        if self.inner.is_some() {
            self.detail = detail.to_string();
        }
    }

    /// Wall time since the span opened, in milliseconds.
    #[must_use]
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }

    fn record(&mut self) -> f64 {
        let elapsed_ms = self.elapsed_ms();
        if self.finished {
            return elapsed_ms;
        }
        self.finished = true;
        if let Some(inner) = self.inner.take() {
            inner.spans.lock().expect("spans lock").push(SpanRecord {
                id: self.id,
                parent: self.parent,
                name: std::mem::take(&mut self.name),
                category: std::mem::take(&mut self.category),
                track: self.track,
                start_us: self.start_us,
                dur_us: (elapsed_ms * 1e3).max(0.0),
                detail: std::mem::take(&mut self.detail),
            });
        }
        elapsed_ms
    }

    /// Records the span now; returns the wall time in milliseconds.
    pub fn finish(mut self) -> f64 {
        self.record()
    }

    /// Sets the detail annotation and records the span; returns the wall
    /// time in milliseconds.
    pub fn finish_with_detail(mut self, detail: &str) -> f64 {
        self.set_detail(detail);
        self.record()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.record();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing_but_measures_time() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        let guard = tracer.span("work", "test");
        assert!(!guard.id().is_some());
        let ms = guard.finish();
        assert!(ms >= 0.0);
        tracer.instant("event", "test", "");
        tracer.add("count", 1);
        tracer.observe("hist", 1.0);
        assert!(tracer.spans().is_empty());
        assert!(tracer.instants().is_empty());
        assert!(tracer.snapshot().counters.is_empty());
    }

    #[test]
    fn spans_nest_with_explicit_parents() {
        let tracer = Tracer::new();
        let root = tracer.span("root", "test");
        let root_id = root.id();
        let child = tracer.child_span("child", "test", root_id);
        assert!(child.id().0 > root_id.0, "ids are monotonic");
        child.finish();
        root.finish();
        let spans = tracer.spans();
        assert_eq!(spans.len(), 2);
        let child_rec = spans.iter().find(|s| s.name == "child").expect("child");
        assert_eq!(child_rec.parent, root_id.0);
        let root_rec = spans.iter().find(|s| s.name == "root").expect("root");
        assert_eq!(root_rec.parent, 0);
        assert!(root_rec.dur_us >= child_rec.dur_us);
    }

    #[test]
    fn drop_records_an_unfinished_span() {
        let tracer = Tracer::new();
        {
            let _guard = tracer.span("dropped", "test");
        }
        assert_eq!(tracer.spans().len(), 1);
    }

    #[test]
    fn scoped_handles_share_the_collector() {
        let tracer = Tracer::new();
        let root = tracer.span("root", "test");
        let scoped = tracer.at(root.id(), 3);
        assert_eq!(scoped.default_track(), 3);
        scoped.span("inner", "test").finish();
        scoped.instant("mark", "test", "x");
        root.finish();
        let spans = tracer.spans();
        let inner = spans.iter().find(|s| s.name == "inner").expect("inner");
        assert_eq!(inner.track, 3);
        assert!(inner.parent != 0);
        assert_eq!(tracer.instants()[0].track, 3);
    }

    #[test]
    fn virtual_spans_take_explicit_timestamps() {
        let tracer = Tracer::new();
        let root = tracer.reserve_span();
        let child = tracer.virtual_span(root, "service", "des", 2, 1000.0, 500.0, "");
        tracer.record_virtual_span(root, SpanId::NONE, "sim", "des", 0, 0.0, 2000.0, "");
        tracer.virtual_instant("arrival", "des", 2, 900.0, "");
        let spans = tracer.spans();
        assert_eq!(spans.len(), 2);
        let service = spans.iter().find(|s| s.name == "service").expect("service");
        assert_eq!(service.id, child.0);
        assert_eq!(service.parent, root.0);
        assert!((service.start_us - 1000.0).abs() < 1e-9);
        assert!((service.dur_us - 500.0).abs() < 1e-9);
        assert_eq!(tracer.instants().len(), 1);
    }

    #[test]
    fn metrics_flow_through_the_tracer() {
        let tracer = Tracer::new();
        tracer.add("jobs", 2);
        tracer.observe("run_ms", 10.0);
        tracer.set_gauge("load", 0.75);
        let snap = tracer.snapshot();
        assert_eq!(snap.counters[0].value, 2);
        assert_eq!(snap.histograms[0].summary.count, 1);
        assert!((snap.gauges[0].value - 0.75).abs() < 1e-12);
    }

    #[test]
    fn track_names_sort_by_index() {
        let tracer = Tracer::new();
        tracer.set_track_name(2, "worker-1");
        tracer.set_track_name(0, "coordinator");
        tracer.set_track_name(2, "worker-renamed");
        let names = tracer.track_names();
        assert_eq!(
            names,
            vec![
                (0, "coordinator".to_string()),
                (2, "worker-renamed".to_string())
            ]
        );
    }
}
