//! Property tests for the observability substrate: span trees produced
//! by arbitrarily interleaved guard open/close sequences stay
//! well-formed, histogram merge behaves like a commutative monoid, and
//! Chrome trace JSON round-trips losslessly through the vendored serde.

use chipforge_obs::{
    folded_stacks, parse_chrome_json, trace_json, Histogram, SpanGuard, SpanId, Tracer,
};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::HashMap;

/// Drives real `SpanGuard`s from a random open/close script. `true`
/// opens a span (child of the innermost open one), `false` closes the
/// innermost. Closes on an empty stack and the final drain keep every
/// script balanced.
fn run_script(tracer: &Tracer, ops: &[bool]) -> usize {
    let mut stack: Vec<SpanGuard> = Vec::new();
    let mut opened = 0;
    for (i, &open) in ops.iter().enumerate() {
        if open || stack.is_empty() {
            let name = format!("op{i}");
            let span = match stack.last() {
                Some(parent) => tracer.child_span(&name, "prop", parent.id()),
                None => tracer.span(&name, "prop"),
            };
            stack.push(span);
            opened += 1;
        } else {
            stack.pop().expect("stack checked non-empty").finish();
        }
    }
    while let Some(span) = stack.pop() {
        span.finish();
    }
    opened
}

/// Values that survive a JSON round-trip exactly: non-negative with a
/// fixed thousandth resolution, far inside f64's exact-integer range.
fn any_values(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    vec(
        (0u64..4_000_000_000).prop_map(|v| v as f64 / 1000.0),
        0..max_len,
    )
}

fn histogram_of(values: &[f64]) -> Histogram {
    let mut hist = Histogram::new();
    for &v in values {
        hist.observe(v);
    }
    hist
}

fn assert_histograms_equal(a: &Histogram, b: &Histogram) {
    assert_eq!(a.bucket_counts(), b.bucket_counts());
    assert_eq!(a.count(), b.count());
    assert_eq!(a.min(), b.min());
    assert_eq!(a.max(), b.max());
    // f64 addition is only approximately associative.
    let scale = a.sum().abs().max(b.sum().abs()).max(1.0);
    assert!(
        (a.sum() - b.sum()).abs() <= scale * 1e-9,
        "sums diverge: {} vs {}",
        a.sum(),
        b.sum()
    );
}

proptest! {
    #[test]
    fn span_scripts_produce_balanced_well_formed_trees(ops in vec(any::<bool>(), 1..64)) {
        let tracer = Tracer::new();
        let opened = run_script(&tracer, &ops);
        let spans = tracer.spans();
        // Balanced: every opened guard recorded exactly one span.
        prop_assert_eq!(spans.len(), opened);

        let by_id: HashMap<u64, _> = spans.iter().map(|s| (s.id, s)).collect();
        prop_assert_eq!(by_id.len(), spans.len(), "span ids are unique");
        for span in &spans {
            prop_assert!(span.dur_us >= 0.0, "negative duration on {}", span.name);
            if span.parent == SpanId::NONE.0 {
                continue;
            }
            let parent = by_id
                .get(&span.parent)
                .expect("parent id refers to a recorded span");
            // Ids are allocated at open, so a parent always precedes its
            // children.
            prop_assert!(parent.id < span.id, "parent allocated before child");
            // A child opens after its parent and is closed (by the
            // stack discipline) before it; tolerance covers f64
            // microsecond rounding only.
            let eps = 0.5;
            prop_assert!(span.start_us + eps >= parent.start_us);
            prop_assert!(span.end_us() <= parent.end_us() + eps);
        }
    }

    #[test]
    fn span_scripts_never_break_the_folded_stack_export(ops in vec(any::<bool>(), 1..64)) {
        let tracer = Tracer::new();
        let opened = run_script(&tracer, &ops);
        let folded = folded_stacks(&tracer.spans());
        for line in folded.lines() {
            let (stack, self_us) = line.rsplit_once(' ').expect("`stack self_us` shape");
            prop_assert!(!stack.is_empty());
            let parsed: f64 = self_us.parse().expect("numeric self time");
            prop_assert!(parsed >= 0.0);
        }
        prop_assert!(opened == 0 || !folded.is_empty());
    }

    #[test]
    fn histogram_merge_is_associative(
        a in any_values(40),
        b in any_values(40),
        c in any_values(40),
    ) {
        let (a, b, c) = (histogram_of(&a), histogram_of(&b), histogram_of(&c));
        let left = a.merged(&b).merged(&c);
        let right = a.merged(&b.merged(&c));
        assert_histograms_equal(&left, &right);
    }

    #[test]
    fn histogram_merge_is_commutative_with_empty_identity(
        a in any_values(40),
        b in any_values(40),
    ) {
        let (a, b) = (histogram_of(&a), histogram_of(&b));
        assert_histograms_equal(&a.merged(&b), &b.merged(&a));
        assert_histograms_equal(&a.merged(&Histogram::new()), &a);
    }

    #[test]
    fn histogram_merge_matches_observing_the_concatenation(
        a in any_values(60),
        b in any_values(60),
    ) {
        let merged = histogram_of(&a).merged(&histogram_of(&b));
        let all: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        let whole = histogram_of(&all);
        assert_histograms_equal(&merged, &whole);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(merged.quantile(q), whole.quantile(q));
        }
    }

    #[test]
    fn chrome_trace_json_round_trips_virtual_spans(
        spans in vec(
            (
                "[a-z][a-z0-9_]{0,8}",
                0usize..4,
                0u32..10_000_000,
                0u32..10_000_000,
            ),
            1..24,
        ),
        instants in vec(("[a-z][a-z0-9_]{0,8}", 0usize..4, 0u32..10_000_000), 0..12),
    ) {
        let tracer = Tracer::new();
        let mut recorded = Vec::new();
        let mut parent = SpanId::NONE;
        for (name, track, start, dur) in &spans {
            let id = tracer.virtual_span(
                parent,
                name,
                "prop",
                *track,
                f64::from(*start),
                f64::from(*dur),
                "detail",
            );
            recorded.push((id.0, parent.0, name.clone(), *track, *start, *dur));
            parent = id;
        }
        for (name, track, at) in &instants {
            tracer.virtual_instant(name, "prop", *track, f64::from(*at), "");
        }

        let parsed = parse_chrome_json(&trace_json(&tracer)).expect("own output parses");
        prop_assert_eq!(parsed.spans.len(), recorded.len());
        prop_assert_eq!(parsed.instants.len(), instants.len());
        for (id, parent, name, track, start, dur) in &recorded {
            let span = parsed
                .spans
                .iter()
                .find(|s| s.id == *id)
                .expect("span survives the round trip");
            prop_assert_eq!(span.parent, *parent);
            prop_assert_eq!(&span.name, name);
            prop_assert_eq!(span.track, *track);
            prop_assert_eq!(span.start_us, f64::from(*start));
            prop_assert_eq!(span.dur_us, f64::from(*dur));
        }
    }
}
