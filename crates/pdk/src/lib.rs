//! # chipforge-pdk
//!
//! Synthetic, openly redistributable process-design-kit (PDK) models for the
//! `chipforge` flow.
//!
//! Real PDKs are gated behind NDAs and export-control restrictions — exactly
//! the access barrier the underlying position paper (DATE 2025) analyses.
//! This crate substitutes them with parameterized technology models whose
//! headline parameters (contacted poly pitch, metal pitch, track height,
//! supply voltage, FO4 delay, leakage trends) follow the published scaling
//! curves of commercial nodes from 180 nm down to 2 nm. Open nodes (180 nm,
//! 130 nm) mirror the situation of GF180MCU / SkyWater SKY130 / IHP SG13G2:
//! they are the only ones usable without an NDA.
//!
//! The crate provides:
//!
//! * [`TechnologyNode`] — node-level electrical and geometric parameters;
//! * [`DesignRules`] — width/spacing/via rules consumed by the DRC engine
//!   in `chipforge-layout`;
//! * [`StdCellLibrary`] / [`LibCell`] — a Liberty-like standard-cell library
//!   generator with linear-delay-model timing;
//! * [`SramMacro`] — a memory-generator model;
//! * [`Pdk`] — the bundle of all of the above plus the licensing and access
//!   metadata used by the enablement-effort experiments.
//!
//! ## Example
//!
//! ```
//! use chipforge_pdk::{CellClass, LibraryKind, Pdk, TechnologyNode};
//!
//! let pdk = Pdk::open(TechnologyNode::N130);
//! let lib = pdk.library(LibraryKind::Open);
//! let inv = lib.smallest(CellClass::Inv).expect("INV exists");
//! assert!(inv.area_um2() > 0.0);
//! // delay grows with load
//! assert!(inv.delay_ps(8.0) > inv.delay_ps(1.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod liberty;
mod library;
mod memgen;
mod node;
mod process;
mod rules;

pub use library::{CellClass, DriveStrength, LibCell, LibraryKind, StdCellLibrary};
pub use memgen::SramMacro;
pub use node::TechnologyNode;
pub use process::{AccessRequirement, Pdk, PdkLicense};
pub use rules::{DesignRules, Layer};
