//! Liberty (`.lib`) file emission for generated libraries.
//!
//! Real enablement means a library must be consumable by external tools;
//! this module serializes a [`StdCellLibrary`] in the Liberty format that
//! synthesis and STA tools expect (linear-delay `generic_cmos` style
//! rather than NLDM tables, matching the crate's timing model).

use crate::library::{CellClass, StdCellLibrary};
use std::fmt::Write as _;

/// Serializes the library as Liberty text.
///
/// The output uses `delay_model : generic_cmos` with
/// `intrinsic_rise/fall` and `rise/fall_resistance` attributes — the exact
/// parameters of the crate's linear delay model, so a round trip through
/// an external tool preserves timing semantics.
#[must_use]
pub fn write_liberty(lib: &StdCellLibrary) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "library ({}) {{", lib.name());
    let _ = writeln!(out, "  delay_model : generic_cmos;");
    let _ = writeln!(out, "  time_unit : \"1ps\";");
    let _ = writeln!(out, "  capacitive_load_unit (1, ff);");
    let _ = writeln!(out, "  leakage_power_unit : \"1nW\";");
    let _ = writeln!(out, "  voltage_unit : \"1V\";");
    let _ = writeln!(out, "  nom_voltage : {:.2};", lib.node().supply_v());
    let _ = writeln!(out, "  area_unit : \"1um2\";");
    for cell in lib.cells() {
        let _ = writeln!(out, "  cell ({}) {{", cell.name());
        let _ = writeln!(out, "    area : {:.4};", cell.area_um2());
        let _ = writeln!(out, "    cell_leakage_power : {:.4};", cell.leakage_nw());
        if cell.class().is_sequential() {
            let _ = writeln!(out, "    ff (IQ, IQN) {{");
            let _ = writeln!(out, "      clocked_on : \"CLK\";");
            let _ = writeln!(out, "      next_state : \"D\";");
            let _ = writeln!(out, "    }}");
            let _ = writeln!(out, "    pin (CLK) {{");
            let _ = writeln!(out, "      direction : input;");
            let _ = writeln!(out, "      clock : true;");
            let _ = writeln!(out, "      capacitance : {:.4};", cell.input_cap_ff() * 0.4);
            let _ = writeln!(out, "    }}");
        }
        for pin in pin_names(cell.class()) {
            let _ = writeln!(out, "    pin ({pin}) {{");
            let _ = writeln!(out, "      direction : input;");
            let _ = writeln!(out, "      capacitance : {:.4};", cell.input_cap_ff());
            let _ = writeln!(out, "    }}");
        }
        let out_pin = if cell.class().is_sequential() {
            "Q"
        } else {
            "Y"
        };
        let _ = writeln!(out, "    pin ({out_pin}) {{");
        let _ = writeln!(out, "      direction : output;");
        let _ = writeln!(
            out,
            "      function : \"{}\";",
            function_string(cell.class())
        );
        let _ = writeln!(out, "      timing () {{");
        let _ = writeln!(out, "        intrinsic_rise : {:.4};", cell.intrinsic_ps());
        let _ = writeln!(out, "        intrinsic_fall : {:.4};", cell.intrinsic_ps());
        let _ = writeln!(
            out,
            "        rise_resistance : {:.4};",
            cell.resistance_ps_per_ff()
        );
        let _ = writeln!(
            out,
            "        fall_resistance : {:.4};",
            cell.resistance_ps_per_ff()
        );
        let _ = writeln!(out, "      }}");
        let _ = writeln!(out, "    }}");
        let _ = writeln!(out, "  }}");
    }
    let _ = writeln!(out, "}}");
    out
}

fn pin_names(class: CellClass) -> &'static [&'static str] {
    match class {
        CellClass::TieLo | CellClass::TieHi => &[],
        CellClass::Buf | CellClass::Inv => &["A"],
        CellClass::Dff => &["D"],
        CellClass::DffEn => &["D", "EN"],
        CellClass::And2
        | CellClass::Nand2
        | CellClass::Or2
        | CellClass::Nor2
        | CellClass::Xor2
        | CellClass::Xnor2 => &["A", "B"],
        CellClass::Mux2 => &["A", "B", "S"],
        CellClass::And3
        | CellClass::Nand3
        | CellClass::Or3
        | CellClass::Nor3
        | CellClass::Maj3
        | CellClass::Xor3
        | CellClass::Aoi21
        | CellClass::Oai21 => &["A", "B", "C"],
    }
}

fn function_string(class: CellClass) -> &'static str {
    match class {
        CellClass::TieLo => "0",
        CellClass::TieHi => "1",
        CellClass::Buf => "A",
        CellClass::Inv => "!A",
        CellClass::And2 => "A B",
        CellClass::Nand2 => "!(A B)",
        CellClass::Or2 => "A + B",
        CellClass::Nor2 => "!(A + B)",
        CellClass::Xor2 => "A ^ B",
        CellClass::Xnor2 => "!(A ^ B)",
        CellClass::And3 => "A B C",
        CellClass::Nand3 => "!(A B C)",
        CellClass::Or3 => "A + B + C",
        CellClass::Nor3 => "!(A + B + C)",
        CellClass::Aoi21 => "!((A B) + C)",
        CellClass::Oai21 => "!((A + B) C)",
        CellClass::Mux2 => "(A !S) + (B S)",
        CellClass::Maj3 => "(A B) + (A C) + (B C)",
        CellClass::Xor3 => "A ^ B ^ C",
        CellClass::Dff | CellClass::DffEn => "IQ",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::{LibraryKind, StdCellLibrary};
    use crate::node::TechnologyNode;

    fn lib() -> StdCellLibrary {
        StdCellLibrary::generate(TechnologyNode::N130, LibraryKind::Open)
    }

    #[test]
    fn output_contains_every_cell() {
        let lib = lib();
        let text = write_liberty(&lib);
        for cell in lib.cells() {
            assert!(
                text.contains(&format!("cell ({})", cell.name())),
                "{} missing",
                cell.name()
            );
        }
    }

    #[test]
    fn braces_balance() {
        let text = write_liberty(&lib());
        let open = text.matches('{').count();
        let close = text.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn flip_flops_have_clock_pins_and_ff_groups() {
        let text = write_liberty(&lib());
        assert!(text.contains("ff (IQ, IQN)"));
        assert!(text.contains("clocked_on : \"CLK\";"));
        assert!(text.contains("clock : true;"));
    }

    #[test]
    fn header_carries_units_and_voltage() {
        let text = write_liberty(&lib());
        assert!(text.contains("time_unit : \"1ps\";"));
        assert!(text.contains("capacitive_load_unit (1, ff);"));
        assert!(text.contains("nom_voltage : 1.50;"));
    }

    #[test]
    fn functions_present_for_combinational_cells() {
        let text = write_liberty(&lib());
        assert!(text.contains("function : \"!(A B)\";"), "NAND2 function");
        assert!(
            text.contains("function : \"(A B) + (A C) + (B C)\";"),
            "MAJ3"
        );
    }
}
