//! Liberty-like standard-cell library generator.

use crate::node::TechnologyNode;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Logical class of a standard cell.
///
/// The set matches the gate functions used by the `chipforge-synth`
/// technology mapper; the string form of each class is the prefix of the
/// generated library cell names (`NAND2_X1`, `DFF_X2`, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum CellClass {
    TieLo,
    TieHi,
    Buf,
    Inv,
    And2,
    Nand2,
    Or2,
    Nor2,
    Xor2,
    Xnor2,
    And3,
    Nand3,
    Or3,
    Nor3,
    Aoi21,
    Oai21,
    Mux2,
    Maj3,
    Xor3,
    Dff,
    DffEn,
}

impl CellClass {
    /// All classes in a stable order.
    pub const ALL: [CellClass; 21] = [
        CellClass::TieLo,
        CellClass::TieHi,
        CellClass::Buf,
        CellClass::Inv,
        CellClass::And2,
        CellClass::Nand2,
        CellClass::Or2,
        CellClass::Nor2,
        CellClass::Xor2,
        CellClass::Xnor2,
        CellClass::And3,
        CellClass::Nand3,
        CellClass::Or3,
        CellClass::Nor3,
        CellClass::Aoi21,
        CellClass::Oai21,
        CellClass::Mux2,
        CellClass::Maj3,
        CellClass::Xor3,
        CellClass::Dff,
        CellClass::DffEn,
    ];

    /// Library-name prefix of the class.
    #[must_use]
    pub fn prefix(self) -> &'static str {
        match self {
            CellClass::TieLo => "TIELO",
            CellClass::TieHi => "TIEHI",
            CellClass::Buf => "BUF",
            CellClass::Inv => "INV",
            CellClass::And2 => "AND2",
            CellClass::Nand2 => "NAND2",
            CellClass::Or2 => "OR2",
            CellClass::Nor2 => "NOR2",
            CellClass::Xor2 => "XOR2",
            CellClass::Xnor2 => "XNOR2",
            CellClass::And3 => "AND3",
            CellClass::Nand3 => "NAND3",
            CellClass::Or3 => "OR3",
            CellClass::Nor3 => "NOR3",
            CellClass::Aoi21 => "AOI21",
            CellClass::Oai21 => "OAI21",
            CellClass::Mux2 => "MUX2",
            CellClass::Maj3 => "MAJ3",
            CellClass::Xor3 => "XOR3",
            CellClass::Dff => "DFF",
            CellClass::DffEn => "DFFE",
        }
    }

    /// Parses a class from a library cell name (prefix before `_`).
    #[must_use]
    pub fn from_lib_cell(name: &str) -> Option<Self> {
        let prefix = name.split('_').next().unwrap_or(name);
        Self::ALL.into_iter().find(|c| c.prefix() == prefix)
    }

    /// Transistor-pair complexity used for area/leakage scaling.
    #[must_use]
    pub fn complexity(self) -> f64 {
        match self {
            CellClass::TieLo | CellClass::TieHi => 1.0,
            CellClass::Inv => 1.0,
            CellClass::Buf => 2.0,
            CellClass::Nand2 | CellClass::Nor2 => 2.0,
            CellClass::And2 | CellClass::Or2 => 3.0,
            CellClass::Nand3 | CellClass::Nor3 | CellClass::Aoi21 | CellClass::Oai21 => 3.0,
            CellClass::And3 | CellClass::Or3 => 4.0,
            CellClass::Xor2 | CellClass::Xnor2 => 4.0,
            CellClass::Mux2 => 5.0,
            CellClass::Maj3 => 6.0,
            CellClass::Xor3 => 8.0,
            CellClass::Dff => 12.0,
            CellClass::DffEn => 16.0,
        }
    }

    /// Logical effort of the worst input (Sutherland/Sproull model).
    #[must_use]
    pub fn logical_effort(self) -> f64 {
        match self {
            CellClass::TieLo | CellClass::TieHi => 0.0,
            CellClass::Inv => 1.0,
            CellClass::Buf => 1.0,
            CellClass::Nand2 => 4.0 / 3.0,
            CellClass::Nor2 => 5.0 / 3.0,
            CellClass::And2 => 4.0 / 3.0,
            CellClass::Or2 => 5.0 / 3.0,
            CellClass::Nand3 => 5.0 / 3.0,
            CellClass::Nor3 => 7.0 / 3.0,
            CellClass::And3 => 5.0 / 3.0,
            CellClass::Or3 => 7.0 / 3.0,
            CellClass::Aoi21 | CellClass::Oai21 => 2.0,
            CellClass::Xor2 | CellClass::Xnor2 => 2.0,
            CellClass::Mux2 => 2.0,
            CellClass::Maj3 => 2.5,
            CellClass::Xor3 => 3.0,
            CellClass::Dff | CellClass::DffEn => 1.5,
        }
    }

    /// Parasitic (intrinsic) delay in units of the inverter intrinsic delay.
    #[must_use]
    pub fn parasitic_factor(self) -> f64 {
        match self {
            CellClass::TieLo | CellClass::TieHi => 0.0,
            CellClass::Inv => 1.0,
            CellClass::Buf => 2.0,
            CellClass::Nand2 | CellClass::Nor2 => 2.0,
            CellClass::And2 | CellClass::Or2 => 3.0,
            CellClass::Nand3 | CellClass::Nor3 => 3.0,
            CellClass::And3 | CellClass::Or3 => 4.0,
            CellClass::Aoi21 | CellClass::Oai21 => 3.0,
            CellClass::Xor2 | CellClass::Xnor2 => 4.0,
            CellClass::Mux2 => 4.0,
            CellClass::Maj3 => 5.0,
            CellClass::Xor3 => 6.0,
            CellClass::Dff => 8.0,
            CellClass::DffEn => 9.0,
        }
    }

    /// Whether the class is sequential.
    #[must_use]
    pub fn is_sequential(self) -> bool {
        matches!(self, CellClass::Dff | CellClass::DffEn)
    }
}

impl fmt::Display for CellClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.prefix())
    }
}

/// Drive strength of a library cell (relative to a unit inverter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DriveStrength(pub u8);

impl DriveStrength {
    /// Relative strength as a multiplier.
    #[must_use]
    pub fn factor(self) -> f64 {
        f64::from(self.0)
    }
}

impl fmt::Display for DriveStrength {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "X{}", self.0)
    }
}

/// Which vendor style of library to generate.
///
/// The *commercial* kind models a foundry-qualified library as accessed
/// through Europractice: more drive strengths, tighter characterization
/// (lower delay at the same node) and denser layout. The *open* kind models
/// community libraries shipped with open PDKs. The gap between the two is
/// the object of experiment E6 (open-vs-commercial PPA).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LibraryKind {
    /// Open-source library (fewer drives, conservative characterization).
    Open,
    /// Commercial foundry library (full drive set, tight characterization).
    Commercial,
}

impl LibraryKind {
    fn delay_factor(self) -> f64 {
        match self {
            LibraryKind::Open => 1.0,
            LibraryKind::Commercial => 0.85,
        }
    }

    fn area_factor(self) -> f64 {
        match self {
            LibraryKind::Open => 1.0,
            LibraryKind::Commercial => 0.92,
        }
    }

    fn drives(self) -> &'static [u8] {
        match self {
            LibraryKind::Open => &[1, 2],
            LibraryKind::Commercial => &[1, 2, 4, 8],
        }
    }
}

impl fmt::Display for LibraryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LibraryKind::Open => f.write_str("open"),
            LibraryKind::Commercial => f.write_str("commercial"),
        }
    }
}

/// A characterized standard cell.
///
/// Timing uses the linear delay model `delay = intrinsic + R * load`: good
/// enough for the flow's STA and orders of magnitude simpler than NLDM
/// tables, while preserving the load-dependence that drives sizing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LibCell {
    name: String,
    class: CellClass,
    drive: DriveStrength,
    area_um2: f64,
    input_cap_ff: f64,
    intrinsic_ps: f64,
    resistance_ps_per_ff: f64,
    leakage_nw: f64,
    width_um: f64,
    height_um: f64,
}

impl LibCell {
    /// Cell name, e.g. `NAND2_X1`.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Logical class.
    #[must_use]
    pub fn class(&self) -> CellClass {
        self.class
    }

    /// Drive strength.
    #[must_use]
    pub fn drive(&self) -> DriveStrength {
        self.drive
    }

    /// Layout area in µm².
    #[must_use]
    pub fn area_um2(&self) -> f64 {
        self.area_um2
    }

    /// Cell width in µm (area / row height).
    #[must_use]
    pub fn width_um(&self) -> f64 {
        self.width_um
    }

    /// Cell (row) height in µm.
    #[must_use]
    pub fn height_um(&self) -> f64 {
        self.height_um
    }

    /// Input pin capacitance in fF (worst pin).
    #[must_use]
    pub fn input_cap_ff(&self) -> f64 {
        self.input_cap_ff
    }

    /// Zero-load propagation delay in ps.
    #[must_use]
    pub fn intrinsic_ps(&self) -> f64 {
        self.intrinsic_ps
    }

    /// Output resistance in ps/fF.
    #[must_use]
    pub fn resistance_ps_per_ff(&self) -> f64 {
        self.resistance_ps_per_ff
    }

    /// Leakage power in nW.
    #[must_use]
    pub fn leakage_nw(&self) -> f64 {
        self.leakage_nw
    }

    /// Propagation delay in ps under the given output load in fF.
    #[must_use]
    pub fn delay_ps(&self, load_ff: f64) -> f64 {
        self.intrinsic_ps + self.resistance_ps_per_ff * load_ff
    }

    /// Energy per output toggle in fJ (CV² with the cell's internal cap
    /// approximated by its input cap times complexity).
    #[must_use]
    pub fn switch_energy_fj(&self, supply_v: f64, load_ff: f64) -> f64 {
        let internal_ff = self.input_cap_ff * self.class.complexity() * 0.5;
        (internal_ff + load_ff) * supply_v * supply_v
    }
}

/// A generated standard-cell library for one node and kind.
///
/// ```
/// use chipforge_pdk::{CellClass, LibraryKind, StdCellLibrary, TechnologyNode};
///
/// let lib = StdCellLibrary::generate(TechnologyNode::N130, LibraryKind::Open);
/// let nand = lib.smallest(CellClass::Nand2).expect("NAND2 exists");
/// assert_eq!(nand.name(), "NAND2_X1");
/// assert!(lib.cell(nand.name()).is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StdCellLibrary {
    name: String,
    node: TechnologyNode,
    kind: LibraryKind,
    cells: Vec<LibCell>,
    by_class: BTreeMap<CellClass, Vec<usize>>,
}

impl StdCellLibrary {
    /// Generates the library for a node and kind.
    #[must_use]
    pub fn generate(node: TechnologyNode, kind: LibraryKind) -> Self {
        let height_um = node.cell_height_um();
        let cpp = node.contacted_poly_pitch_um();
        let fo4 = node.fo4_delay_ps() * kind.delay_factor();
        // Unit inverter: intrinsic is ~30% of FO4, the rest is load delay
        // driving four copies of its own input cap.
        let cin_inv_ff = 0.010 * f64::from(node.feature_nm()) + 0.30;
        let intrinsic_inv = 0.30 * fo4;
        let r_inv = (fo4 - intrinsic_inv) / (4.0 * cin_inv_ff);

        let mut cells = Vec::new();
        let mut by_class: BTreeMap<CellClass, Vec<usize>> = BTreeMap::new();
        for class in CellClass::ALL {
            for &drive in kind.drives() {
                // Tie cells and flops come in X1 only at the open kind's
                // highest drives to keep the library realistic but small.
                if matches!(class, CellClass::TieLo | CellClass::TieHi) && drive > 1 {
                    continue;
                }
                let drive_strength = DriveStrength(drive);
                let drive_f = drive_strength.factor();
                let area_scale = 1.0 + 0.55 * (drive_f - 1.0);
                let area_um2 =
                    class.complexity() * cpp * height_um * area_scale * kind.area_factor();
                let input_cap_ff = cin_inv_ff * class.logical_effort() * drive_f.sqrt();
                let intrinsic_ps = intrinsic_inv * class.parasitic_factor();
                let resistance = if class.logical_effort() == 0.0 {
                    0.0
                } else {
                    r_inv * class.logical_effort() / drive_f
                };
                let leakage_nw = node.leakage_nw_per_gate() * class.complexity() * 0.5 * drive_f;
                let index = cells.len();
                cells.push(LibCell {
                    name: format!("{}_{}", class.prefix(), drive_strength),
                    class,
                    drive: drive_strength,
                    area_um2,
                    input_cap_ff,
                    intrinsic_ps,
                    resistance_ps_per_ff: resistance,
                    leakage_nw,
                    width_um: area_um2 / height_um,
                    height_um,
                });
                by_class.entry(class).or_default().push(index);
            }
        }
        Self {
            name: format!("chipforge_{}_{}", node.name(), kind),
            node,
            kind,
            cells,
            by_class,
        }
    }

    /// Library name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Technology node.
    #[must_use]
    pub fn node(&self) -> TechnologyNode {
        self.node
    }

    /// Library kind.
    #[must_use]
    pub fn kind(&self) -> LibraryKind {
        self.kind
    }

    /// Number of cells in the library.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the library is empty (never true for generated libraries).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Iterates over all cells.
    pub fn cells(&self) -> impl Iterator<Item = &LibCell> {
        self.cells.iter()
    }

    /// Looks up a cell by exact name.
    #[must_use]
    pub fn cell(&self, name: &str) -> Option<&LibCell> {
        self.cells.iter().find(|c| c.name == name)
    }

    /// All drive variants of a class, weakest first.
    #[must_use]
    pub fn variants(&self, class: CellClass) -> Vec<&LibCell> {
        self.by_class
            .get(&class)
            .map(|ids| ids.iter().map(|&i| &self.cells[i]).collect())
            .unwrap_or_default()
    }

    /// The weakest (smallest) drive of a class.
    #[must_use]
    pub fn smallest(&self, class: CellClass) -> Option<&LibCell> {
        self.variants(class).first().copied()
    }

    /// The strongest drive of a class.
    #[must_use]
    pub fn strongest(&self, class: CellClass) -> Option<&LibCell> {
        self.variants(class).last().copied()
    }

    /// The weakest drive of `class` whose delay under `load_ff` does not
    /// exceed `budget_ps`, or the strongest drive if none fits.
    #[must_use]
    pub fn size_for_load(
        &self,
        class: CellClass,
        load_ff: f64,
        budget_ps: f64,
    ) -> Option<&LibCell> {
        let variants = self.variants(class);
        variants
            .iter()
            .find(|c| c.delay_ps(load_ff) <= budget_ps)
            .copied()
            .or_else(|| variants.last().copied())
    }

    /// Standard-cell row height in µm.
    #[must_use]
    pub fn row_height_um(&self) -> f64 {
        self.node.cell_height_um()
    }

    /// Placement site width in µm (one contacted poly pitch).
    #[must_use]
    pub fn site_width_um(&self) -> f64 {
        self.node.contacted_poly_pitch_um()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_has_all_classes() {
        let lib = StdCellLibrary::generate(TechnologyNode::N130, LibraryKind::Open);
        for class in CellClass::ALL {
            assert!(
                lib.smallest(class).is_some(),
                "missing class {class} in open library"
            );
        }
    }

    #[test]
    fn commercial_library_has_more_drives() {
        let open = StdCellLibrary::generate(TechnologyNode::N28, LibraryKind::Open);
        let comm = StdCellLibrary::generate(TechnologyNode::N28, LibraryKind::Commercial);
        assert!(comm.len() > open.len());
        assert_eq!(comm.variants(CellClass::Nand2).len(), 4);
        assert_eq!(open.variants(CellClass::Nand2).len(), 2);
    }

    #[test]
    fn commercial_cells_are_faster_and_smaller() {
        let open = StdCellLibrary::generate(TechnologyNode::N28, LibraryKind::Open);
        let comm = StdCellLibrary::generate(TechnologyNode::N28, LibraryKind::Commercial);
        let load = 5.0;
        let o = open.smallest(CellClass::Nand2).unwrap();
        let c = comm.smallest(CellClass::Nand2).unwrap();
        assert!(c.delay_ps(load) < o.delay_ps(load));
        assert!(c.area_um2() < o.area_um2());
    }

    #[test]
    fn delay_increases_with_load_and_decreases_with_drive() {
        let lib = StdCellLibrary::generate(TechnologyNode::N130, LibraryKind::Commercial);
        let x1 = lib.cell("NAND2_X1").unwrap();
        let x4 = lib.cell("NAND2_X4").unwrap();
        assert!(x1.delay_ps(10.0) > x1.delay_ps(1.0));
        assert!(x4.delay_ps(10.0) < x1.delay_ps(10.0));
        // stronger drive means larger input cap and area
        assert!(x4.input_cap_ff() > x1.input_cap_ff());
        assert!(x4.area_um2() > x1.area_um2());
    }

    #[test]
    fn fo4_reconstruction_matches_node_model() {
        // Unit inverter driving 4 copies of itself should give ~FO4 delay.
        for node in [
            TechnologyNode::N180,
            TechnologyNode::N28,
            TechnologyNode::N7,
        ] {
            let lib = StdCellLibrary::generate(node, LibraryKind::Open);
            let inv = lib.cell("INV_X1").unwrap();
            let fo4 = inv.delay_ps(4.0 * inv.input_cap_ff());
            let expected = node.fo4_delay_ps();
            let err = (fo4 - expected).abs() / expected;
            assert!(err < 0.05, "{node}: fo4 {fo4} vs expected {expected}");
        }
    }

    #[test]
    fn size_for_load_picks_weakest_that_meets_budget() {
        let lib = StdCellLibrary::generate(TechnologyNode::N130, LibraryKind::Commercial);
        let generous = lib.size_for_load(CellClass::Nand2, 2.0, 1.0e6).unwrap();
        assert_eq!(generous.drive().0, 1);
        let tight = lib.size_for_load(CellClass::Nand2, 50.0, 120.0).unwrap();
        assert!(tight.drive().0 > 1, "picked {}", tight.name());
    }

    #[test]
    fn areas_scale_down_with_node() {
        let old = StdCellLibrary::generate(TechnologyNode::N180, LibraryKind::Open);
        let new = StdCellLibrary::generate(TechnologyNode::N7, LibraryKind::Open);
        let a_old = old.smallest(CellClass::Nand2).unwrap().area_um2();
        let a_new = new.smallest(CellClass::Nand2).unwrap().area_um2();
        assert!(
            a_new < a_old / 50.0,
            "expected >50x shrink, got {a_old} -> {a_new}"
        );
    }

    #[test]
    fn dff_is_bigger_than_inverter() {
        let lib = StdCellLibrary::generate(TechnologyNode::N130, LibraryKind::Open);
        assert!(
            lib.smallest(CellClass::Dff).unwrap().area_um2()
                > 5.0 * lib.smallest(CellClass::Inv).unwrap().area_um2()
        );
    }

    #[test]
    fn class_round_trips_from_cell_name() {
        let lib = StdCellLibrary::generate(TechnologyNode::N130, LibraryKind::Commercial);
        for cell in lib.cells() {
            assert_eq!(CellClass::from_lib_cell(cell.name()), Some(cell.class()));
        }
    }

    #[test]
    fn tie_cells_have_no_timing_arc() {
        let lib = StdCellLibrary::generate(TechnologyNode::N130, LibraryKind::Open);
        let tie = lib.smallest(CellClass::TieHi).unwrap();
        assert_eq!(tie.resistance_ps_per_ff(), 0.0);
    }

    #[test]
    fn switch_energy_positive_and_load_dependent() {
        let lib = StdCellLibrary::generate(TechnologyNode::N130, LibraryKind::Open);
        let nand = lib.smallest(CellClass::Nand2).unwrap();
        let e1 = nand.switch_energy_fj(1.5, 1.0);
        let e2 = nand.switch_energy_fj(1.5, 10.0);
        assert!(e2 > e1);
        assert!(e1 > 0.0);
    }
}
