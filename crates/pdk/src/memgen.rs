//! Memory-generator model (SRAM macros).
//!
//! Real PDKs ship memory compilers as black-box binaries behind the same
//! NDA gate as the rest of the kit (one of the enablement pain points in
//! Sec. III-D of the paper). This module substitutes a parametric model
//! producing the quantities the flow needs: area, access time, and power.

use crate::node::TechnologyNode;
use serde::{Deserialize, Serialize};

/// A generated single-port SRAM macro.
///
/// ```
/// use chipforge_pdk::{SramMacro, TechnologyNode};
///
/// let mem = SramMacro::generate(1024, 32, TechnologyNode::N130);
/// assert_eq!(mem.bits(), 1024 * 32);
/// assert!(mem.area_um2() > 0.0);
/// assert!(mem.access_ps() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SramMacro {
    words: u32,
    width_bits: u32,
    node: TechnologyNode,
    area_um2: f64,
    access_ps: f64,
    read_energy_fj_per_bit: f64,
    leakage_uw: f64,
}

impl SramMacro {
    /// Generates a macro of `words` × `width_bits`.
    ///
    /// # Panics
    ///
    /// Panics if `words` or `width_bits` is zero.
    #[must_use]
    pub fn generate(words: u32, width_bits: u32, node: TechnologyNode) -> Self {
        assert!(words > 0 && width_bits > 0, "memory must be non-empty");
        let f_um = f64::from(node.feature_nm()) * 1e-3;
        // 6T bitcell ≈ 140 F²; periphery overhead ~40% plus a fixed floor.
        let bitcell_um2 = 140.0 * f_um * f_um;
        let bits = f64::from(words) * f64::from(width_bits);
        let area_um2 = bits * bitcell_um2 * 1.4 + 200.0 * node.cell_height_um();
        // Access time: wordline/bitline delay grows with sqrt(words).
        let access_ps = node.fo4_delay_ps() * (4.0 + 1.5 * f64::from(words).sqrt().ln_1p() * 4.0);
        let vdd = node.supply_v();
        let read_energy_fj_per_bit = 0.8 * vdd * vdd * (1.0 + f64::from(words).log2() / 10.0);
        let leakage_uw = bits * node.leakage_nw_per_gate() * 0.1 * 1e-3;
        Self {
            words,
            width_bits,
            node,
            area_um2,
            access_ps,
            read_energy_fj_per_bit,
            leakage_uw,
        }
    }

    /// Number of words.
    #[must_use]
    pub fn words(&self) -> u32 {
        self.words
    }

    /// Word width in bits.
    #[must_use]
    pub fn width_bits(&self) -> u32 {
        self.width_bits
    }

    /// Total storage in bits.
    #[must_use]
    pub fn bits(&self) -> u64 {
        u64::from(self.words) * u64::from(self.width_bits)
    }

    /// Technology node.
    #[must_use]
    pub fn node(&self) -> TechnologyNode {
        self.node
    }

    /// Macro area in µm².
    #[must_use]
    pub fn area_um2(&self) -> f64 {
        self.area_um2
    }

    /// Read access time in ps.
    #[must_use]
    pub fn access_ps(&self) -> f64 {
        self.access_ps
    }

    /// Read energy in fJ per bit.
    #[must_use]
    pub fn read_energy_fj_per_bit(&self) -> f64 {
        self.read_energy_fj_per_bit
    }

    /// Standby leakage in µW.
    #[must_use]
    pub fn leakage_uw(&self) -> f64 {
        self.leakage_uw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_scales_with_capacity() {
        let small = SramMacro::generate(256, 8, TechnologyNode::N130);
        let big = SramMacro::generate(4096, 32, TechnologyNode::N130);
        assert!(big.area_um2() > 10.0 * small.area_um2());
    }

    #[test]
    fn newer_nodes_are_denser() {
        let old = SramMacro::generate(1024, 32, TechnologyNode::N180);
        let new = SramMacro::generate(1024, 32, TechnologyNode::N16);
        assert!(new.area_um2() < old.area_um2() / 10.0);
    }

    #[test]
    fn access_time_grows_with_depth() {
        let shallow = SramMacro::generate(64, 32, TechnologyNode::N65);
        let deep = SramMacro::generate(65536, 32, TechnologyNode::N65);
        assert!(deep.access_ps() > shallow.access_ps());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_words_rejected() {
        let _ = SramMacro::generate(0, 8, TechnologyNode::N130);
    }

    #[test]
    fn bits_product() {
        let mem = SramMacro::generate(512, 16, TechnologyNode::N90);
        assert_eq!(mem.bits(), 8192);
    }
}
