//! Technology-node parameter models.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A semiconductor technology node supported by the synthetic PDK models.
///
/// The numeric parameters returned by the accessor methods follow published
/// industry scaling curves; they are calibrated to be *shape-correct*
/// (trends, ratios, crossovers) rather than foundry-exact, which is all the
/// reproduced experiments require.
///
/// ```
/// use chipforge_pdk::TechnologyNode;
///
/// let n7 = TechnologyNode::N7;
/// assert_eq!(n7.feature_nm(), 7);
/// assert!(n7.gate_density_mgates_per_mm2() > TechnologyNode::N130.gate_density_mgates_per_mm2());
/// assert!(!n7.has_open_pdk());
/// assert!(TechnologyNode::N130.has_open_pdk());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TechnologyNode {
    /// 180 nm — open PDK available (GF180MCU-class).
    N180,
    /// 130 nm — open PDK available (SKY130 / IHP SG13G2-class).
    N130,
    /// 90 nm.
    N90,
    /// 65 nm.
    N65,
    /// 45 nm.
    N45,
    /// 28 nm — last planar bulk node.
    N28,
    /// 16 nm — FinFET.
    N16,
    /// 7 nm — FinFET, EUV-assisted.
    N7,
    /// 5 nm.
    N5,
    /// 3 nm.
    N3,
    /// 2 nm — gate-all-around.
    N2,
}

impl TechnologyNode {
    /// All nodes, newest last.
    pub const ALL: [TechnologyNode; 11] = [
        TechnologyNode::N180,
        TechnologyNode::N130,
        TechnologyNode::N90,
        TechnologyNode::N65,
        TechnologyNode::N45,
        TechnologyNode::N28,
        TechnologyNode::N16,
        TechnologyNode::N7,
        TechnologyNode::N5,
        TechnologyNode::N3,
        TechnologyNode::N2,
    ];

    /// Nominal feature size in nanometres (marketing node name).
    #[must_use]
    pub fn feature_nm(self) -> u32 {
        match self {
            TechnologyNode::N180 => 180,
            TechnologyNode::N130 => 130,
            TechnologyNode::N90 => 90,
            TechnologyNode::N65 => 65,
            TechnologyNode::N45 => 45,
            TechnologyNode::N28 => 28,
            TechnologyNode::N16 => 16,
            TechnologyNode::N7 => 7,
            TechnologyNode::N5 => 5,
            TechnologyNode::N3 => 3,
            TechnologyNode::N2 => 2,
        }
    }

    /// Parses a node from its feature size in nanometres.
    #[must_use]
    pub fn from_feature_nm(nm: u32) -> Option<Self> {
        Self::ALL.into_iter().find(|n| n.feature_nm() == nm)
    }

    /// Contacted poly pitch (CPP) in micrometres.
    #[must_use]
    pub fn contacted_poly_pitch_um(self) -> f64 {
        match self {
            TechnologyNode::N180 => 0.500,
            TechnologyNode::N130 => 0.340,
            TechnologyNode::N90 => 0.240,
            TechnologyNode::N65 => 0.180,
            TechnologyNode::N45 => 0.140,
            TechnologyNode::N28 => 0.110,
            TechnologyNode::N16 => 0.090,
            TechnologyNode::N7 => 0.057,
            TechnologyNode::N5 => 0.051,
            TechnologyNode::N3 => 0.045,
            TechnologyNode::N2 => 0.042,
        }
    }

    /// Minimum metal pitch (M1) in micrometres.
    #[must_use]
    pub fn metal_pitch_um(self) -> f64 {
        match self {
            TechnologyNode::N180 => 0.460,
            TechnologyNode::N130 => 0.340,
            TechnologyNode::N90 => 0.240,
            TechnologyNode::N65 => 0.180,
            TechnologyNode::N45 => 0.140,
            TechnologyNode::N28 => 0.090,
            TechnologyNode::N16 => 0.064,
            TechnologyNode::N7 => 0.040,
            TechnologyNode::N5 => 0.030,
            TechnologyNode::N3 => 0.023,
            TechnologyNode::N2 => 0.020,
        }
    }

    /// Standard-cell height in routing tracks.
    #[must_use]
    pub fn cell_height_tracks(self) -> f64 {
        match self {
            TechnologyNode::N180 | TechnologyNode::N130 => 12.0,
            TechnologyNode::N90 | TechnologyNode::N65 | TechnologyNode::N45 => 10.0,
            TechnologyNode::N28 => 9.0,
            TechnologyNode::N16 => 7.5,
            TechnologyNode::N7 | TechnologyNode::N5 => 6.0,
            TechnologyNode::N3 => 5.5,
            TechnologyNode::N2 => 5.0,
        }
    }

    /// Standard-cell row height in micrometres.
    #[must_use]
    pub fn cell_height_um(self) -> f64 {
        self.cell_height_tracks() * self.metal_pitch_um()
    }

    /// Nominal core supply voltage in volts.
    #[must_use]
    pub fn supply_v(self) -> f64 {
        match self {
            TechnologyNode::N180 => 1.8,
            TechnologyNode::N130 => 1.5,
            TechnologyNode::N90 => 1.2,
            TechnologyNode::N65 => 1.1,
            TechnologyNode::N45 => 1.0,
            TechnologyNode::N28 => 0.9,
            TechnologyNode::N16 => 0.8,
            TechnologyNode::N7 => 0.75,
            TechnologyNode::N5 => 0.7,
            TechnologyNode::N3 => 0.65,
            TechnologyNode::N2 => 0.6,
        }
    }

    /// Number of available routing metal layers.
    #[must_use]
    pub fn metal_layers(self) -> usize {
        match self {
            TechnologyNode::N180 => 6,
            TechnologyNode::N130 => 6,
            TechnologyNode::N90 => 7,
            TechnologyNode::N65 => 8,
            TechnologyNode::N45 => 9,
            TechnologyNode::N28 => 10,
            TechnologyNode::N16 => 11,
            TechnologyNode::N7 => 13,
            TechnologyNode::N5 => 14,
            TechnologyNode::N3 => 15,
            TechnologyNode::N2 => 16,
        }
    }

    /// Fanout-of-4 inverter delay in picoseconds.
    ///
    /// Classically ~0.5 ps/nm at older nodes, flattening below 16 nm as
    /// supply-voltage scaling stalls.
    #[must_use]
    pub fn fo4_delay_ps(self) -> f64 {
        0.42 * f64::from(self.feature_nm()) + 2.2
    }

    /// Achievable logic density in million NAND2-equivalent gates per mm².
    #[must_use]
    pub fn gate_density_mgates_per_mm2(self) -> f64 {
        // One NAND2-equivalent occupies ~2 CPP x cell height, derated by
        // 35% achievable utilization loss at the block level.
        let gate_area_um2 = 2.0 * self.contacted_poly_pitch_um() * self.cell_height_um();
        0.65 / gate_area_um2
    }

    /// Per-gate leakage power in nanowatts (NAND2-equivalent, typical
    /// corner, 25 °C). Rises steeply below 90 nm, partially recovered by
    /// FinFET (16 nm) and gate-all-around (2 nm) transitions.
    #[must_use]
    pub fn leakage_nw_per_gate(self) -> f64 {
        match self {
            TechnologyNode::N180 => 0.01,
            TechnologyNode::N130 => 0.03,
            TechnologyNode::N90 => 0.15,
            TechnologyNode::N65 => 0.5,
            TechnologyNode::N45 => 1.2,
            TechnologyNode::N28 => 2.5,
            TechnologyNode::N16 => 1.5,
            TechnologyNode::N7 => 2.0,
            TechnologyNode::N5 => 2.4,
            TechnologyNode::N3 => 2.8,
            TechnologyNode::N2 => 2.2,
        }
    }

    /// Unit wire resistance in ohms per micrometre at minimum width.
    #[must_use]
    pub fn wire_res_ohm_per_um(self) -> f64 {
        // Narrower wires are dramatically more resistive.
        let pitch = self.metal_pitch_um();
        0.08 / (pitch * pitch)
    }

    /// Unit wire capacitance in femtofarads per micrometre.
    #[must_use]
    pub fn wire_cap_ff_per_um(self) -> f64 {
        // Roughly constant ~0.2 fF/um across nodes (geometry trade-offs).
        0.18 + 0.0001 * f64::from(self.feature_nm())
    }

    /// Whether a redistributable open-source PDK exists for this node
    /// (mirrors GF180MCU at 180 nm, SKY130/IHP SG13G2 at 130 nm).
    #[must_use]
    pub fn has_open_pdk(self) -> bool {
        matches!(self, TechnologyNode::N180 | TechnologyNode::N130)
    }

    /// Human-readable name, e.g. `"130nm"`.
    #[must_use]
    pub fn name(self) -> String {
        format!("{}nm", self.feature_nm())
    }
}

impl fmt::Display for TechnologyNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}nm", self.feature_nm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_sizes_strictly_decrease() {
        for pair in TechnologyNode::ALL.windows(2) {
            assert!(pair[0].feature_nm() > pair[1].feature_nm());
        }
    }

    #[test]
    fn pitches_shrink_monotonically() {
        for pair in TechnologyNode::ALL.windows(2) {
            assert!(pair[0].contacted_poly_pitch_um() > pair[1].contacted_poly_pitch_um());
            assert!(pair[0].metal_pitch_um() > pair[1].metal_pitch_um());
        }
    }

    #[test]
    fn density_increases_monotonically() {
        for pair in TechnologyNode::ALL.windows(2) {
            assert!(
                pair[0].gate_density_mgates_per_mm2() < pair[1].gate_density_mgates_per_mm2(),
                "{} -> {}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn density_magnitudes_plausible() {
        // 130 nm around 0.05-0.2 MGates/mm2; 7 nm tens of MGates/mm2.
        let d130 = TechnologyNode::N130.gate_density_mgates_per_mm2();
        assert!((0.05..0.5).contains(&d130), "d130 = {d130}");
        let d7 = TechnologyNode::N7.gate_density_mgates_per_mm2();
        assert!((10.0..80.0).contains(&d7), "d7 = {d7}");
    }

    #[test]
    fn fo4_scales_down_with_node() {
        assert!(TechnologyNode::N180.fo4_delay_ps() > TechnologyNode::N7.fo4_delay_ps());
        // 180nm FO4 in the published 60-100 ps range.
        let f = TechnologyNode::N180.fo4_delay_ps();
        assert!((60.0..100.0).contains(&f), "fo4 = {f}");
    }

    #[test]
    fn only_mature_nodes_have_open_pdks() {
        let open: Vec<_> = TechnologyNode::ALL
            .into_iter()
            .filter(|n| n.has_open_pdk())
            .collect();
        assert_eq!(open, vec![TechnologyNode::N180, TechnologyNode::N130]);
    }

    #[test]
    fn from_feature_round_trips() {
        for node in TechnologyNode::ALL {
            assert_eq!(
                TechnologyNode::from_feature_nm(node.feature_nm()),
                Some(node)
            );
        }
        assert_eq!(TechnologyNode::from_feature_nm(999), None);
    }

    #[test]
    fn voltages_decrease_then_flatten() {
        assert!(TechnologyNode::N180.supply_v() > TechnologyNode::N28.supply_v());
        assert!(TechnologyNode::N2.supply_v() >= 0.5);
    }

    #[test]
    fn wire_resistance_explodes_at_advanced_nodes() {
        let r130 = TechnologyNode::N130.wire_res_ohm_per_um();
        let r2 = TechnologyNode::N2.wire_res_ohm_per_um();
        assert!(r2 > 50.0 * r130);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(TechnologyNode::N28.to_string(), "28nm");
        assert_eq!(TechnologyNode::N28.name(), "28nm");
    }
}
