//! The PDK bundle: technology, rules, libraries and access metadata.

use crate::library::{LibraryKind, StdCellLibrary};
use crate::node::TechnologyNode;
use crate::rules::DesignRules;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Licensing regime of a PDK.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PdkLicense {
    /// Freely redistributable (Apache-2.0-style, like SKY130/GF180MCU/IHP).
    Open,
    /// NDA-gated foundry kit.
    Nda,
}

impl fmt::Display for PdkLicense {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdkLicense::Open => f.write_str("open"),
            PdkLicense::Nda => f.write_str("NDA"),
        }
    }
}

/// Administrative hurdles attached to PDK access (Sec. III-C of the paper).
///
/// Each requirement contributes to the enablement-effort model in
/// `chipforge-econ`: the more requirements, the longer a university group
/// needs before its first design can start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AccessRequirement {
    /// A signed non-disclosure agreement with the foundry.
    Nda,
    /// Export-control screening of every user.
    ExportControlScreening,
    /// Proven tape-outs in earlier nodes of the same foundry.
    PriorTapeoutTrackRecord,
    /// A fully detailed project description with secured funding.
    DetailedProjectPlan,
    /// An isolated IT environment, physically separated from campus IT.
    IsolatedItEnvironment,
}

impl AccessRequirement {
    /// Typical administrative lead time this requirement adds, in weeks.
    #[must_use]
    pub fn lead_time_weeks(self) -> f64 {
        match self {
            AccessRequirement::Nda => 8.0,
            AccessRequirement::ExportControlScreening => 4.0,
            AccessRequirement::PriorTapeoutTrackRecord => 26.0,
            AccessRequirement::DetailedProjectPlan => 6.0,
            AccessRequirement::IsolatedItEnvironment => 12.0,
        }
    }
}

impl fmt::Display for AccessRequirement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessRequirement::Nda => "NDA",
            AccessRequirement::ExportControlScreening => "export-control screening",
            AccessRequirement::PriorTapeoutTrackRecord => "prior tape-out track record",
            AccessRequirement::DetailedProjectPlan => "detailed project plan",
            AccessRequirement::IsolatedItEnvironment => "isolated IT environment",
        };
        f.write_str(s)
    }
}

/// A complete process design kit: node, rule deck, libraries and access
/// metadata.
///
/// ```
/// use chipforge_pdk::{Pdk, PdkLicense, TechnologyNode};
///
/// let open = Pdk::open(TechnologyNode::N130);
/// assert_eq!(open.license(), PdkLicense::Open);
/// assert!(open.access_requirements().is_empty());
///
/// let adv = Pdk::commercial(TechnologyNode::N7);
/// assert_eq!(adv.license(), PdkLicense::Nda);
/// assert!(adv.access_lead_time_weeks() > 20.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pdk {
    name: String,
    node: TechnologyNode,
    license: PdkLicense,
    rules: DesignRules,
    requirements: Vec<AccessRequirement>,
}

impl Pdk {
    /// An open PDK for the given node.
    ///
    /// # Panics
    ///
    /// Panics if `node` has no open PDK (only 180 nm and 130 nm do); use
    /// [`Pdk::commercial`] for NDA-gated nodes, mirroring reality.
    #[must_use]
    pub fn open(node: TechnologyNode) -> Self {
        assert!(
            node.has_open_pdk(),
            "no open PDK exists for {node}; only 180nm/130nm are open"
        );
        Self {
            name: format!("openpdk-{node}"),
            node,
            license: PdkLicense::Open,
            rules: DesignRules::for_node(node),
            requirements: Vec::new(),
        }
    }

    /// A commercial (NDA-gated) PDK for any node.
    #[must_use]
    pub fn commercial(node: TechnologyNode) -> Self {
        let mut requirements = vec![
            AccessRequirement::Nda,
            AccessRequirement::ExportControlScreening,
        ];
        if node.feature_nm() <= 28 {
            requirements.push(AccessRequirement::DetailedProjectPlan);
            requirements.push(AccessRequirement::PriorTapeoutTrackRecord);
        }
        if node.feature_nm() <= 7 {
            requirements.push(AccessRequirement::IsolatedItEnvironment);
        }
        Self {
            name: format!("foundry-{node}"),
            node,
            license: PdkLicense::Nda,
            rules: DesignRules::for_node(node),
            requirements,
        }
    }

    /// PDK name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Technology node.
    #[must_use]
    pub fn node(&self) -> TechnologyNode {
        self.node
    }

    /// Licensing regime.
    #[must_use]
    pub fn license(&self) -> PdkLicense {
        self.license
    }

    /// The design-rule deck.
    #[must_use]
    pub fn rules(&self) -> &DesignRules {
        &self.rules
    }

    /// Administrative requirements before first access.
    #[must_use]
    pub fn access_requirements(&self) -> &[AccessRequirement] {
        &self.requirements
    }

    /// Total administrative lead time before a group can start designing,
    /// in weeks (requirements processed partially in parallel: the longest
    /// dominates, the rest add 30%).
    #[must_use]
    pub fn access_lead_time_weeks(&self) -> f64 {
        let mut times: Vec<f64> = self
            .requirements
            .iter()
            .map(|r| r.lead_time_weeks())
            .collect();
        times.sort_by(|a, b| b.partial_cmp(a).expect("lead times are finite"));
        match times.split_first() {
            None => 0.0,
            Some((longest, rest)) => longest + 0.3 * rest.iter().sum::<f64>(),
        }
    }

    /// Generates a standard-cell library of the given kind for this PDK.
    ///
    /// Open PDKs can only generate [`LibraryKind::Open`] libraries; asking
    /// an open PDK for a commercial library returns the open one (there is
    /// nothing better available), mirroring the real tooling situation.
    #[must_use]
    pub fn library(&self, kind: LibraryKind) -> StdCellLibrary {
        let effective = match (self.license, kind) {
            (PdkLicense::Open, _) => LibraryKind::Open,
            (PdkLicense::Nda, k) => k,
        };
        StdCellLibrary::generate(self.node, effective)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_pdks_have_no_requirements() {
        let pdk = Pdk::open(TechnologyNode::N180);
        assert!(pdk.access_requirements().is_empty());
        assert_eq!(pdk.access_lead_time_weeks(), 0.0);
    }

    #[test]
    #[should_panic(expected = "no open PDK")]
    fn open_pdk_unavailable_below_130nm() {
        let _ = Pdk::open(TechnologyNode::N28);
    }

    #[test]
    fn requirements_grow_with_node_advancement() {
        let n65 = Pdk::commercial(TechnologyNode::N65);
        let n28 = Pdk::commercial(TechnologyNode::N28);
        let n5 = Pdk::commercial(TechnologyNode::N5);
        assert!(n28.access_requirements().len() > n65.access_requirements().len());
        assert!(n5.access_requirements().len() > n28.access_requirements().len());
        assert!(n5.access_lead_time_weeks() > n65.access_lead_time_weeks());
    }

    #[test]
    fn open_pdk_refuses_commercial_library() {
        let pdk = Pdk::open(TechnologyNode::N130);
        let lib = pdk.library(LibraryKind::Commercial);
        assert_eq!(lib.kind(), LibraryKind::Open);
    }

    #[test]
    fn commercial_pdk_provides_both_kinds() {
        let pdk = Pdk::commercial(TechnologyNode::N28);
        assert_eq!(pdk.library(LibraryKind::Open).kind(), LibraryKind::Open);
        assert_eq!(
            pdk.library(LibraryKind::Commercial).kind(),
            LibraryKind::Commercial
        );
    }

    #[test]
    fn lead_time_parallelization() {
        // Single requirement: exactly its own time.
        let pdk = Pdk::commercial(TechnologyNode::N65);
        let sum: f64 = pdk
            .access_requirements()
            .iter()
            .map(|r| r.lead_time_weeks())
            .sum();
        let lead = pdk.access_lead_time_weeks();
        assert!(lead < sum, "parallelization must help");
        assert!(lead >= 8.0, "NDA floor");
    }
}
