//! Geometric design rules derived from a technology node.

use crate::node::TechnologyNode;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Mask layers known to the layout and DRC engines.
///
/// The synthetic stack is simplified to the layers the flow actually draws:
/// diffusion/poly for cell abstracts, a configurable number of metal layers
/// and the vias between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Layer {
    /// Active diffusion.
    Diffusion,
    /// Polysilicon gate.
    Poly,
    /// Metal layer `n` (1-based).
    Metal(u8),
    /// Via between metal `n` and metal `n + 1` (1-based lower layer).
    Via(u8),
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Layer::Diffusion => write!(f, "DIFF"),
            Layer::Poly => write!(f, "POLY"),
            Layer::Metal(n) => write!(f, "M{n}"),
            Layer::Via(n) => write!(f, "V{n}"),
        }
    }
}

impl Layer {
    /// GDSII layer number used when streaming out.
    #[must_use]
    pub fn gds_layer(self) -> i16 {
        match self {
            Layer::Diffusion => 1,
            Layer::Poly => 2,
            Layer::Metal(n) => 10 + i16::from(n),
            Layer::Via(n) => 50 + i16::from(n),
        }
    }
}

/// Width/spacing/enclosure rules for one technology.
///
/// All dimensions are in micrometres. The rules scale from the node's metal
/// pitch: minimum width and spacing are each ~half the pitch, vias are
/// square at minimum width with a quarter-width metal enclosure.
///
/// ```
/// use chipforge_pdk::{DesignRules, Layer, TechnologyNode};
///
/// let rules = DesignRules::for_node(TechnologyNode::N130);
/// assert!(rules.min_width_um(Layer::Metal(1)) > 0.0);
/// assert!(rules.min_spacing_um(Layer::Metal(6)) >= rules.min_spacing_um(Layer::Metal(1)));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignRules {
    node: TechnologyNode,
}

impl DesignRules {
    /// Builds the rule deck for a node.
    #[must_use]
    pub fn for_node(node: TechnologyNode) -> Self {
        Self { node }
    }

    /// The node this deck belongs to.
    #[must_use]
    pub fn node(&self) -> TechnologyNode {
        self.node
    }

    /// Pitch growth factor for upper metals: every two layers the pitch
    /// roughly doubles (intermediate/global wiring).
    fn metal_scale(&self, metal: u8) -> f64 {
        let tier = (metal.saturating_sub(1) / 2) as f64;
        2.0_f64.powf(tier * 0.5)
    }

    /// Minimum feature width on a layer, in micrometres.
    #[must_use]
    pub fn min_width_um(&self, layer: Layer) -> f64 {
        let half_pitch = self.node.metal_pitch_um() / 2.0;
        match layer {
            Layer::Diffusion => self.node.contacted_poly_pitch_um() * 0.5,
            Layer::Poly => f64::from(self.node.feature_nm()) * 1.0e-3,
            Layer::Metal(n) => half_pitch * self.metal_scale(n),
            Layer::Via(n) => half_pitch * self.metal_scale(n),
        }
    }

    /// Minimum same-layer spacing, in micrometres.
    #[must_use]
    pub fn min_spacing_um(&self, layer: Layer) -> f64 {
        // Symmetric half-pitch spacing.
        self.min_width_um(layer)
    }

    /// Required metal enclosure of a via, in micrometres.
    #[must_use]
    pub fn via_enclosure_um(&self, via: u8) -> f64 {
        self.min_width_um(Layer::Via(via)) * 0.25
    }

    /// Routing pitch (width + spacing) on a metal layer, in micrometres.
    #[must_use]
    pub fn routing_pitch_um(&self, metal: u8) -> f64 {
        self.min_width_um(Layer::Metal(metal)) + self.min_spacing_um(Layer::Metal(metal))
    }

    /// Manufacturing grid, in micrometres.
    #[must_use]
    pub fn grid_um(&self) -> f64 {
        0.005
    }

    /// All drawn layers for this node's metal stack.
    #[must_use]
    pub fn layers(&self) -> Vec<Layer> {
        let mut layers = vec![Layer::Diffusion, Layer::Poly];
        let metals = self.node.metal_layers() as u8;
        for m in 1..=metals {
            layers.push(Layer::Metal(m));
            if m < metals {
                layers.push(Layer::Via(m));
            }
        }
        layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_positive_for_all_layers() {
        for node in TechnologyNode::ALL {
            let rules = DesignRules::for_node(node);
            for layer in rules.layers() {
                assert!(rules.min_width_um(layer) > 0.0, "{node} {layer}");
                assert!(rules.min_spacing_um(layer) > 0.0);
            }
        }
    }

    #[test]
    fn upper_metals_are_wider() {
        let rules = DesignRules::for_node(TechnologyNode::N7);
        assert!(
            rules.min_width_um(Layer::Metal(10)) > rules.min_width_um(Layer::Metal(1)),
            "global wiring must be fatter than local"
        );
    }

    #[test]
    fn rules_shrink_with_node() {
        let old = DesignRules::for_node(TechnologyNode::N180);
        let new = DesignRules::for_node(TechnologyNode::N16);
        assert!(new.min_width_um(Layer::Metal(1)) < old.min_width_um(Layer::Metal(1)));
        assert!(new.routing_pitch_um(1) < old.routing_pitch_um(1));
    }

    #[test]
    fn layer_stack_matches_node_metal_count() {
        let rules = DesignRules::for_node(TechnologyNode::N130);
        let metals = rules
            .layers()
            .iter()
            .filter(|l| matches!(l, Layer::Metal(_)))
            .count();
        assert_eq!(metals, TechnologyNode::N130.metal_layers());
    }

    #[test]
    fn gds_layer_numbers_unique() {
        use std::collections::HashSet;
        let rules = DesignRules::for_node(TechnologyNode::N2);
        let mut seen = HashSet::new();
        for layer in rules.layers() {
            assert!(
                seen.insert(layer.gds_layer()),
                "duplicate GDS layer for {layer}"
            );
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Layer::Metal(3).to_string(), "M3");
        assert_eq!(Layer::Via(1).to_string(), "V1");
        assert_eq!(Layer::Poly.to_string(), "POLY");
    }
}
