//! Property tests over library generation and Liberty emission.

use chipforge_pdk::{
    liberty, CellClass, DesignRules, Layer, LibraryKind, SramMacro, StdCellLibrary, TechnologyNode,
};
use proptest::prelude::*;

fn any_node() -> impl Strategy<Value = TechnologyNode> {
    proptest::sample::select(TechnologyNode::ALL.to_vec())
}

fn any_kind() -> impl Strategy<Value = LibraryKind> {
    prop_oneof![Just(LibraryKind::Open), Just(LibraryKind::Commercial)]
}

proptest! {
    #[test]
    fn drive_variants_are_monotonic(node in any_node(), kind in any_kind()) {
        let lib = StdCellLibrary::generate(node, kind);
        for class in CellClass::ALL {
            let variants = lib.variants(class);
            for pair in variants.windows(2) {
                prop_assert!(pair[0].drive() < pair[1].drive(), "{class}");
                prop_assert!(pair[0].area_um2() < pair[1].area_um2(), "{class}");
                // Stronger drive -> lower resistance (non-tie cells).
                if pair[0].resistance_ps_per_ff() > 0.0 {
                    prop_assert!(
                        pair[1].resistance_ps_per_ff() < pair[0].resistance_ps_per_ff()
                    );
                }
            }
        }
    }

    #[test]
    fn delays_are_positive_and_monotone_in_load(
        node in any_node(),
        kind in any_kind(),
        load in 0.1f64..100.0,
    ) {
        let lib = StdCellLibrary::generate(node, kind);
        for cell in lib.cells() {
            if cell.class().is_sequential() || cell.resistance_ps_per_ff() == 0.0 {
                continue;
            }
            let d1 = cell.delay_ps(load);
            let d2 = cell.delay_ps(load * 2.0);
            prop_assert!(d1 > 0.0, "{}", cell.name());
            prop_assert!(d2 > d1, "{}", cell.name());
        }
    }

    #[test]
    fn size_for_load_never_violates_budget_when_possible(
        node in any_node(),
        load in 1.0f64..60.0,
        budget in 10.0f64..2_000.0,
    ) {
        let lib = StdCellLibrary::generate(node, LibraryKind::Commercial);
        if let Some(cell) = lib.size_for_load(CellClass::Nand2, load, budget) {
            let strongest = lib.strongest(CellClass::Nand2).expect("exists");
            if strongest.delay_ps(load) <= budget {
                prop_assert!(cell.delay_ps(load) <= budget);
            } else {
                prop_assert_eq!(cell.name(), strongest.name());
            }
        }
    }

    #[test]
    fn liberty_emission_is_well_formed(node in any_node(), kind in any_kind()) {
        let lib = StdCellLibrary::generate(node, kind);
        let text = liberty::write_liberty(&lib);
        prop_assert_eq!(text.matches('{').count(), text.matches('}').count());
        let header = format!("library ({})", lib.name());
        let has_header = text.contains(&header);
        prop_assert!(has_header);
        // One cell group per library cell.
        prop_assert_eq!(text.matches("\n  cell (").count(), lib.len());
    }

    #[test]
    fn design_rules_scale_with_layers(node in any_node(), m in 1u8..6) {
        let rules = DesignRules::for_node(node);
        let lower = rules.min_width_um(Layer::Metal(m));
        let upper = rules.min_width_um(Layer::Metal(m + 2));
        prop_assert!(upper >= lower, "upper metals are never narrower");
        prop_assert!(rules.via_enclosure_um(m) > 0.0);
    }

    #[test]
    fn sram_area_is_superadditive_in_bits(
        node in any_node(),
        words in 16u32..4096,
        bits in 4u32..64,
    ) {
        let one = SramMacro::generate(words, bits, node);
        let double = SramMacro::generate(words * 2, bits, node);
        prop_assert!(double.area_um2() > one.area_um2());
        prop_assert!(double.access_ps() >= one.access_ps());
        prop_assert_eq!(double.bits(), one.bits() * 2);
    }
}
