//! Analytical placement: quadratic wirelength minimization followed by
//! row legalization, in the GORDIAN / FastPlace tradition.
//!
//! The placer models every net as a clique (star for high fan-out) of
//! two-pin springs, minimizes the resulting quadratic wirelength with a
//! conjugate-gradient solve — x and y are independent — then legalizes
//! the fractional solution: cells are banded into rows by their y target
//! and shifted within each row toward their x target without overlap
//! (Tetris-style, gaps allowed). A short deterministic adjacent-swap
//! polish cleans up local ordering mistakes. The whole kernel is
//! RNG-free: placements are byte-identical across seeds.

use crate::anneal::{
    boundary_ports, net_hpwl_at, total_hpwl_at, PlaceError, PlacedCell, Placement, PlacementOptions,
};
use crate::floorplan::Floorplan;
use chipforge_netlist::{NetDriver, Netlist};
use chipforge_pdk::StdCellLibrary;

/// Nets with more terminals than this switch from a clique to a star
/// centered on the driver, keeping the spring count linear in pins.
const CLIQUE_LIMIT: usize = 8;

/// Weight of the tiny core-center anchor that keeps the quadratic system
/// positive definite even for cells with no (movable) connections.
const CENTER_ANCHOR: f64 = 1e-4;

/// Deterministic adjacent-swap polish passes after legalization.
const POLISH_PASSES: usize = 2;

/// Places a netlist analytically: conjugate-gradient quadratic solve,
/// row legalization, deterministic polish.
///
/// # Errors
///
/// Same contract as [`crate::place`]: [`PlaceError::EmptyNetlist`],
/// [`PlaceError::UnknownLibCell`] and [`PlaceError::DoesNotFit`].
pub fn place_analytic(
    netlist: &Netlist,
    lib: &StdCellLibrary,
    options: &PlacementOptions,
) -> Result<Placement, PlaceError> {
    if netlist.cell_count() == 0 {
        return Err(PlaceError::EmptyNetlist);
    }
    let widths: Vec<f64> = netlist
        .cells()
        .map(|c| {
            lib.cell(c.lib_cell())
                .map(|l| l.width_um())
                .ok_or_else(|| PlaceError::UnknownLibCell(c.lib_cell().to_string()))
        })
        .collect::<Result<_, _>>()?;
    let floorplan = Floorplan::for_netlist(netlist, lib, options.utilization)
        .ok_or(PlaceError::EmptyNetlist)?;
    let ports = boundary_ports(netlist, &floorplan);

    // --- quadratic wirelength solve (x and y are separable) ---
    let system = SpringSystem::build(netlist, &ports);
    let target_x = system.solve_axis(Axis::X, &floorplan);
    let target_y = system.solve_axis(Axis::Y, &floorplan);

    // --- legalization: band into rows by y, shift toward x targets ---
    let mut positions = legalize(netlist, &floorplan, &widths, &target_x, &target_y)?;
    let initial_hpwl = total_hpwl_at(netlist, &positions, &widths, &ports);

    // --- deterministic polish: in-row adjacent swaps, improvements only ---
    polish(netlist, &widths, &ports, &mut positions);
    let hpwl = total_hpwl_at(netlist, &positions, &widths, &ports);

    let cells: Vec<PlacedCell> = netlist
        .cells()
        .map(|c| {
            let (x, y, row) = positions[c.id().index()];
            PlacedCell {
                id: c.id(),
                x_um: x,
                y_um: y,
                width_um: widths[c.id().index()],
                height_um: floorplan.row_height_um(),
                row,
            }
        })
        .collect();
    Ok(Placement::assemble(
        floorplan,
        cells,
        ports,
        hpwl,
        initial_hpwl,
    ))
}

#[derive(Clone, Copy)]
enum Axis {
    X,
    Y,
}

/// A sparse symmetric positive-definite spring system `A p = b`, one
/// instance shared by both axes (the connectivity is identical; only the
/// fixed-pin coordinates differ).
struct SpringSystem {
    /// Off-diagonal entries per cell: `(other_cell, weight)`.
    springs: Vec<Vec<(usize, f64)>>,
    /// Diagonal of `A` (spring weights + anchors).
    diag: Vec<f64>,
    /// Fixed-terminal contributions per cell: `(x, y, weight)`.
    anchors: Vec<Vec<(f64, f64, f64)>>,
}

impl SpringSystem {
    fn build(netlist: &Netlist, ports: &[(String, f64, f64)]) -> Self {
        let n = netlist.cell_count();
        let mut springs: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        let mut diag = vec![CENTER_ANCHOR; n];
        let mut anchors: Vec<Vec<(f64, f64, f64)>> = vec![Vec::new(); n];

        // Terminal of a net: either a movable cell or a fixed port pin.
        enum Term {
            Cell(usize),
            Fixed(f64, f64),
        }

        for net in netlist.nets() {
            let mut terms: Vec<Term> = Vec::new();
            match net.driver() {
                Some(NetDriver::Cell(id)) => terms.push(Term::Cell(id.index())),
                Some(NetDriver::Input(port)) => {
                    let (_, x, y) = &ports[port];
                    terms.push(Term::Fixed(*x, *y));
                }
                None => {}
            }
            for &(sink, _) in net.sinks() {
                terms.push(Term::Cell(sink.index()));
            }
            let k = terms.len();
            if k < 2 {
                continue;
            }
            let weight = 1.0 / (k - 1) as f64;
            let mut connect = |a: &Term, b: &Term, w: f64| match (a, b) {
                (Term::Cell(i), Term::Cell(j)) => {
                    if i != j {
                        springs[*i].push((*j, w));
                        springs[*j].push((*i, w));
                        diag[*i] += w;
                        diag[*j] += w;
                    }
                }
                (Term::Cell(i), Term::Fixed(x, y)) | (Term::Fixed(x, y), Term::Cell(i)) => {
                    diag[*i] += w;
                    anchors[*i].push((*x, *y, w));
                }
                (Term::Fixed(..), Term::Fixed(..)) => {}
            };
            if k <= CLIQUE_LIMIT {
                for i in 0..k {
                    for j in (i + 1)..k {
                        connect(&terms[i], &terms[j], weight);
                    }
                }
            } else {
                // Star on the driver terminal keeps high-fanout nets linear.
                for t in terms.iter().skip(1) {
                    connect(&terms[0], t, weight);
                }
            }
        }
        Self {
            springs,
            diag,
            anchors,
        }
    }

    /// Solves one axis with conjugate gradient; returns cell-center
    /// coordinates clamped into the core.
    fn solve_axis(&self, axis: Axis, floorplan: &Floorplan) -> Vec<f64> {
        let n = self.diag.len();
        let (extent, center) = match axis {
            Axis::X => (floorplan.core_width_um(), floorplan.core_width_um() / 2.0),
            Axis::Y => (floorplan.core_height_um(), floorplan.core_height_um() / 2.0),
        };
        // Right-hand side: fixed-terminal pulls plus the center anchor.
        let mut b = vec![0.0f64; n];
        for (i, cell_anchors) in self.anchors.iter().enumerate() {
            b[i] = CENTER_ANCHOR * center;
            for &(x, y, w) in cell_anchors {
                let p = match axis {
                    Axis::X => x,
                    Axis::Y => y,
                };
                b[i] += w * p;
            }
        }

        let mul = |p: &[f64], out: &mut [f64]| {
            for i in 0..n {
                let mut acc = self.diag[i] * p[i];
                for &(j, w) in &self.springs[i] {
                    acc -= w * p[j];
                }
                out[i] = acc;
            }
        };

        // Conjugate gradient from the core center.
        let mut x = vec![center; n];
        let mut ax = vec![0.0; n];
        mul(&x, &mut ax);
        let mut r: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
        let mut p = r.clone();
        let mut rs: f64 = r.iter().map(|v| v * v).sum();
        let tol = (1e-6 * extent).powi(2) * n as f64;
        let max_iters = 24 + 2 * (n as f64).sqrt() as usize;
        let mut ap = vec![0.0; n];
        for _ in 0..max_iters {
            if rs <= tol {
                break;
            }
            mul(&p, &mut ap);
            let denom: f64 = p.iter().zip(&ap).map(|(pi, api)| pi * api).sum();
            if denom <= 0.0 {
                break;
            }
            let alpha = rs / denom;
            for i in 0..n {
                x[i] += alpha * p[i];
                r[i] -= alpha * ap[i];
            }
            let rs_new: f64 = r.iter().map(|v| v * v).sum();
            let beta = rs_new / rs;
            rs = rs_new;
            for i in 0..n {
                p[i] = r[i] + beta * p[i];
            }
        }
        for v in &mut x {
            *v = v.clamp(0.0, extent);
        }
        x
    }
}

/// Bands cells into rows by their y target (balanced fill), then shifts
/// each row's cells toward their x targets without overlap.
fn legalize(
    netlist: &Netlist,
    floorplan: &Floorplan,
    widths: &[f64],
    target_x: &[f64],
    target_y: &[f64],
) -> Result<Vec<(f64, f64, usize)>, PlaceError> {
    let n = netlist.cell_count();
    let n_rows = floorplan.rows();
    let max_row = floorplan.core_width_um();
    let total_width: f64 = widths.iter().sum();
    if total_width > n_rows as f64 * max_row {
        return Err(PlaceError::DoesNotFit);
    }

    // Sort by y target (index tiebreak keeps this deterministic), then
    // fill rows bottom-to-top against a balanced cumulative quota.
    let mut by_y: Vec<usize> = (0..n).collect();
    by_y.sort_by(|&a, &b| {
        target_y[a]
            .partial_cmp(&target_y[b])
            .expect("finite targets")
            .then(a.cmp(&b))
    });
    let quota = total_width / n_rows as f64;
    let mut rows: Vec<Vec<usize>> = vec![Vec::new(); n_rows];
    let mut row_width = vec![0.0f64; n_rows];
    let mut row = 0usize;
    let mut cum = 0.0f64;
    for &idx in &by_y {
        let w = widths[idx];
        while row + 1 < n_rows && (cum >= quota * (row + 1) as f64 || row_width[row] + w > max_row)
        {
            row += 1;
        }
        if row_width[row] + w > max_row {
            // Balanced quotas overflowed the last row: spill backwards
            // into any row that still has space.
            let spill = (0..n_rows).find(|&r| row_width[r] + w <= max_row);
            match spill {
                Some(r) => {
                    rows[r].push(idx);
                    row_width[r] += w;
                    cum += w;
                    continue;
                }
                None => return Err(PlaceError::DoesNotFit),
            }
        }
        rows[row].push(idx);
        row_width[row] += w;
        cum += w;
    }

    // In-row: order by x target, then place each cell as close to its
    // target as the cells before and after it allow (legal by
    // construction; gaps are fine).
    let mut positions = vec![(0.0, 0.0, 0usize); n];
    for (r, cells) in rows.iter_mut().enumerate() {
        cells.sort_by(|&a, &b| {
            target_x[a]
                .partial_cmp(&target_x[b])
                .expect("finite targets")
                .then(a.cmp(&b))
        });
        let y = floorplan.row_y_um(r);
        // Suffix widths: how much room the cells after position i need.
        let mut suffix = vec![0.0f64; cells.len() + 1];
        for i in (0..cells.len()).rev() {
            suffix[i] = suffix[i + 1] + widths[cells[i]];
        }
        let mut cursor = 0.0f64;
        for (i, &idx) in cells.iter().enumerate() {
            let w = widths[idx];
            let desired = target_x[idx] - w / 2.0;
            let hi = max_row - suffix[i];
            let x = desired.clamp(0.0, hi.max(0.0)).max(cursor);
            positions[idx] = (x, y, r);
            cursor = x + w;
        }
    }
    Ok(positions)
}

/// Deterministic local polish: for each row, repeatedly try swapping
/// adjacent cells (preserving the occupied interval) and keep swaps that
/// reduce the HPWL of the nets they touch.
fn polish(
    netlist: &Netlist,
    widths: &[f64],
    ports: &[(String, f64, f64)],
    positions: &mut [(f64, f64, usize)],
) {
    let n = netlist.cell_count();
    // Rebuild row membership ordered by x.
    let n_rows = positions.iter().map(|p| p.2 + 1).max().unwrap_or(0);
    let mut rows: Vec<Vec<usize>> = vec![Vec::new(); n_rows];
    for i in 0..n {
        rows[positions[i].2].push(i);
    }
    for row in &mut rows {
        row.sort_by(|&a, &b| {
            positions[a]
                .0
                .partial_cmp(&positions[b].0)
                .expect("finite positions")
                .then(a.cmp(&b))
        });
    }
    let local = |positions: &[(f64, f64, usize)], cell: usize| -> f64 {
        let c = netlist.cell(chipforge_netlist::CellId::new(cell));
        let mut total = 0.0;
        for &net in c.inputs() {
            total += net_hpwl_at(netlist, net, positions, widths, ports);
        }
        total + net_hpwl_at(netlist, c.output(), positions, widths, ports)
    };
    for _ in 0..POLISH_PASSES {
        let mut improved = false;
        for row in &mut rows {
            for i in 0..row.len().saturating_sub(1) {
                let a = row[i];
                let b = row[i + 1];
                let (ax, y, r) = positions[a];
                let bx = positions[b].0;
                // Swapped layout keeps the pair's right edge in place.
                let new_bx = ax;
                let new_ax = bx + widths[b] - widths[a];
                let before = local(positions, a) + local(positions, b);
                positions[a] = (new_ax, y, r);
                positions[b] = (new_bx, y, r);
                let after = local(positions, a) + local(positions, b);
                if after + 1e-12 < before {
                    row.swap(i, i + 1);
                    improved = true;
                } else {
                    positions[a] = (ax, y, r);
                    positions[b] = (bx, y, r);
                }
            }
        }
        if !improved {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anneal::place;
    use chipforge_hdl::designs;
    use chipforge_pdk::{LibraryKind, TechnologyNode};
    use chipforge_synth::{synthesize, SynthOptions};

    fn lib() -> StdCellLibrary {
        StdCellLibrary::generate(TechnologyNode::N130, LibraryKind::Open)
    }

    fn synth(design: chipforge_hdl::designs::Design) -> Netlist {
        let module = design.elaborate().unwrap();
        synthesize(&module, &lib(), &SynthOptions::default())
            .unwrap()
            .netlist
    }

    #[test]
    fn analytic_placement_is_legal_for_suite() {
        let lib = lib();
        for design in designs::suite() {
            let netlist = synth(design.clone());
            let placement = place_analytic(&netlist, &lib, &PlacementOptions::default())
                .unwrap_or_else(|e| panic!("{}: {e}", design.name()));
            assert!(placement.is_legal(), "{} illegal", design.name());
            assert_eq!(placement.cells().len(), netlist.cell_count());
            assert!(placement.hpwl_um() > 0.0, "{}", design.name());
        }
    }

    #[test]
    fn analytic_placement_is_seed_independent() {
        // The kernel never touches an RNG: any two seeds must agree.
        let lib = lib();
        let netlist = synth(designs::alu(8));
        let a = place_analytic(
            &netlist,
            &lib,
            &PlacementOptions {
                seed: 1,
                ..PlacementOptions::default()
            },
        )
        .unwrap();
        let b = place_analytic(
            &netlist,
            &lib,
            &PlacementOptions {
                seed: 424_242,
                ..PlacementOptions::default()
            },
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn analytic_hpwl_is_competitive_with_annealing() {
        // PPA-parity guard at the kernel level: the analytical result
        // must land within 1.6x of the annealed wirelength (it is
        // usually better) for a mid-size design.
        let lib = lib();
        let netlist = synth(designs::alu(8));
        let annealed = place(&netlist, &lib, &PlacementOptions::default()).unwrap();
        let analytic = place_analytic(&netlist, &lib, &PlacementOptions::default()).unwrap();
        assert!(
            analytic.hpwl_um() < annealed.hpwl_um() * 1.6,
            "analytic {} vs annealed {}",
            analytic.hpwl_um(),
            annealed.hpwl_um()
        );
    }

    #[test]
    fn polish_never_hurts() {
        let lib = lib();
        for design in [designs::counter(8), designs::alu(8)] {
            let netlist = synth(design);
            let p = place_analytic(&netlist, &lib, &PlacementOptions::default()).unwrap();
            assert!(p.hpwl_um() <= p.initial_hpwl_um() + 1e-9);
        }
    }

    #[test]
    fn analytic_rejects_empty_netlists() {
        let nl = Netlist::new("empty");
        let err = place_analytic(&nl, &lib(), &PlacementOptions::default()).unwrap_err();
        assert_eq!(err, PlaceError::EmptyNetlist);
    }
}
