//! Row-based placement with simulated-annealing refinement.

use crate::floorplan::Floorplan;
use chipforge_netlist::{CellId, NetDriver, NetId, Netlist};
use chipforge_pdk::StdCellLibrary;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Options for [`place`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementOptions {
    /// Target row utilization in `(0, 1]`.
    pub utilization: f64,
    /// RNG seed (placement is deterministic for a fixed seed).
    pub seed: u64,
    /// Annealing moves per cell (0 disables refinement).
    pub moves_per_cell: usize,
}

impl Default for PlacementOptions {
    fn default() -> Self {
        Self {
            utilization: 0.75,
            seed: 1,
            moves_per_cell: 200,
        }
    }
}

/// Errors from placement.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlaceError {
    /// The netlist has no cells to place.
    EmptyNetlist,
    /// A cell references a library cell missing from the library.
    UnknownLibCell(String),
    /// The cells do not fit the floorplan rows (utilization too high).
    DoesNotFit,
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaceError::EmptyNetlist => write!(f, "netlist has no cells"),
            PlaceError::UnknownLibCell(name) => write!(f, "unknown library cell `{name}`"),
            PlaceError::DoesNotFit => write!(f, "cells do not fit the floorplan"),
        }
    }
}

impl Error for PlaceError {}

/// A placed cell instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacedCell {
    /// Netlist cell.
    pub id: CellId,
    /// Lower-left x in µm.
    pub x_um: f64,
    /// Lower-left y in µm.
    pub y_um: f64,
    /// Width in µm.
    pub width_um: f64,
    /// Height in µm.
    pub height_um: f64,
    /// Row index.
    pub row: usize,
}

impl PlacedCell {
    /// Cell center x in µm.
    #[must_use]
    pub fn center_x_um(&self) -> f64 {
        self.x_um + self.width_um / 2.0
    }

    /// Cell center y in µm.
    #[must_use]
    pub fn center_y_um(&self) -> f64 {
        self.y_um + self.height_um / 2.0
    }
}

/// A legal placement of a netlist.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    floorplan: Floorplan,
    cells: Vec<PlacedCell>,
    /// I/O port positions on the die boundary: `(name, x, y)`.
    ports: Vec<(String, f64, f64)>,
    hpwl_um: f64,
    initial_hpwl_um: f64,
}

impl Placement {
    /// Assembles a placement from kernel output (crate-internal: kernels
    /// are trusted to hand over row-legal cells).
    pub(crate) fn assemble(
        floorplan: Floorplan,
        cells: Vec<PlacedCell>,
        ports: Vec<(String, f64, f64)>,
        hpwl_um: f64,
        initial_hpwl_um: f64,
    ) -> Self {
        Self {
            floorplan,
            cells,
            ports,
            hpwl_um,
            initial_hpwl_um,
        }
    }

    /// The floorplan this placement lives in.
    #[must_use]
    pub fn floorplan(&self) -> &Floorplan {
        &self.floorplan
    }

    /// Placed cells indexed by [`CellId::index`].
    #[must_use]
    pub fn cells(&self) -> &[PlacedCell] {
        &self.cells
    }

    /// Looks up the placement of a cell.
    #[must_use]
    pub fn cell(&self, id: CellId) -> &PlacedCell {
        &self.cells[id.index()]
    }

    /// I/O port positions `(name, x, y)` on the die boundary.
    #[must_use]
    pub fn ports(&self) -> &[(String, f64, f64)] {
        &self.ports
    }

    /// Total half-perimeter wirelength in µm (after refinement).
    #[must_use]
    pub fn hpwl_um(&self) -> f64 {
        self.hpwl_um
    }

    /// HPWL of the initial packing before annealing, in µm.
    #[must_use]
    pub fn initial_hpwl_um(&self) -> f64 {
        self.initial_hpwl_um
    }

    /// Achieved utilization: cell area / core area.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        let cell_area: f64 = self.cells.iter().map(|c| c.width_um * c.height_um).sum();
        cell_area / self.floorplan.core_area_um2()
    }

    /// Verifies legality: every cell inside the core, no overlaps in rows.
    #[must_use]
    pub fn is_legal(&self) -> bool {
        let eps = 1e-6;
        let mut by_row: Vec<Vec<&PlacedCell>> = vec![Vec::new(); self.floorplan.rows()];
        for cell in &self.cells {
            if cell.x_um < -eps
                || cell.y_um < -eps
                || cell.x_um + cell.width_um > self.floorplan.core_width_um() + eps
                || cell.y_um + cell.height_um > self.floorplan.core_height_um() + eps
            {
                return false;
            }
            by_row[cell.row].push(cell);
        }
        for row in &mut by_row {
            row.sort_by(|a, b| a.x_um.partial_cmp(&b.x_um).expect("finite"));
            for pair in row.windows(2) {
                if pair[0].x_um + pair[0].width_um > pair[1].x_um + eps {
                    return false;
                }
            }
        }
        true
    }
}

/// Places a netlist: row packing followed by simulated annealing.
///
/// # Errors
///
/// * [`PlaceError::EmptyNetlist`] for netlists without cells;
/// * [`PlaceError::UnknownLibCell`] if a cell is missing from `lib`;
/// * [`PlaceError::DoesNotFit`] if the utilization target cannot be met.
pub fn place(
    netlist: &Netlist,
    lib: &StdCellLibrary,
    options: &PlacementOptions,
) -> Result<Placement, PlaceError> {
    if netlist.cell_count() == 0 {
        return Err(PlaceError::EmptyNetlist);
    }
    let widths: Vec<f64> = netlist
        .cells()
        .map(|c| {
            lib.cell(c.lib_cell())
                .map(|l| l.width_um())
                .ok_or_else(|| PlaceError::UnknownLibCell(c.lib_cell().to_string()))
        })
        .collect::<Result<_, _>>()?;
    let floorplan = Floorplan::for_netlist(netlist, lib, options.utilization)
        .ok_or(PlaceError::EmptyNetlist)?;

    // --- initial packing: breadth-first from inputs for locality ---
    let order = initial_order(netlist);
    let mut rows: Vec<Vec<CellId>> = vec![Vec::new(); floorplan.rows()];
    let mut row_width = vec![0.0f64; floorplan.rows()];
    let max_row = floorplan.core_width_um();
    {
        let mut row = 0usize;
        for id in order {
            let w = widths[id.index()];
            let mut tries = 0;
            while row_width[row] + w > max_row {
                row = (row + 1) % floorplan.rows();
                tries += 1;
                if tries > floorplan.rows() {
                    return Err(PlaceError::DoesNotFit);
                }
            }
            rows[row].push(id);
            row_width[row] += w;
            // Snake through rows for locality.
            if row_width[row] > max_row * 0.9 {
                row = (row + 1) % floorplan.rows();
            }
        }
    }

    let ports = boundary_ports(netlist, &floorplan);
    let mut state = State {
        netlist,
        floorplan: &floorplan,
        widths: &widths,
        rows,
        positions: vec![(0.0, 0.0, 0); netlist.cell_count()],
        ports: &ports,
    };
    state.repack_all();
    let initial_hpwl = state.total_hpwl();

    // --- simulated annealing ---
    // `moves_per_cell == 0` is the deterministic fast path: the purely
    // constructive packing above is returned as-is and no RNG is ever
    // constructed, so the result is byte-identical across seeds.
    let n_moves = options.moves_per_cell * netlist.cell_count();
    if n_moves > 0 {
        let mut rng = StdRng::seed_from_u64(options.seed);
        let mut temperature = initial_hpwl.max(1.0) * 0.01 / netlist.cell_count() as f64;
        let cooling = 0.999_f64.powf(1.0 / (1.0 + n_moves as f64 / 1000.0));
        let mut current = initial_hpwl;
        for _ in 0..n_moves {
            let (row_a, idx_a) = state.random_slot(&mut rng);
            let (row_b, idx_b) = state.random_slot(&mut rng);
            if row_a == row_b && idx_a == idx_b {
                continue;
            }
            let before = state.local_hpwl(row_a, idx_a) + state.local_hpwl(row_b, idx_b);
            if !state.try_swap(row_a, idx_a, row_b, idx_b) {
                continue;
            }
            let after = state.local_hpwl(row_a, idx_a) + state.local_hpwl(row_b, idx_b);
            let delta = after - before;
            let accept = delta <= 0.0 || rng.gen::<f64>() < (-delta / temperature).exp();
            if accept {
                current += delta;
            } else {
                state.try_swap(row_a, idx_a, row_b, idx_b); // revert
            }
            temperature *= cooling;
        }
        let _ = current;
    }

    let hpwl = state.total_hpwl();
    let cells: Vec<PlacedCell> = netlist
        .cells()
        .map(|c| {
            let (x, y, row) = state.positions[c.id().index()];
            PlacedCell {
                id: c.id(),
                x_um: x,
                y_um: y,
                width_um: widths[c.id().index()],
                height_um: floorplan.row_height_um(),
                row,
            }
        })
        .collect();
    Ok(Placement {
        floorplan,
        cells,
        ports,
        hpwl_um: hpwl,
        initial_hpwl_um: initial_hpwl,
    })
}

/// Breadth-first cell order from the primary inputs, for initial locality.
pub(crate) fn initial_order(netlist: &Netlist) -> Vec<CellId> {
    let mut visited = vec![false; netlist.cell_count()];
    let mut order = Vec::with_capacity(netlist.cell_count());
    let mut queue: std::collections::VecDeque<CellId> = std::collections::VecDeque::new();
    for (_, net) in netlist.inputs() {
        for &(sink, _) in netlist.net(*net).sinks() {
            if !visited[sink.index()] {
                visited[sink.index()] = true;
                queue.push_back(sink);
            }
        }
    }
    while let Some(id) = queue.pop_front() {
        order.push(id);
        let out = netlist.cell(id).output();
        for &(sink, _) in netlist.net(out).sinks() {
            if !visited[sink.index()] {
                visited[sink.index()] = true;
                queue.push_back(sink);
            }
        }
    }
    // Anything unreachable from inputs (e.g. free-running counters).
    for cell in netlist.cells() {
        if !visited[cell.id().index()] {
            order.push(cell.id());
        }
    }
    order
}

/// Distributes I/O ports evenly along the four die edges.
pub(crate) fn boundary_ports(netlist: &Netlist, floorplan: &Floorplan) -> Vec<(String, f64, f64)> {
    let names: Vec<&str> = netlist
        .inputs()
        .iter()
        .map(|(n, _)| n.as_str())
        .chain(netlist.outputs().iter().map(|(n, _)| n.as_str()))
        .collect();
    let total = names.len().max(1);
    let w = floorplan.core_width_um();
    let h = floorplan.core_height_um();
    let perimeter = 2.0 * (w + h);
    names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let d = perimeter * i as f64 / total as f64;
            let (x, y) = if d < w {
                (d, 0.0)
            } else if d < w + h {
                (w, d - w)
            } else if d < 2.0 * w + h {
                (2.0 * w + h - d, h)
            } else {
                (0.0, perimeter - d)
            };
            (name.to_string(), x, y)
        })
        .collect()
}

struct State<'a> {
    netlist: &'a Netlist,
    floorplan: &'a Floorplan,
    widths: &'a [f64],
    rows: Vec<Vec<CellId>>,
    /// Per cell: (x, y, row).
    positions: Vec<(f64, f64, usize)>,
    ports: &'a [(String, f64, f64)],
}

impl State<'_> {
    fn repack_row(&mut self, row: usize) {
        let y = self.floorplan.row_y_um(row);
        let mut x = 0.0;
        for &id in &self.rows[row] {
            self.positions[id.index()] = (x, y, row);
            x += self.widths[id.index()];
        }
    }

    fn repack_all(&mut self) {
        for row in 0..self.rows.len() {
            self.repack_row(row);
        }
    }

    fn random_slot(&self, rng: &mut StdRng) -> (usize, usize) {
        loop {
            let row = rng.gen_range(0..self.rows.len());
            if !self.rows[row].is_empty() {
                return (row, rng.gen_range(0..self.rows[row].len()));
            }
        }
    }

    /// Swaps the cells in two slots if both rows still fit; returns whether
    /// the swap happened. Calling twice with the same slots reverts.
    fn try_swap(&mut self, row_a: usize, idx_a: usize, row_b: usize, idx_b: usize) -> bool {
        let a = self.rows[row_a][idx_a];
        let b = self.rows[row_b][idx_b];
        if row_a != row_b {
            let wa = self.widths[a.index()];
            let wb = self.widths[b.index()];
            let max = self.floorplan.core_width_um();
            let width_a: f64 = self.rows[row_a]
                .iter()
                .map(|c| self.widths[c.index()])
                .sum();
            let width_b: f64 = self.rows[row_b]
                .iter()
                .map(|c| self.widths[c.index()])
                .sum();
            if width_a - wa + wb > max || width_b - wb + wa > max {
                return false;
            }
        }
        self.rows[row_a][idx_a] = b;
        self.rows[row_b][idx_b] = a;
        self.repack_row(row_a);
        if row_b != row_a {
            self.repack_row(row_b);
        }
        true
    }

    /// HPWL of all nets touching the cell at a slot.
    fn local_hpwl(&self, row: usize, idx: usize) -> f64 {
        let id = self.rows[row][idx];
        let cell = self.netlist.cell(id);
        let mut total = 0.0;
        for &net in cell.inputs() {
            total += self.net_hpwl(net);
        }
        total += self.net_hpwl(cell.output());
        total
    }

    fn net_hpwl(&self, net: NetId) -> f64 {
        net_hpwl_at(self.netlist, net, &self.positions, self.widths, self.ports)
    }

    fn total_hpwl(&self) -> f64 {
        total_hpwl_at(self.netlist, &self.positions, self.widths, self.ports)
    }
}

/// HPWL of one net given per-cell positions `(x, y, row)` (lower-left
/// corners; pins are taken at cell-center x). Shared between the
/// annealing and analytical placers so both score placements identically.
pub(crate) fn net_hpwl_at(
    netlist: &Netlist,
    net: NetId,
    positions: &[(f64, f64, usize)],
    widths: &[f64],
    ports: &[(String, f64, f64)],
) -> f64 {
    let net_ref = netlist.net(net);
    let mut min_x = f64::INFINITY;
    let mut max_x = f64::NEG_INFINITY;
    let mut min_y = f64::INFINITY;
    let mut max_y = f64::NEG_INFINITY;
    let mut extend = |x: f64, y: f64| {
        min_x = min_x.min(x);
        max_x = max_x.max(x);
        min_y = min_y.min(y);
        max_y = max_y.max(y);
    };
    match net_ref.driver() {
        Some(NetDriver::Cell(id)) => {
            let (x, y, _) = positions[id.index()];
            extend(x + widths[id.index()] / 2.0, y);
        }
        Some(NetDriver::Input(port)) => {
            let (_, x, y) = &ports[port];
            extend(*x, *y);
        }
        None => {}
    }
    for &(sink, _) in net_ref.sinks() {
        let (x, y, _) = positions[sink.index()];
        extend(x + widths[sink.index()] / 2.0, y);
    }
    if min_x > max_x {
        return 0.0;
    }
    (max_x - min_x) + (max_y - min_y)
}

/// Total HPWL over all nets for per-cell positions `(x, y, row)`.
pub(crate) fn total_hpwl_at(
    netlist: &Netlist,
    positions: &[(f64, f64, usize)],
    widths: &[f64],
    ports: &[(String, f64, f64)],
) -> f64 {
    (0..netlist.net_count())
        .map(|i| net_hpwl_at(netlist, NetId::new(i), positions, widths, ports))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipforge_hdl::designs;
    use chipforge_pdk::{LibraryKind, TechnologyNode};
    use chipforge_synth::{synthesize, SynthOptions};

    fn lib() -> StdCellLibrary {
        StdCellLibrary::generate(TechnologyNode::N130, LibraryKind::Open)
    }

    fn synth(design: chipforge_hdl::designs::Design) -> Netlist {
        let module = design.elaborate().unwrap();
        synthesize(&module, &lib(), &SynthOptions::default())
            .unwrap()
            .netlist
    }

    #[test]
    fn placement_is_legal_for_suite() {
        let lib = lib();
        for design in designs::suite() {
            let netlist = synth(design.clone());
            let placement = place(&netlist, &lib, &PlacementOptions::default())
                .unwrap_or_else(|e| panic!("{}: {e}", design.name()));
            assert!(placement.is_legal(), "{} illegal", design.name());
            assert_eq!(placement.cells().len(), netlist.cell_count());
        }
    }

    #[test]
    fn annealing_improves_hpwl() {
        let lib = lib();
        let netlist = synth(designs::alu(8));
        let placement = place(
            &netlist,
            &lib,
            &PlacementOptions {
                moves_per_cell: 400,
                ..PlacementOptions::default()
            },
        )
        .unwrap();
        assert!(
            placement.hpwl_um() < placement.initial_hpwl_um(),
            "annealing must improve HPWL: {} -> {}",
            placement.initial_hpwl_um(),
            placement.hpwl_um()
        );
    }

    #[test]
    fn placement_is_deterministic_for_fixed_seed() {
        let lib = lib();
        let netlist = synth(designs::counter(8));
        let a = place(&netlist, &lib, &PlacementOptions::default()).unwrap();
        let b = place(&netlist, &lib, &PlacementOptions::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_placements() {
        let lib = lib();
        let netlist = synth(designs::alu(8));
        let a = place(&netlist, &lib, &PlacementOptions::default()).unwrap();
        let b = place(
            &netlist,
            &lib,
            &PlacementOptions {
                seed: 99,
                ..PlacementOptions::default()
            },
        )
        .unwrap();
        assert_ne!(a.hpwl_um(), b.hpwl_um());
    }

    #[test]
    fn zero_moves_is_seed_independent() {
        // The deterministic fast path: with refinement disabled the
        // constructive packing never touches an RNG, so any two seeds
        // must produce byte-identical placements.
        let lib = lib();
        let netlist = synth(designs::alu(8));
        let opts = |seed| PlacementOptions {
            seed,
            moves_per_cell: 0,
            ..PlacementOptions::default()
        };
        let a = place(&netlist, &lib, &opts(1)).unwrap();
        let b = place(&netlist, &lib, &opts(0xDEAD_BEEF)).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            serde::json::to_string(&a.cells().to_vec()),
            serde::json::to_string(&b.cells().to_vec())
        );
        assert_eq!(a.hpwl_um(), a.initial_hpwl_um());
    }

    #[test]
    fn utilization_close_to_target() {
        let lib = lib();
        let netlist = synth(designs::fir4(8));
        let placement = place(&netlist, &lib, &PlacementOptions::default()).unwrap();
        let u = placement.utilization();
        assert!((0.3..=0.80).contains(&u), "utilization {u}");
    }

    #[test]
    fn empty_netlist_rejected() {
        let nl = Netlist::new("empty");
        let err = place(&nl, &lib(), &PlacementOptions::default()).unwrap_err();
        assert_eq!(err, PlaceError::EmptyNetlist);
    }

    #[test]
    fn ports_lie_on_boundary() {
        let lib = lib();
        let netlist = synth(designs::counter(8));
        let placement = place(&netlist, &lib, &PlacementOptions::default()).unwrap();
        let w = placement.floorplan().core_width_um();
        let h = placement.floorplan().core_height_um();
        for (name, x, y) in placement.ports() {
            let on_edge = (*x).abs() < 1e-9
                || (*x - w).abs() < 1e-9
                || (*y).abs() < 1e-9
                || (*y - h).abs() < 1e-9;
            assert!(on_edge, "port {name} at ({x}, {y}) not on boundary");
        }
    }
}
