//! Die and row floorplanning.

use chipforge_netlist::Netlist;
use chipforge_pdk::StdCellLibrary;
use serde::{Deserialize, Serialize};

/// A rectangular core area with standard-cell rows.
///
/// ```
/// use chipforge_pdk::{LibraryKind, StdCellLibrary, TechnologyNode};
/// use chipforge_place::Floorplan;
///
/// let lib = StdCellLibrary::generate(TechnologyNode::N130, LibraryKind::Open);
/// let fp = Floorplan::for_area(500.0, &lib, 0.7);
/// assert!(fp.rows() > 0);
/// assert!(fp.core_width_um() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Floorplan {
    core_width_um: f64,
    core_height_um: f64,
    row_height_um: f64,
    site_width_um: f64,
    rows: usize,
    sites_per_row: usize,
    target_utilization: f64,
}

impl Floorplan {
    /// Floorplans a near-square core for `cell_area_um2` of standard cells
    /// at the given utilization target.
    ///
    /// # Panics
    ///
    /// Panics if `utilization` is not in `(0, 1]` or the area is not
    /// positive.
    #[must_use]
    pub fn for_area(cell_area_um2: f64, lib: &StdCellLibrary, utilization: f64) -> Self {
        assert!(
            utilization > 0.0 && utilization <= 1.0,
            "utilization must be in (0, 1]"
        );
        assert!(cell_area_um2 > 0.0, "cell area must be positive");
        let core_area = cell_area_um2 / utilization;
        let row_height = lib.row_height_um();
        let site_width = lib.site_width_um();
        // Near-square: height = rows * row_height closest to sqrt(area).
        let side = core_area.sqrt();
        let rows = (side / row_height).ceil().max(1.0) as usize;
        let core_height = rows as f64 * row_height;
        let width = (core_area / core_height).max(site_width);
        let sites_per_row = (width / site_width).ceil().max(1.0) as usize;
        let core_width = sites_per_row as f64 * site_width;
        Self {
            core_width_um: core_width,
            core_height_um: core_height,
            row_height_um: row_height,
            site_width_um: site_width,
            rows,
            sites_per_row,
            target_utilization: utilization,
        }
    }

    /// Floorplans for the total cell area of a netlist.
    ///
    /// Returns `None` if the netlist has no cells or references cells
    /// missing from the library.
    #[must_use]
    pub fn for_netlist(netlist: &Netlist, lib: &StdCellLibrary, utilization: f64) -> Option<Self> {
        let mut area = 0.0;
        for cell in netlist.cells() {
            area += lib.cell(cell.lib_cell())?.area_um2();
        }
        if area <= 0.0 {
            return None;
        }
        Some(Self::for_area(area, lib, utilization))
    }

    /// Core width in µm.
    #[must_use]
    pub fn core_width_um(&self) -> f64 {
        self.core_width_um
    }

    /// Core height in µm.
    #[must_use]
    pub fn core_height_um(&self) -> f64 {
        self.core_height_um
    }

    /// Core area in µm².
    #[must_use]
    pub fn core_area_um2(&self) -> f64 {
        self.core_width_um * self.core_height_um
    }

    /// Number of cell rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Placement sites per row.
    #[must_use]
    pub fn sites_per_row(&self) -> usize {
        self.sites_per_row
    }

    /// Row height in µm.
    #[must_use]
    pub fn row_height_um(&self) -> f64 {
        self.row_height_um
    }

    /// Site width in µm.
    #[must_use]
    pub fn site_width_um(&self) -> f64 {
        self.site_width_um
    }

    /// Utilization the floorplan was sized for.
    #[must_use]
    pub fn target_utilization(&self) -> f64 {
        self.target_utilization
    }

    /// The y coordinate of a row's bottom edge.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    #[must_use]
    pub fn row_y_um(&self, row: usize) -> f64 {
        assert!(row < self.rows, "row {row} out of range");
        row as f64 * self.row_height_um
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipforge_pdk::{LibraryKind, TechnologyNode};

    fn lib() -> StdCellLibrary {
        StdCellLibrary::generate(TechnologyNode::N130, LibraryKind::Open)
    }

    #[test]
    fn floorplan_is_near_square() {
        let fp = Floorplan::for_area(10_000.0, &lib(), 0.7);
        let aspect = fp.core_width_um() / fp.core_height_um();
        assert!((0.5..2.0).contains(&aspect), "aspect {aspect}");
    }

    #[test]
    fn utilization_bounds_core_area() {
        let fp = Floorplan::for_area(7_000.0, &lib(), 0.7);
        assert!(fp.core_area_um2() >= 10_000.0 * 0.99);
    }

    #[test]
    fn lower_utilization_means_bigger_die() {
        let dense = Floorplan::for_area(5_000.0, &lib(), 0.9);
        let sparse = Floorplan::for_area(5_000.0, &lib(), 0.5);
        assert!(sparse.core_area_um2() > 1.5 * dense.core_area_um2());
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn zero_utilization_rejected() {
        let _ = Floorplan::for_area(1000.0, &lib(), 0.0);
    }

    #[test]
    fn row_geometry_consistent() {
        let fp = Floorplan::for_area(2_000.0, &lib(), 0.7);
        assert!((fp.rows() as f64 * fp.row_height_um() - fp.core_height_um()).abs() < 1e-9);
        assert!((fp.sites_per_row() as f64 * fp.site_width_um() - fp.core_width_um()).abs() < 1e-9);
        assert_eq!(fp.row_y_um(0), 0.0);
        assert!(fp.row_y_um(1) > 0.0);
    }

    #[test]
    fn for_netlist_none_on_empty() {
        let nl = Netlist::new("empty");
        assert!(Floorplan::for_netlist(&nl, &lib(), 0.7).is_none());
    }
}
