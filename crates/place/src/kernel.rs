//! Pluggable placement kernels.
//!
//! Every placer implements [`Placer`]; [`PlacerKind`] is the canonical
//! name-addressed registry used by flow profiles, CLI flags and batch
//! manifests. The kind serializes as its name and deserializes
//! permissively: a missing/null field means the default (annealing)
//! kernel, so reports and job specs written before kernel selection
//! existed keep loading.

use crate::analytic::place_analytic;
use crate::anneal::{place, PlaceError, Placement, PlacementOptions};
use chipforge_netlist::Netlist;
use chipforge_pdk::StdCellLibrary;
use serde::{Deserialize, Error, Serialize, Value};
use std::fmt;

/// A placement kernel: turns a netlist into a row-legal [`Placement`].
pub trait Placer {
    /// The registry entry this kernel implements.
    fn kind(&self) -> PlacerKind;

    /// Places a netlist.
    ///
    /// # Errors
    ///
    /// Same contract as [`crate::place`].
    fn place(
        &self,
        netlist: &Netlist,
        lib: &StdCellLibrary,
        options: &PlacementOptions,
    ) -> Result<Placement, PlaceError>;
}

/// The simulated-annealing placer (the seed kernel).
pub struct AnnealPlacer;

impl Placer for AnnealPlacer {
    fn kind(&self) -> PlacerKind {
        PlacerKind::Anneal
    }

    fn place(
        &self,
        netlist: &Netlist,
        lib: &StdCellLibrary,
        options: &PlacementOptions,
    ) -> Result<Placement, PlaceError> {
        place(netlist, lib, options)
    }
}

/// The analytical (quadratic + legalization) placer.
pub struct AnalyticPlacer;

impl Placer for AnalyticPlacer {
    fn kind(&self) -> PlacerKind {
        PlacerKind::Analytic
    }

    fn place(
        &self,
        netlist: &Netlist,
        lib: &StdCellLibrary,
        options: &PlacementOptions,
    ) -> Result<Placement, PlaceError> {
        place_analytic(netlist, lib, options)
    }
}

/// Name-addressed placement kernel selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PlacerKind {
    /// Simulated annealing over row-packed swaps (seed behaviour).
    #[default]
    Anneal,
    /// Quadratic-wirelength conjugate-gradient solve + row legalization.
    Analytic,
}

impl PlacerKind {
    /// All registered kernels, in canonical order.
    pub const ALL: [PlacerKind; 2] = [PlacerKind::Anneal, PlacerKind::Analytic];

    /// The canonical kernel name (used in profiles, CLI and manifests).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PlacerKind::Anneal => "anneal",
            PlacerKind::Analytic => "analytic",
        }
    }

    /// Looks a kernel up by name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == name)
    }

    /// The kernel implementation behind this kind.
    #[must_use]
    pub fn placer(self) -> &'static dyn Placer {
        match self {
            PlacerKind::Anneal => &AnnealPlacer,
            PlacerKind::Analytic => &AnalyticPlacer,
        }
    }

    /// Places a netlist with this kernel.
    ///
    /// # Errors
    ///
    /// Same contract as [`crate::place`].
    pub fn place(
        self,
        netlist: &Netlist,
        lib: &StdCellLibrary,
        options: &PlacementOptions,
    ) -> Result<Placement, PlaceError> {
        self.placer().place(netlist, lib, options)
    }
}

impl fmt::Display for PlacerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Serialize for PlacerKind {
    fn to_value(&self) -> Value {
        Value::Str(self.name().to_string())
    }
}

impl Deserialize for PlacerKind {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            // Pre-kernel-selection documents have no placer field.
            Value::Null => Ok(PlacerKind::default()),
            Value::Str(name) => PlacerKind::from_name(name)
                .ok_or_else(|| Error::new(format!("unknown placer `{name}`"))),
            other => Err(Error::new(format!(
                "expected placer name, got {}",
                other.kind()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for kind in PlacerKind::ALL {
            assert_eq!(PlacerKind::from_name(kind.name()), Some(kind));
            assert_eq!(kind.placer().kind(), kind);
            assert_eq!(format!("{kind}"), kind.name());
        }
        assert_eq!(PlacerKind::from_name("quantum"), None);
    }

    #[test]
    fn serde_defaults_missing_to_anneal() {
        assert_eq!(
            PlacerKind::from_value(&Value::Null).unwrap(),
            PlacerKind::Anneal
        );
        let json = serde::json::to_string(&PlacerKind::Analytic);
        assert_eq!(json, "\"analytic\"");
        let back: PlacerKind = serde::json::from_str(&json).unwrap();
        assert_eq!(back, PlacerKind::Analytic);
        assert!(serde::json::from_str::<PlacerKind>("\"nope\"").is_err());
    }
}
