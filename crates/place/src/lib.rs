//! # chipforge-place
//!
//! Floorplanning and standard-cell placement.
//!
//! The placer produces a row-legal placement in two stages:
//!
//! 1. **Floorplanning** ([`Floorplan::for_netlist`]) — sizes the die from
//!    total cell area and a utilization target, and lays out cell rows;
//! 2. **Placement** — one of two pluggable kernels behind the [`Placer`]
//!    trait, selected by [`PlacerKind`]:
//!    * `anneal` ([`place`]) — packs cells into rows, then refines with
//!      simulated annealing over cell swaps/moves, minimizing
//!      half-perimeter wirelength (HPWL);
//!    * `analytic` ([`place_analytic`]) — GORDIAN/FastPlace-style
//!      quadratic-wirelength conjugate-gradient solve followed by row
//!      legalization and a deterministic polish (RNG-free, typically
//!      several times faster at comparable HPWL).
//!
//!    Placements are legal by construction (cells are always kept
//!    non-overlapping within rows).
//!
//! I/O ports are distributed along the die boundary; pin positions are
//! approximated by cell centers, which is adequate for the grid-based
//! global router that consumes these placements.
//!
//! ## Example
//!
//! ```
//! use chipforge_hdl::designs;
//! use chipforge_pdk::{LibraryKind, StdCellLibrary, TechnologyNode};
//! use chipforge_synth::{synthesize, SynthOptions};
//! use chipforge_place::{place, PlacementOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let module = designs::counter(8).elaborate()?;
//! let lib = StdCellLibrary::generate(TechnologyNode::N130, LibraryKind::Open);
//! let netlist = synthesize(&module, &lib, &SynthOptions::default())?.netlist;
//! let placement = place(&netlist, &lib, &PlacementOptions::default())?;
//! assert!(placement.hpwl_um() > 0.0);
//! assert!(placement.utilization() <= 0.85);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analytic;
mod anneal;
mod floorplan;
mod kernel;

pub use analytic::place_analytic;
pub use anneal::{place, PlaceError, PlacedCell, Placement, PlacementOptions};
pub use floorplan::Floorplan;
pub use kernel::{AnalyticPlacer, AnnealPlacer, Placer, PlacerKind};
