//! Property tests for the placement kernels.

use chipforge_hdl::designs;
use chipforge_pdk::{LibraryKind, StdCellLibrary, TechnologyNode};
use chipforge_place::{place_analytic, PlacementOptions, PlacerKind};
use chipforge_synth::{synthesize, SynthOptions};
use proptest::prelude::*;

fn lib() -> StdCellLibrary {
    StdCellLibrary::generate(TechnologyNode::N130, LibraryKind::Open)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn analytic_placements_are_legal_across_the_suite(
        design_index in 0usize..17,
        utilization in 0.45f64..0.80,
    ) {
        let lib = lib();
        let suite = designs::suite();
        let design = &suite[design_index % suite.len()];
        let module = design.elaborate().expect("elaborates");
        let netlist = synthesize(&module, &lib, &SynthOptions::default())
            .expect("synthesizes")
            .netlist;
        let placement = place_analytic(
            &netlist,
            &lib,
            &PlacementOptions { utilization, ..PlacementOptions::default() },
        )
        .expect("places");

        // Legality: inside the core, no in-row overlap.
        prop_assert!(placement.is_legal(), "{} illegal", design.name());
        prop_assert_eq!(placement.cells().len(), netlist.cell_count());
        // Every cell's row index matches its y coordinate.
        let fp = placement.floorplan();
        for cell in placement.cells() {
            prop_assert!(cell.row < fp.rows());
            prop_assert!((cell.y_um - fp.row_y_um(cell.row)).abs() < 1e-9);
        }
        // The floorplan was sized for the requested utilization, so the
        // achieved density can never exceed the target.
        prop_assert!(placement.utilization() <= utilization + 1e-9);
    }

    #[test]
    fn every_kernel_is_deterministic_for_a_fixed_seed(
        design_index in 0usize..17,
        seed in any::<u64>(),
    ) {
        let lib = lib();
        let suite = designs::suite();
        let design = &suite[design_index % suite.len()];
        let module = design.elaborate().expect("elaborates");
        let netlist = synthesize(&module, &lib, &SynthOptions::default())
            .expect("synthesizes")
            .netlist;
        let options = PlacementOptions {
            seed,
            moves_per_cell: 10,
            ..PlacementOptions::default()
        };
        for kind in PlacerKind::ALL {
            let a = kind.place(&netlist, &lib, &options).expect("places");
            let b = kind.place(&netlist, &lib, &options).expect("places");
            prop_assert_eq!(a, b, "{} must be deterministic", kind);
        }
    }
}
