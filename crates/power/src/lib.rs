//! # chipforge-power
//!
//! Switching-activity propagation and power estimation.
//!
//! The estimator computes, for every net, a static signal probability and a
//! transition density (toggles per clock cycle), propagating from primary
//! inputs through the combinational network under the usual spatial
//! independence assumption. Transition densities use the Boolean-difference
//! formulation: the output toggles when an input toggles *and* the function
//! is sensitive to that input. Sequential feedback is resolved by fixed-
//! point iteration over the flip-flop boundary.
//!
//! Power combines:
//!
//! * **switching** — `½ · C · V² · f · α` per driven net (cell internal +
//!   wire + sink pin capacitance);
//! * **clock tree** — every flip-flop clock pin toggles twice per cycle;
//! * **leakage** — per-cell static power from the library.
//!
//! ## Example
//!
//! ```
//! use chipforge_hdl::designs;
//! use chipforge_pdk::{LibraryKind, StdCellLibrary, TechnologyNode};
//! use chipforge_synth::{synthesize, SynthOptions};
//! use chipforge_power::{estimate, PowerOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let module = designs::counter(8).elaborate()?;
//! let lib = StdCellLibrary::generate(TechnologyNode::N130, LibraryKind::Open);
//! let netlist = synthesize(&module, &lib, &SynthOptions::default())?.netlist;
//! let report = estimate(&netlist, &lib, &PowerOptions::new(100.0))?;
//! assert!(report.total_uw() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use chipforge_netlist::{CellFunction, NetId, Netlist, NetlistError};
use chipforge_pdk::StdCellLibrary;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Options for [`estimate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerOptions {
    /// Clock frequency in MHz.
    pub clock_mhz: f64,
    /// Static one-probability assumed for primary inputs.
    pub input_probability: f64,
    /// Toggle rate of primary inputs, in transitions per cycle.
    pub input_activity: f64,
    /// Per-net wire capacitance in fF (e.g. from routing back-annotation).
    pub net_wire_cap_ff: HashMap<NetId, f64>,
}

impl PowerOptions {
    /// Creates options for a clock frequency with default activity
    /// (p = 0.5, 0.25 toggles per cycle — uniformly random data every
    /// other cycle).
    #[must_use]
    pub fn new(clock_mhz: f64) -> Self {
        Self {
            clock_mhz,
            input_probability: 0.5,
            input_activity: 0.25,
            net_wire_cap_ff: HashMap::new(),
        }
    }
}

/// Power estimation result. All values in µW.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerReport {
    /// Combinational + register data switching power, µW.
    pub switching_uw: f64,
    /// Clock-tree (flip-flop clock pin) power, µW.
    pub clock_uw: f64,
    /// Static leakage, µW.
    pub leakage_uw: f64,
    /// Per-net toggle rates (transitions per cycle), sorted by net id.
    /// A sorted vec rather than a map so the report serializes
    /// deterministically and roundtrips through JSON (integer map keys
    /// do not survive JSON object keys).
    pub net_activity: Vec<(NetId, f64)>,
}

impl PowerReport {
    /// Total power in µW.
    #[must_use]
    pub fn total_uw(&self) -> f64 {
        self.switching_uw + self.clock_uw + self.leakage_uw
    }

    /// Dynamic (switching + clock) power in µW.
    #[must_use]
    pub fn dynamic_uw(&self) -> f64 {
        self.switching_uw + self.clock_uw
    }
}

/// Errors from power estimation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PowerError {
    /// A cell references a library cell missing from the library.
    UnknownLibCell(String),
    /// The netlist is invalid.
    Netlist(NetlistError),
}

impl fmt::Display for PowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerError::UnknownLibCell(name) => write!(f, "unknown library cell `{name}`"),
            PowerError::Netlist(e) => write!(f, "invalid netlist: {e}"),
        }
    }
}

impl Error for PowerError {}

impl From<NetlistError> for PowerError {
    fn from(e: NetlistError) -> Self {
        PowerError::Netlist(e)
    }
}

/// Static output probability of a function given input one-probabilities,
/// and the per-input Boolean-difference sensitivities.
fn gate_statistics(function: CellFunction, p_in: &[f64]) -> (f64, Vec<f64>) {
    let n = function.input_count();
    debug_assert_eq!(p_in.len(), n);
    let mut p_out = 0.0;
    let mut sensitivity = vec![0.0; n];
    // Enumerate all input patterns (n <= 3).
    for pattern in 0u32..(1 << n) {
        let inputs: Vec<bool> = (0..n).map(|i| (pattern >> i) & 1 == 1).collect();
        let prob: f64 = inputs
            .iter()
            .enumerate()
            .map(|(i, &b)| if b { p_in[i] } else { 1.0 - p_in[i] })
            .product();
        let out = function.eval(&inputs);
        if out {
            p_out += prob;
        }
        // Sensitivity of input i: f flips when i flips, weighted by the
        // probability of the *other* inputs.
        for i in 0..n {
            let mut flipped = inputs.clone();
            flipped[i] = !flipped[i];
            if function.eval(&flipped) != out {
                let others: f64 = inputs
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(j, &b)| if b { p_in[j] } else { 1.0 - p_in[j] })
                    .product();
                // Each pattern counted once per polarity of input i; halve.
                sensitivity[i] += others * 0.5;
            }
        }
    }
    (p_out, sensitivity)
}

/// Estimates power for a mapped netlist.
///
/// # Errors
///
/// Returns [`PowerError::UnknownLibCell`] or [`PowerError::Netlist`].
pub fn estimate(
    netlist: &Netlist,
    lib: &StdCellLibrary,
    options: &PowerOptions,
) -> Result<PowerReport, PowerError> {
    let order = netlist.combinational_order()?;
    let n_nets = netlist.net_count();
    let mut prob = vec![0.5f64; n_nets];
    let mut activity = vec![0.0f64; n_nets];

    for (_, net) in netlist.inputs() {
        prob[net.index()] = options.input_probability;
        activity[net.index()] = options.input_activity;
    }
    // Fixed-point over the sequential boundary.
    for _ in 0..12 {
        // Constants and registers seed the combinational evaluation.
        for cell in netlist.cells() {
            match cell.function() {
                CellFunction::Const0 => {
                    prob[cell.output().index()] = 0.0;
                    activity[cell.output().index()] = 0.0;
                }
                CellFunction::Const1 => {
                    prob[cell.output().index()] = 1.0;
                    activity[cell.output().index()] = 0.0;
                }
                _ => {}
            }
        }
        for &id in &order {
            let cell = netlist.cell(id);
            if cell.function().is_constant() {
                continue;
            }
            let p_in: Vec<f64> = cell.inputs().iter().map(|n| prob[n.index()]).collect();
            let (p_out, sens) = gate_statistics(cell.function(), &p_in);
            let a_out: f64 = cell
                .inputs()
                .iter()
                .zip(sens.iter())
                .map(|(n, s)| activity[n.index()] * s)
                .sum();
            prob[cell.output().index()] = p_out;
            activity[cell.output().index()] = a_out.min(1.0);
        }
        // Registers: sampled D (DFFE: gated by enable probability).
        let mut changed = false;
        for cell in netlist.cells() {
            let (new_p, new_a) = match cell.function() {
                CellFunction::Dff => {
                    let d = cell.inputs()[0];
                    (
                        prob[d.index()],
                        (2.0 * prob[d.index()] * (1.0 - prob[d.index()])).min(1.0),
                    )
                }
                CellFunction::DffEn => {
                    let d = cell.inputs()[0];
                    let en = cell.inputs()[1];
                    let p_en = prob[en.index()];
                    let p_d = prob[d.index()];
                    (
                        p_d * p_en + prob[cell.output().index()] * (1.0 - p_en),
                        (2.0 * p_d * (1.0 - p_d) * p_en).min(1.0),
                    )
                }
                _ => continue,
            };
            let out = cell.output().index();
            if (prob[out] - new_p).abs() > 1e-9 || (activity[out] - new_a).abs() > 1e-9 {
                changed = true;
            }
            prob[out] = new_p;
            activity[out] = new_a;
        }
        if !changed {
            break;
        }
    }

    // --- power accounting ---
    let vdd = lib.node().supply_v();
    let f_hz = options.clock_mhz * 1e6;
    let mut switching_w = 0.0;
    let mut clock_w = 0.0;
    let mut leakage_w = 0.0;
    for cell in netlist.cells() {
        let lib_cell = lib
            .cell(cell.lib_cell())
            .ok_or_else(|| PowerError::UnknownLibCell(cell.lib_cell().to_string()))?;
        leakage_w += lib_cell.leakage_nw() * 1e-9;
        // Load on the output net: sink pins + wire.
        let out = cell.output();
        let mut load_ff = options.net_wire_cap_ff.get(&out).copied().unwrap_or(0.0);
        for &(sink, _) in netlist.net(out).sinks() {
            let sink_cell = netlist.cell(sink);
            let sink_lib = lib
                .cell(sink_cell.lib_cell())
                .ok_or_else(|| PowerError::UnknownLibCell(sink_cell.lib_cell().to_string()))?;
            load_ff += sink_lib.input_cap_ff();
        }
        let internal_ff = lib_cell.input_cap_ff() * 0.5;
        let c_total = (load_ff + internal_ff) * 1e-15;
        switching_w += 0.5 * c_total * vdd * vdd * f_hz * activity[out.index()];
        if cell.is_sequential() {
            // Clock pin: full swing twice per cycle -> alpha = 2 on C_clk.
            let c_clk = lib_cell.input_cap_ff() * 0.4 * 1e-15;
            clock_w += c_clk * vdd * vdd * f_hz;
        }
    }

    let mut net_activity: Vec<(NetId, f64)> = netlist
        .nets()
        .map(|n| (n.id(), activity[n.id().index()]))
        .collect();
    net_activity.sort_by_key(|(id, _)| *id);
    Ok(PowerReport {
        switching_uw: switching_w * 1e6,
        clock_uw: clock_w * 1e6,
        leakage_uw: leakage_w * 1e6,
        net_activity,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipforge_hdl::designs;
    use chipforge_pdk::{LibraryKind, TechnologyNode};
    use chipforge_synth::{synthesize, SynthOptions};

    fn lib() -> StdCellLibrary {
        StdCellLibrary::generate(TechnologyNode::N130, LibraryKind::Open)
    }

    fn netlist_of(design: chipforge_hdl::designs::Design) -> Netlist {
        let module = design.elaborate().unwrap();
        synthesize(&module, &lib(), &SynthOptions::default())
            .unwrap()
            .netlist
    }

    #[test]
    fn gate_statistics_match_theory() {
        // AND of two p=0.5 inputs: p_out = 0.25, sensitivity = p(other=1) = 0.5.
        let (p, s) = gate_statistics(CellFunction::And2, &[0.5, 0.5]);
        assert!((p - 0.25).abs() < 1e-12);
        assert!((s[0] - 0.5).abs() < 1e-12);
        // XOR is always sensitive.
        let (p, s) = gate_statistics(CellFunction::Xor2, &[0.5, 0.5]);
        assert!((p - 0.5).abs() < 1e-12);
        assert!((s[0] - 1.0).abs() < 1e-12);
        // Inverter passes probability through complemented.
        let (p, s) = gate_statistics(CellFunction::Inv, &[0.3]);
        assert!((p - 0.7).abs() < 1e-12);
        assert!((s[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn power_scales_linearly_with_frequency() {
        let netlist = netlist_of(designs::counter(8));
        let lib = lib();
        let p100 = estimate(&netlist, &lib, &PowerOptions::new(100.0)).unwrap();
        let p200 = estimate(&netlist, &lib, &PowerOptions::new(200.0)).unwrap();
        let ratio = p200.dynamic_uw() / p100.dynamic_uw();
        assert!((ratio - 2.0).abs() < 1e-6, "ratio {ratio}");
        assert!(
            (p200.leakage_uw - p100.leakage_uw).abs() < 1e-12,
            "leakage is static"
        );
    }

    #[test]
    fn idle_inputs_reduce_switching() {
        let netlist = netlist_of(designs::alu(8));
        let lib = lib();
        let active = estimate(&netlist, &lib, &PowerOptions::new(100.0)).unwrap();
        let mut idle_opts = PowerOptions::new(100.0);
        idle_opts.input_activity = 0.0;
        let idle = estimate(&netlist, &lib, &idle_opts).unwrap();
        assert!(idle.switching_uw < active.switching_uw * 0.2);
        assert!(
            (idle.clock_uw - active.clock_uw).abs() < 1e-12,
            "clock never gates"
        );
    }

    #[test]
    fn bigger_designs_burn_more_power() {
        let lib = lib();
        let small = estimate(
            &netlist_of(designs::counter(8)),
            &lib,
            &PowerOptions::new(100.0),
        )
        .unwrap();
        let big = estimate(
            &netlist_of(designs::fir4(8)),
            &lib,
            &PowerOptions::new(100.0),
        )
        .unwrap();
        assert!(big.total_uw() > small.total_uw());
    }

    #[test]
    fn leakage_grows_at_advanced_nodes() {
        let module = designs::counter(8).elaborate().unwrap();
        let lib130 = StdCellLibrary::generate(TechnologyNode::N130, LibraryKind::Open);
        let lib28 = StdCellLibrary::generate(TechnologyNode::N28, LibraryKind::Commercial);
        let nl130 = synthesize(&module, &lib130, &SynthOptions::default())
            .unwrap()
            .netlist;
        let nl28 = synthesize(&module, &lib28, &SynthOptions::default())
            .unwrap()
            .netlist;
        let p130 = estimate(&nl130, &lib130, &PowerOptions::new(100.0)).unwrap();
        let p28 = estimate(&nl28, &lib28, &PowerOptions::new(100.0)).unwrap();
        assert!(p28.leakage_uw > p130.leakage_uw * 10.0);
    }

    #[test]
    fn wire_caps_increase_switching_power() {
        let netlist = netlist_of(designs::counter(8));
        let lib = lib();
        let base = estimate(&netlist, &lib, &PowerOptions::new(100.0)).unwrap();
        let mut opts = PowerOptions::new(100.0);
        for net in netlist.nets() {
            opts.net_wire_cap_ff.insert(net.id(), 20.0);
        }
        let loaded = estimate(&netlist, &lib, &opts).unwrap();
        assert!(loaded.switching_uw > base.switching_uw);
    }

    #[test]
    fn activities_are_bounded() {
        let netlist = netlist_of(designs::fir4(8));
        let lib = lib();
        let report = estimate(&netlist, &lib, &PowerOptions::new(100.0)).unwrap();
        for (_, a) in &report.net_activity {
            assert!((0.0..=1.0).contains(a), "activity {a}");
        }
    }
}
