//! Property tests for the power estimator.

use chipforge_hdl::designs;
use chipforge_netlist::Netlist;
use chipforge_pdk::{LibraryKind, StdCellLibrary, TechnologyNode};
use chipforge_power::{estimate, PowerOptions};
use chipforge_synth::{synthesize, SynthOptions};
use proptest::prelude::*;

fn lib() -> StdCellLibrary {
    StdCellLibrary::generate(TechnologyNode::N130, LibraryKind::Open)
}

fn suite_netlist(index: usize) -> Netlist {
    let suite = designs::suite();
    let design = &suite[index % suite.len()];
    let module = design.elaborate().expect("elaborates");
    synthesize(&module, &lib(), &SynthOptions::default())
        .expect("synthesizes")
        .netlist
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dynamic_power_is_linear_in_frequency(
        index in 0usize..17,
        f1 in 10.0f64..500.0,
        scale in 1.1f64..8.0,
    ) {
        let netlist = suite_netlist(index);
        let lib = lib();
        let p1 = estimate(&netlist, &lib, &PowerOptions::new(f1)).expect("estimates");
        let p2 = estimate(&netlist, &lib, &PowerOptions::new(f1 * scale)).expect("estimates");
        let ratio = p2.dynamic_uw() / p1.dynamic_uw();
        prop_assert!((ratio - scale).abs() < 1e-6, "ratio {ratio} vs scale {scale}");
        prop_assert!((p1.leakage_uw - p2.leakage_uw).abs() < 1e-12);
    }

    #[test]
    fn higher_input_activity_never_reduces_switching(
        index in 0usize..17,
        low in 0.0f64..0.4,
        extra in 0.05f64..0.5,
    ) {
        let netlist = suite_netlist(index);
        let lib = lib();
        let mut opts_low = PowerOptions::new(100.0);
        opts_low.input_activity = low;
        let mut opts_high = PowerOptions::new(100.0);
        opts_high.input_activity = low + extra;
        let p_low = estimate(&netlist, &lib, &opts_low).expect("estimates");
        let p_high = estimate(&netlist, &lib, &opts_high).expect("estimates");
        prop_assert!(p_high.switching_uw >= p_low.switching_uw - 1e-12);
    }

    #[test]
    fn probabilities_and_activities_stay_bounded(
        index in 0usize..17,
        prob in 0.0f64..1.0,
        act in 0.0f64..1.0,
    ) {
        let netlist = suite_netlist(index);
        let lib = lib();
        let mut opts = PowerOptions::new(100.0);
        opts.input_probability = prob;
        opts.input_activity = act;
        let report = estimate(&netlist, &lib, &opts).expect("estimates");
        for (_, a) in &report.net_activity {
            prop_assert!((0.0..=1.0).contains(a), "activity {a}");
        }
        prop_assert!(report.switching_uw >= 0.0);
        prop_assert!(report.clock_uw >= 0.0);
        prop_assert!(report.leakage_uw > 0.0);
    }
}
