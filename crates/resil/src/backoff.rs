//! Bounded exponential backoff with deterministic jitter.

use crate::{fnv64, hash_fraction};
use std::time::Duration;

/// Retry delay schedule: exponential growth from `base`, clamped to
/// `max`, jittered into `[0.5, 1.0)` of the clamped delay.
///
/// The jitter is a pure hash of `(seed, key, attempt)` — retries of the
/// same job are spread out the same way on every run, and concurrent
/// retries of *different* jobs never stampede in lockstep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// Delay before the first retry.
    pub base: Duration,
    /// Hard ceiling on any single delay.
    pub max: Duration,
    /// Jitter seed.
    pub seed: u64,
}

impl Backoff {
    /// The delay to sleep before retrying `key` after `attempt` failed
    /// attempts (1-based).
    #[must_use]
    pub fn delay(&self, key: &str, attempt: u32) -> Duration {
        if self.base.is_zero() || self.max.is_zero() {
            return Duration::ZERO;
        }
        let exponent = attempt.saturating_sub(1).min(32);
        let raw_ms = self.base.as_secs_f64() * 1_000.0 * 2f64.powi(exponent as i32);
        let capped_ms = raw_ms.min(self.max.as_secs_f64() * 1_000.0);
        let mut bytes = Vec::with_capacity(key.len() + 12);
        bytes.extend_from_slice(&self.seed.to_le_bytes());
        bytes.extend_from_slice(key.as_bytes());
        bytes.extend_from_slice(&attempt.to_le_bytes());
        let jitter = 0.5 + 0.5 * hash_fraction(fnv64(&bytes));
        Duration::from_secs_f64(capped_ms * jitter / 1_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backoff() -> Backoff {
        Backoff {
            base: Duration::from_millis(25),
            max: Duration::from_millis(400),
            seed: 7,
        }
    }

    #[test]
    fn delays_are_deterministic() {
        for attempt in 1..=10 {
            assert_eq!(
                backoff().delay("job", attempt),
                backoff().delay("job", attempt)
            );
        }
    }

    #[test]
    fn delays_never_exceed_the_cap() {
        let b = backoff();
        for attempt in 1..=64 {
            assert!(b.delay("job", attempt) <= b.max, "attempt {attempt}");
        }
    }

    #[test]
    fn early_delays_grow_roughly_exponentially() {
        let b = backoff();
        // Jitter is in [0.5, 1.0) of the clamped delay, so attempt n+2
        // always outgrows attempt n even in the worst jitter case.
        for attempt in 1..=3 {
            assert!(b.delay("job", attempt + 2) > b.delay("job", attempt));
        }
        assert!(b.delay("job", 1) >= b.base / 2);
    }

    #[test]
    fn different_keys_get_different_jitter() {
        let b = backoff();
        let spread: std::collections::HashSet<Duration> =
            (0..16).map(|i| b.delay(&format!("job-{i}"), 1)).collect();
        assert!(spread.len() > 8, "jitter must spread retries out");
    }

    #[test]
    fn zero_base_means_no_sleep() {
        let b = Backoff {
            base: Duration::ZERO,
            max: Duration::from_secs(1),
            seed: 0,
        };
        assert_eq!(b.delay("job", 5), Duration::ZERO);
    }

    #[test]
    fn huge_attempt_counts_do_not_overflow() {
        let b = backoff();
        assert!(b.delay("job", u32::MAX) <= b.max);
    }
}
