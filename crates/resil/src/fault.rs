//! The deterministic fault-injection plane.
//!
//! A [`FaultPlan`] decides, for every `(job key, attempt)` pair, whether
//! an attempt is disrupted and how. Decisions are pure hashes of the
//! plan seed and the fault site — there is no RNG state to advance, so
//! the same plan fires the same faults regardless of worker count,
//! scheduling order, or whether the batch was interrupted and resumed.

use crate::{fnv64, hash_fraction};
use chipforge_flow::FlowStep;
use serde::{Deserialize, Serialize};

/// Flow stages a transient fault can fire at, in the plan's historical
/// pick order (the order is part of the seeded-determinism contract:
/// `FaultPlan::disruption` indexes into it by hash).
pub const TRANSIENT_STAGES: [FlowStep; 4] = [
    FlowStep::Synthesize,
    FlowStep::Place,
    FlowStep::ClockTree,
    FlowStep::Route,
];

/// Stages whose transient failures can be absorbed by a degraded retry
/// with relaxed parameters (lower utilization, reduced effort): routing
/// and clock-tree synthesis, the classic congestion-sensitive stages.
pub const DEGRADABLE_STAGES: [FlowStep; 2] = [FlowStep::ClockTree, FlowStep::Route];

/// Whether a transiently-failed stage qualifies for a degraded retry.
#[must_use]
pub fn is_degradable_stage(stage: FlowStep) -> bool {
    DEGRADABLE_STAGES.contains(&stage)
}

/// A fault injected into one specific job's execution path.
///
/// Faults model the failure modes a shared batch service must absorb —
/// a flow crash, a wedged tool, a flaky stage — and let tests (and
/// manifest authors) exercise the engine's isolation without a genuinely
/// broken design. Faults fire only when the job actually executes; a
/// cache hit serves the stored artifact without entering the execution
/// path. For *plan-wide* seeded injection across a whole batch, use
/// [`FaultPlan`] instead.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fault {
    /// No fault: run the flow normally.
    #[default]
    None,
    /// Panic inside the job (exercises `catch_unwind` isolation).
    Panic,
    /// Sleep this many milliseconds before running (exercises timeouts).
    Hang(u64),
    /// Fail the first `n` attempts with a transient route-stage error
    /// (exercises retry, degradation and quarantine paths).
    Transient(u32),
}

impl Fault {
    /// Folds this spec-level fault into an attempt's disruption.
    pub fn apply(&self, disruption: &mut Disruption, attempt: u32) {
        match *self {
            Fault::None => {}
            Fault::Panic => disruption.panic = true,
            Fault::Hang(ms) => {
                disruption.slow_ms = Some(disruption.slow_ms.map_or(ms, |s| s.max(ms)));
            }
            Fault::Transient(n) => {
                if attempt <= n && disruption.transient_stage.is_none() {
                    disruption.transient_stage = Some(FlowStep::Route);
                }
            }
        }
    }
}

/// Everything that disrupts one execution attempt.
///
/// Combined from the batch-wide [`FaultPlan`] and the job's own
/// [`Fault`]; consumed by the engine just before the flow runs.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Disruption {
    /// Sleep this long before running (slow-down / hang).
    pub slow_ms: Option<u64>,
    /// Panic inside the attempt thread.
    pub panic: bool,
    /// Fail with a transient error at this stage instead of running.
    pub transient_stage: Option<FlowStep>,
}

impl Disruption {
    /// A disruption that does nothing.
    #[must_use]
    pub fn none() -> Self {
        Disruption::default()
    }

    /// Whether this disruption leaves the attempt untouched.
    #[must_use]
    pub fn is_none(&self) -> bool {
        *self == Disruption::default()
    }
}

/// A seeded, deterministic fault-injection plan for a whole batch.
///
/// Each rate is the probability that the corresponding fault fires for
/// a given `(job key, attempt)`; the decision is a pure hash, so two
/// jobs with identical content (same cache key) are disrupted
/// identically — the property that makes interrupted-and-resumed runs
/// reproduce uninterrupted ones.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Plan seed: same seed, same faults.
    pub seed: u64,
    /// Probability of a transient stage error per attempt.
    pub transient_rate: f64,
    /// Probability of a worker panic per attempt.
    pub panic_rate: f64,
    /// Probability of a slow-down per attempt.
    pub slow_rate: f64,
    /// Slow-down duration when one fires, in milliseconds.
    pub slow_ms: u64,
    /// Probability that a freshly cached artifact is corrupted in place.
    pub corrupt_rate: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::disabled()
    }
}

impl FaultPlan {
    /// A plan that never fires anything.
    #[must_use]
    pub fn disabled() -> Self {
        FaultPlan {
            seed: 0,
            transient_rate: 0.0,
            panic_rate: 0.0,
            slow_rate: 0.0,
            slow_ms: 0,
            corrupt_rate: 0.0,
        }
    }

    /// A plan firing transient stage errors at `rate` per attempt.
    #[must_use]
    pub fn transient(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            transient_rate: rate.clamp(0.0, 1.0),
            ..FaultPlan::disabled()
        }
    }

    /// Adds worker panics at `rate` per attempt.
    #[must_use]
    pub fn with_panic_rate(mut self, rate: f64) -> Self {
        self.panic_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Adds `slow_ms`-millisecond slow-downs at `rate` per attempt.
    #[must_use]
    pub fn with_slowdowns(mut self, rate: f64, slow_ms: u64) -> Self {
        self.slow_rate = rate.clamp(0.0, 1.0);
        self.slow_ms = slow_ms;
        self
    }

    /// Adds cache corruption at `rate` per cached artifact.
    #[must_use]
    pub fn with_corrupt_rate(mut self, rate: f64) -> Self {
        self.corrupt_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Whether any fault can ever fire.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.transient_rate > 0.0
            || self.panic_rate > 0.0
            || self.slow_rate > 0.0
            || self.corrupt_rate > 0.0
    }

    fn roll(&self, site: &str, key: &str, attempt: u32) -> f64 {
        hash_fraction(self.hash(site, key, attempt))
    }

    fn hash(&self, site: &str, key: &str, attempt: u32) -> u64 {
        let mut bytes = Vec::with_capacity(site.len() + key.len() + 16);
        bytes.extend_from_slice(&self.seed.to_le_bytes());
        bytes.extend_from_slice(site.as_bytes());
        bytes.push(0);
        bytes.extend_from_slice(key.as_bytes());
        bytes.extend_from_slice(&attempt.to_le_bytes());
        fnv64(&bytes)
    }

    /// The disruption this plan injects into `(key, attempt)`.
    #[must_use]
    pub fn disruption(&self, key: &str, attempt: u32) -> Disruption {
        let mut disruption = Disruption::none();
        if !self.is_active() {
            return disruption;
        }
        if self.slow_rate > 0.0 && self.roll("slow", key, attempt) < self.slow_rate {
            disruption.slow_ms = Some(self.slow_ms);
        }
        if self.panic_rate > 0.0 && self.roll("panic", key, attempt) < self.panic_rate {
            disruption.panic = true;
        }
        if self.transient_rate > 0.0 && self.roll("transient", key, attempt) < self.transient_rate {
            let pick = self.hash("stage", key, attempt) as usize % TRANSIENT_STAGES.len();
            disruption.transient_stage = Some(TRANSIENT_STAGES[pick]);
        }
        disruption
    }

    /// Whether (and how) to corrupt the freshly cached artifact for
    /// `key`: `(byte offset seed, nonzero xor mask)`.
    #[must_use]
    pub fn corrupt_artifact(&self, key: &str) -> Option<(u64, u8)> {
        if self.corrupt_rate > 0.0 && self.roll("corrupt", key, 0) < self.corrupt_rate {
            let h = self.hash("corrupt-site", key, 0);
            // The mask must be nonzero or the "corruption" is a no-op.
            let xor = ((h >> 8) as u8) | 1;
            Some((h, xor))
        } else {
            None
        }
    }
}

/// A seeded server outage/repair process for the cloud DES.
///
/// Uptime and repair intervals are exponentially distributed with the
/// given means; samples are pure hashes of `(seed, server, episode)`,
/// so a simulation replays identically for the same plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OutagePlan {
    /// Plan seed.
    pub seed: u64,
    /// Mean hours a server stays up before failing.
    pub mean_uptime_h: f64,
    /// Mean hours a failed server takes to repair.
    pub mean_repair_h: f64,
}

impl OutagePlan {
    /// A plan with the given seed and mean up/repair intervals.
    #[must_use]
    pub fn new(seed: u64, mean_uptime_h: f64, mean_repair_h: f64) -> Self {
        OutagePlan {
            seed,
            mean_uptime_h: mean_uptime_h.max(1e-6),
            mean_repair_h: mean_repair_h.max(1e-6),
        }
    }

    /// Hours server `server` stays up in its `episode`-th up period.
    #[must_use]
    pub fn uptime_h(&self, server: usize, episode: u64) -> f64 {
        self.exponential("uptime", server, episode, self.mean_uptime_h)
    }

    /// Hours server `server` takes to repair after its `episode`-th failure.
    #[must_use]
    pub fn repair_h(&self, server: usize, episode: u64) -> f64 {
        self.exponential("repair", server, episode, self.mean_repair_h)
    }

    fn exponential(&self, site: &str, server: usize, episode: u64, mean: f64) -> f64 {
        let mut bytes = Vec::with_capacity(site.len() + 24);
        bytes.extend_from_slice(&self.seed.to_le_bytes());
        bytes.extend_from_slice(site.as_bytes());
        bytes.extend_from_slice(&(server as u64).to_le_bytes());
        bytes.extend_from_slice(&episode.to_le_bytes());
        let u = hash_fraction(fnv64(&bytes)).max(1e-12);
        -mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_disrupts() {
        let plan = FaultPlan::disabled();
        for attempt in 1..=5 {
            assert!(plan.disruption("somekey", attempt).is_none());
        }
        assert!(plan.corrupt_artifact("somekey").is_none());
        assert!(!plan.is_active());
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::transient(7, 0.5);
        let b = FaultPlan::transient(8, 0.5);
        let mut diverged = false;
        for i in 0..64 {
            let key = format!("key-{i}");
            assert_eq!(a.disruption(&key, 1), a.disruption(&key, 1), "replays");
            if a.disruption(&key, 1) != b.disruption(&key, 1) {
                diverged = true;
            }
        }
        assert!(diverged, "different seeds must fire different faults");
    }

    #[test]
    fn transient_rate_is_roughly_respected() {
        let plan = FaultPlan::transient(42, 0.2);
        let fired = (0..1000)
            .filter(|i| {
                plan.disruption(&format!("job-{i}"), 1)
                    .transient_stage
                    .is_some()
            })
            .count();
        assert!(
            (120..=280).contains(&fired),
            "20% rate fired {fired}/1000 times"
        );
    }

    #[test]
    fn full_rate_always_fires_a_known_stage() {
        let plan = FaultPlan::transient(1, 1.0);
        for i in 0..32 {
            let stage = plan
                .disruption(&format!("k{i}"), 1)
                .transient_stage
                .expect("rate 1.0 always fires");
            assert!(TRANSIENT_STAGES.contains(&stage));
        }
    }

    #[test]
    fn spec_faults_fold_into_disruptions() {
        let mut d = Disruption::none();
        Fault::Panic.apply(&mut d, 1);
        assert!(d.panic);
        let mut d = Disruption::none();
        Fault::Hang(50).apply(&mut d, 1);
        assert_eq!(d.slow_ms, Some(50));
        let mut d = Disruption::none();
        Fault::Transient(2).apply(&mut d, 2);
        assert_eq!(d.transient_stage, Some(FlowStep::Route));
        let mut d = Disruption::none();
        Fault::Transient(2).apply(&mut d, 3);
        assert!(d.transient_stage.is_none(), "third attempt succeeds");
    }

    #[test]
    fn corruption_mask_is_never_zero() {
        let plan = FaultPlan::disabled().with_corrupt_rate(1.0);
        for i in 0..64 {
            let (_, xor) = plan
                .corrupt_artifact(&format!("k{i}"))
                .expect("rate 1.0 always corrupts");
            assert_ne!(xor, 0);
        }
    }

    #[test]
    fn degradable_stages_are_route_and_cts() {
        assert!(is_degradable_stage(FlowStep::Route));
        assert!(is_degradable_stage(FlowStep::ClockTree));
        assert!(!is_degradable_stage(FlowStep::Synthesize));
        assert!(!is_degradable_stage(FlowStep::Place));
    }

    #[test]
    fn outage_plan_samples_are_deterministic_and_positive() {
        let plan = OutagePlan::new(3, 200.0, 24.0);
        assert_eq!(plan.uptime_h(0, 0), plan.uptime_h(0, 0));
        assert_ne!(plan.uptime_h(0, 0), plan.uptime_h(1, 0));
        assert_ne!(plan.uptime_h(0, 0), plan.uptime_h(0, 1));
        for s in 0..4 {
            for e in 0..4 {
                assert!(plan.uptime_h(s, e) > 0.0);
                assert!(plan.repair_h(s, e) > 0.0);
            }
        }
        let mean: f64 = (0..500).map(|e| plan.uptime_h(0, e)).sum::<f64>() / 500.0;
        assert!((100.0..400.0).contains(&mean), "sample mean {mean}");
    }

    #[test]
    fn fault_round_trips_through_json() {
        for fault in [
            Fault::None,
            Fault::Panic,
            Fault::Hang(9),
            Fault::Transient(3),
        ] {
            let json = serde::json::to_string(&fault);
            let parsed: Fault = serde::json::from_str(&json).expect("round trips");
            assert_eq!(parsed, fault);
        }
    }
}
