//! The deterministic fault-injection plane.
//!
//! A [`FaultPlan`] decides, for every `(job key, attempt)` pair, whether
//! an attempt is disrupted and how. Decisions are pure hashes of the
//! plan seed and the fault site — there is no RNG state to advance, so
//! the same plan fires the same faults regardless of worker count,
//! scheduling order, or whether the batch was interrupted and resumed.

use crate::{fnv64, hash_fraction};
use chipforge_flow::FlowStep;
use serde::{Deserialize, Serialize};

/// Flow stages a transient fault can fire at, in the plan's historical
/// pick order (the order is part of the seeded-determinism contract:
/// `FaultPlan::disruption` indexes into it by hash).
pub const TRANSIENT_STAGES: [FlowStep; 4] = [
    FlowStep::Synthesize,
    FlowStep::Place,
    FlowStep::ClockTree,
    FlowStep::Route,
];

/// Stages whose transient failures can be absorbed by a degraded retry
/// with relaxed parameters (lower utilization, reduced effort): routing
/// and clock-tree synthesis, the classic congestion-sensitive stages.
pub const DEGRADABLE_STAGES: [FlowStep; 2] = [FlowStep::ClockTree, FlowStep::Route];

/// Whether a transiently-failed stage qualifies for a degraded retry.
#[must_use]
pub fn is_degradable_stage(stage: FlowStep) -> bool {
    DEGRADABLE_STAGES.contains(&stage)
}

/// A fault injected into one specific job's execution path.
///
/// Faults model the failure modes a shared batch service must absorb —
/// a flow crash, a wedged tool, a flaky stage — and let tests (and
/// manifest authors) exercise the engine's isolation without a genuinely
/// broken design. Faults fire only when the job actually executes; a
/// cache hit serves the stored artifact without entering the execution
/// path. For *plan-wide* seeded injection across a whole batch, use
/// [`FaultPlan`] instead.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fault {
    /// No fault: run the flow normally.
    #[default]
    None,
    /// Panic inside the job (exercises `catch_unwind` isolation).
    Panic,
    /// Sleep this many milliseconds before running (exercises timeouts).
    Hang(u64),
    /// Fail the first `n` attempts with a transient route-stage error
    /// (exercises retry, degradation and quarantine paths).
    Transient(u32),
}

impl Fault {
    /// Folds this spec-level fault into an attempt's disruption.
    pub fn apply(&self, disruption: &mut Disruption, attempt: u32) {
        match *self {
            Fault::None => {}
            Fault::Panic => disruption.panic = true,
            Fault::Hang(ms) => {
                disruption.slow_ms = Some(disruption.slow_ms.map_or(ms, |s| s.max(ms)));
            }
            Fault::Transient(n) => {
                if attempt <= n && disruption.transient_stage.is_none() {
                    disruption.transient_stage = Some(FlowStep::Route);
                }
            }
        }
    }
}

/// Everything that disrupts one execution attempt.
///
/// Combined from the batch-wide [`FaultPlan`] and the job's own
/// [`Fault`]; consumed by the engine just before the flow runs.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Disruption {
    /// Sleep this long before running (slow-down / hang).
    pub slow_ms: Option<u64>,
    /// Panic inside the attempt thread.
    pub panic: bool,
    /// Fail with a transient error at this stage instead of running.
    pub transient_stage: Option<FlowStep>,
}

impl Disruption {
    /// A disruption that does nothing.
    #[must_use]
    pub fn none() -> Self {
        Disruption::default()
    }

    /// Whether this disruption leaves the attempt untouched.
    #[must_use]
    pub fn is_none(&self) -> bool {
        *self == Disruption::default()
    }
}

/// A seeded, deterministic fault-injection plan for a whole batch.
///
/// Each rate is the probability that the corresponding fault fires for
/// a given `(job key, attempt)`; the decision is a pure hash, so two
/// jobs with identical content (same cache key) are disrupted
/// identically — the property that makes interrupted-and-resumed runs
/// reproduce uninterrupted ones.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Plan seed: same seed, same faults.
    pub seed: u64,
    /// Probability of a transient stage error per attempt.
    pub transient_rate: f64,
    /// Probability of a worker panic per attempt.
    pub panic_rate: f64,
    /// Probability of a slow-down per attempt.
    pub slow_rate: f64,
    /// Slow-down duration when one fires, in milliseconds.
    pub slow_ms: u64,
    /// Probability that a freshly cached artifact is corrupted in place.
    pub corrupt_rate: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::disabled()
    }
}

impl FaultPlan {
    /// A plan that never fires anything.
    #[must_use]
    pub fn disabled() -> Self {
        FaultPlan {
            seed: 0,
            transient_rate: 0.0,
            panic_rate: 0.0,
            slow_rate: 0.0,
            slow_ms: 0,
            corrupt_rate: 0.0,
        }
    }

    /// A plan firing transient stage errors at `rate` per attempt.
    #[must_use]
    pub fn transient(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            transient_rate: rate.clamp(0.0, 1.0),
            ..FaultPlan::disabled()
        }
    }

    /// Adds worker panics at `rate` per attempt.
    #[must_use]
    pub fn with_panic_rate(mut self, rate: f64) -> Self {
        self.panic_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Adds `slow_ms`-millisecond slow-downs at `rate` per attempt.
    #[must_use]
    pub fn with_slowdowns(mut self, rate: f64, slow_ms: u64) -> Self {
        self.slow_rate = rate.clamp(0.0, 1.0);
        self.slow_ms = slow_ms;
        self
    }

    /// Adds cache corruption at `rate` per cached artifact.
    #[must_use]
    pub fn with_corrupt_rate(mut self, rate: f64) -> Self {
        self.corrupt_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Whether any fault can ever fire.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.transient_rate > 0.0
            || self.panic_rate > 0.0
            || self.slow_rate > 0.0
            || self.corrupt_rate > 0.0
    }

    fn roll(&self, site: &str, key: &str, attempt: u32) -> f64 {
        hash_fraction(self.hash(site, key, attempt))
    }

    fn hash(&self, site: &str, key: &str, attempt: u32) -> u64 {
        let mut bytes = Vec::with_capacity(site.len() + key.len() + 16);
        bytes.extend_from_slice(&self.seed.to_le_bytes());
        bytes.extend_from_slice(site.as_bytes());
        bytes.push(0);
        bytes.extend_from_slice(key.as_bytes());
        bytes.extend_from_slice(&attempt.to_le_bytes());
        fnv64(&bytes)
    }

    /// The disruption this plan injects into `(key, attempt)`.
    #[must_use]
    pub fn disruption(&self, key: &str, attempt: u32) -> Disruption {
        let mut disruption = Disruption::none();
        if !self.is_active() {
            return disruption;
        }
        if self.slow_rate > 0.0 && self.roll("slow", key, attempt) < self.slow_rate {
            disruption.slow_ms = Some(self.slow_ms);
        }
        if self.panic_rate > 0.0 && self.roll("panic", key, attempt) < self.panic_rate {
            disruption.panic = true;
        }
        if self.transient_rate > 0.0 && self.roll("transient", key, attempt) < self.transient_rate {
            let pick = self.hash("stage", key, attempt) as usize % TRANSIENT_STAGES.len();
            disruption.transient_stage = Some(TRANSIENT_STAGES[pick]);
        }
        disruption
    }

    /// Whether (and how) to corrupt the freshly cached artifact for
    /// `key`: `(byte offset seed, nonzero xor mask)`.
    #[must_use]
    pub fn corrupt_artifact(&self, key: &str) -> Option<(u64, u8)> {
        if self.corrupt_rate > 0.0 && self.roll("corrupt", key, 0) < self.corrupt_rate {
            let h = self.hash("corrupt-site", key, 0);
            // The mask must be nonzero or the "corruption" is a no-op.
            let xor = ((h >> 8) as u8) | 1;
            Some((h, xor))
        } else {
            None
        }
    }
}

/// What a [`ShardFaultPlan`] injects into one engine shard.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub enum ShardFault {
    /// The shard runs normally.
    #[default]
    None,
    /// Every worker of the shard panics at its next job claim — the
    /// in-process stand-in for a crashed shard process.
    Kill,
    /// The shard's workers go silent: they stop heartbeating and stop
    /// claiming work without exiting — a hung tool, not a dead one.
    Wedge,
    /// Every job claim on the shard is delayed by this many
    /// milliseconds — a grey failure the fabric should route around by
    /// work stealing, not by quarantine.
    Slow(u64),
}

/// A seeded, deterministic fault plan for the engine's *shard fabric*
/// (as opposed to [`FaultPlan`], which disrupts individual jobs).
///
/// Each rate is the probability that the corresponding fault fires for
/// a given shard; the decision is a pure hash of `(seed, site, shard)`,
/// so the same plan kills the same shards regardless of worker count or
/// scheduling. Kill and wedge fire once per shard per batch, after the
/// shard has claimed [`after_jobs`](Self::after_jobs) jobs; a restarted
/// shard runs clean. Precedence when several rates fire for one shard:
/// kill over wedge over slow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardFaultPlan {
    /// Plan seed: same seed, same shard faults.
    pub seed: u64,
    /// Probability a shard is killed (panicking workers).
    pub kill_rate: f64,
    /// Probability a shard wedges (stops heartbeating).
    pub wedge_rate: f64,
    /// Probability a shard runs slow.
    pub slow_rate: f64,
    /// Per-claim delay on a slow shard, in milliseconds.
    pub slow_ms: u64,
    /// Jobs a shard claims before its kill/wedge fires: "panic at job
    /// k" with k = `after_jobs`, counting from zero.
    pub after_jobs: u64,
}

impl Default for ShardFaultPlan {
    fn default() -> Self {
        ShardFaultPlan::disabled()
    }
}

impl ShardFaultPlan {
    /// A plan that never touches any shard.
    #[must_use]
    pub fn disabled() -> Self {
        ShardFaultPlan {
            seed: 0,
            kill_rate: 0.0,
            wedge_rate: 0.0,
            slow_rate: 0.0,
            slow_ms: 0,
            after_jobs: 1,
        }
    }

    /// A plan killing shards at `rate`.
    #[must_use]
    pub fn kill(seed: u64, rate: f64) -> Self {
        ShardFaultPlan {
            seed,
            kill_rate: rate.clamp(0.0, 1.0),
            ..ShardFaultPlan::disabled()
        }
    }

    /// Adds wedged (silent, non-heartbeating) shards at `rate`.
    #[must_use]
    pub fn with_wedge_rate(mut self, rate: f64) -> Self {
        self.wedge_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Adds `slow_ms`-per-claim slow shards at `rate`.
    #[must_use]
    pub fn with_slow(mut self, rate: f64, slow_ms: u64) -> Self {
        self.slow_rate = rate.clamp(0.0, 1.0);
        self.slow_ms = slow_ms;
        self
    }

    /// Sets how many jobs a shard claims before its kill/wedge fires.
    #[must_use]
    pub fn with_after_jobs(mut self, after_jobs: u64) -> Self {
        self.after_jobs = after_jobs;
        self
    }

    /// Whether any shard fault can ever fire.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.kill_rate > 0.0 || self.wedge_rate > 0.0 || self.slow_rate > 0.0
    }

    fn roll(&self, site: &str, shard: usize) -> f64 {
        let mut bytes = Vec::with_capacity(site.len() + 17);
        bytes.extend_from_slice(&self.seed.to_le_bytes());
        bytes.extend_from_slice(site.as_bytes());
        bytes.push(0);
        bytes.extend_from_slice(&(shard as u64).to_le_bytes());
        hash_fraction(fnv64(&bytes))
    }

    /// The fault this plan injects into `shard`.
    #[must_use]
    pub fn fault_for(&self, shard: usize) -> ShardFault {
        if !self.is_active() {
            return ShardFault::None;
        }
        if self.kill_rate > 0.0 && self.roll("shard-kill", shard) < self.kill_rate {
            return ShardFault::Kill;
        }
        if self.wedge_rate > 0.0 && self.roll("shard-wedge", shard) < self.wedge_rate {
            return ShardFault::Wedge;
        }
        if self.slow_rate > 0.0 && self.roll("shard-slow", shard) < self.slow_rate {
            return ShardFault::Slow(self.slow_ms);
        }
        ShardFault::None
    }
}

/// A seeded server outage/repair process for the cloud DES.
///
/// Uptime and repair intervals are exponentially distributed with the
/// given means; samples are pure hashes of `(seed, server, episode)`,
/// so a simulation replays identically for the same plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OutagePlan {
    /// Plan seed.
    pub seed: u64,
    /// Mean hours a server stays up before failing.
    pub mean_uptime_h: f64,
    /// Mean hours a failed server takes to repair.
    pub mean_repair_h: f64,
}

impl OutagePlan {
    /// A plan with the given seed and mean up/repair intervals.
    #[must_use]
    pub fn new(seed: u64, mean_uptime_h: f64, mean_repair_h: f64) -> Self {
        OutagePlan {
            seed,
            mean_uptime_h: mean_uptime_h.max(1e-6),
            mean_repair_h: mean_repair_h.max(1e-6),
        }
    }

    /// Hours server `server` stays up in its `episode`-th up period.
    #[must_use]
    pub fn uptime_h(&self, server: usize, episode: u64) -> f64 {
        self.exponential("uptime", server, episode, self.mean_uptime_h)
    }

    /// Hours server `server` takes to repair after its `episode`-th failure.
    #[must_use]
    pub fn repair_h(&self, server: usize, episode: u64) -> f64 {
        self.exponential("repair", server, episode, self.mean_repair_h)
    }

    fn exponential(&self, site: &str, server: usize, episode: u64, mean: f64) -> f64 {
        let mut bytes = Vec::with_capacity(site.len() + 24);
        bytes.extend_from_slice(&self.seed.to_le_bytes());
        bytes.extend_from_slice(site.as_bytes());
        bytes.extend_from_slice(&(server as u64).to_le_bytes());
        bytes.extend_from_slice(&episode.to_le_bytes());
        let u = hash_fraction(fnv64(&bytes)).max(1e-12);
        -mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_plan_is_deterministic_and_seed_sensitive() {
        let a = ShardFaultPlan::kill(7, 0.5)
            .with_wedge_rate(0.3)
            .with_slow(0.4, 20);
        let b = ShardFaultPlan::kill(8, 0.5)
            .with_wedge_rate(0.3)
            .with_slow(0.4, 20);
        let mut diverged = false;
        for shard in 0..64 {
            assert_eq!(a.fault_for(shard), a.fault_for(shard), "replays");
            if a.fault_for(shard) != b.fault_for(shard) {
                diverged = true;
            }
        }
        assert!(diverged, "different seeds must fault different shards");
    }

    #[test]
    fn disabled_shard_plan_never_faults() {
        let plan = ShardFaultPlan::disabled();
        assert!(!plan.is_active());
        for shard in 0..32 {
            assert_eq!(plan.fault_for(shard), ShardFault::None);
        }
    }

    #[test]
    fn shard_kill_rate_one_kills_every_shard() {
        let plan = ShardFaultPlan::kill(3, 1.0).with_slow(1.0, 5);
        for shard in 0..16 {
            assert_eq!(
                plan.fault_for(shard),
                ShardFault::Kill,
                "kill takes precedence"
            );
        }
        let slow_only = ShardFaultPlan::disabled().with_slow(1.0, 5);
        for shard in 0..16 {
            assert_eq!(slow_only.fault_for(shard), ShardFault::Slow(5));
        }
    }

    #[test]
    fn shard_rates_are_roughly_respected() {
        let plan = ShardFaultPlan::kill(42, 0.25);
        let kills = (0..400)
            .filter(|&s| plan.fault_for(s) == ShardFault::Kill)
            .count();
        assert!(
            (60..=140).contains(&kills),
            "got {kills} kills at rate 0.25"
        );
    }

    #[test]
    fn disabled_plan_never_disrupts() {
        let plan = FaultPlan::disabled();
        for attempt in 1..=5 {
            assert!(plan.disruption("somekey", attempt).is_none());
        }
        assert!(plan.corrupt_artifact("somekey").is_none());
        assert!(!plan.is_active());
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::transient(7, 0.5);
        let b = FaultPlan::transient(8, 0.5);
        let mut diverged = false;
        for i in 0..64 {
            let key = format!("key-{i}");
            assert_eq!(a.disruption(&key, 1), a.disruption(&key, 1), "replays");
            if a.disruption(&key, 1) != b.disruption(&key, 1) {
                diverged = true;
            }
        }
        assert!(diverged, "different seeds must fire different faults");
    }

    #[test]
    fn transient_rate_is_roughly_respected() {
        let plan = FaultPlan::transient(42, 0.2);
        let fired = (0..1000)
            .filter(|i| {
                plan.disruption(&format!("job-{i}"), 1)
                    .transient_stage
                    .is_some()
            })
            .count();
        assert!(
            (120..=280).contains(&fired),
            "20% rate fired {fired}/1000 times"
        );
    }

    #[test]
    fn full_rate_always_fires_a_known_stage() {
        let plan = FaultPlan::transient(1, 1.0);
        for i in 0..32 {
            let stage = plan
                .disruption(&format!("k{i}"), 1)
                .transient_stage
                .expect("rate 1.0 always fires");
            assert!(TRANSIENT_STAGES.contains(&stage));
        }
    }

    #[test]
    fn spec_faults_fold_into_disruptions() {
        let mut d = Disruption::none();
        Fault::Panic.apply(&mut d, 1);
        assert!(d.panic);
        let mut d = Disruption::none();
        Fault::Hang(50).apply(&mut d, 1);
        assert_eq!(d.slow_ms, Some(50));
        let mut d = Disruption::none();
        Fault::Transient(2).apply(&mut d, 2);
        assert_eq!(d.transient_stage, Some(FlowStep::Route));
        let mut d = Disruption::none();
        Fault::Transient(2).apply(&mut d, 3);
        assert!(d.transient_stage.is_none(), "third attempt succeeds");
    }

    #[test]
    fn corruption_mask_is_never_zero() {
        let plan = FaultPlan::disabled().with_corrupt_rate(1.0);
        for i in 0..64 {
            let (_, xor) = plan
                .corrupt_artifact(&format!("k{i}"))
                .expect("rate 1.0 always corrupts");
            assert_ne!(xor, 0);
        }
    }

    #[test]
    fn degradable_stages_are_route_and_cts() {
        assert!(is_degradable_stage(FlowStep::Route));
        assert!(is_degradable_stage(FlowStep::ClockTree));
        assert!(!is_degradable_stage(FlowStep::Synthesize));
        assert!(!is_degradable_stage(FlowStep::Place));
    }

    #[test]
    fn outage_plan_samples_are_deterministic_and_positive() {
        let plan = OutagePlan::new(3, 200.0, 24.0);
        assert_eq!(plan.uptime_h(0, 0), plan.uptime_h(0, 0));
        assert_ne!(plan.uptime_h(0, 0), plan.uptime_h(1, 0));
        assert_ne!(plan.uptime_h(0, 0), plan.uptime_h(0, 1));
        for s in 0..4 {
            for e in 0..4 {
                assert!(plan.uptime_h(s, e) > 0.0);
                assert!(plan.repair_h(s, e) > 0.0);
            }
        }
        let mean: f64 = (0..500).map(|e| plan.uptime_h(0, e)).sum::<f64>() / 500.0;
        assert!((100.0..400.0).contains(&mean), "sample mean {mean}");
    }

    #[test]
    fn fault_round_trips_through_json() {
        for fault in [
            Fault::None,
            Fault::Panic,
            Fault::Hang(9),
            Fault::Transient(3),
        ] {
            let json = serde::json::to_string(&fault);
            let parsed: Fault = serde::json::from_str(&json).expect("round trips");
            assert_eq!(parsed, fault);
        }
    }
}
