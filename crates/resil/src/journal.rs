//! Append-only JSONL checkpoint journal for batch runs.
//!
//! Each completed job appends one line: a compact JSON record followed
//! by `|` and its 16-hex-digit FNV-1a digest. Writes are flushed and
//! fsynced per record, so a `SIGKILL` can lose at most the torn tail
//! line — which the loader detects (bad digest) and skips. Records are
//! content-addressed: a resume only trusts a record whose cache key
//! still matches the resubmitted job, so editing a design between runs
//! transparently re-executes it.

use chipforge_flow::PpaReport;
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// One journaled job completion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalRecord {
    /// Append order within the journal.
    pub seq: u64,
    /// Position in the submitted batch.
    pub index: usize,
    /// Content-addressed cache key (32 hex digits) of the job spec.
    pub key: String,
    /// Job display name.
    pub name: String,
    /// Terminal status name (`succeeded`, `failed`, ...).
    pub status: String,
    /// Flow attempts made.
    pub attempts: u32,
    /// Whether the job succeeded via a degraded (relaxed) retry.
    pub degraded: bool,
    /// Error description for non-succeeded jobs.
    pub error: Option<String>,
    /// The PPA report, when the job produced an artifact.
    pub ppa: Option<PpaReport>,
    /// FNV-1a digest of the GDS bytes, when the job produced an artifact.
    pub gds_fnv: Option<u64>,
}

/// Appends CRC-framed records to a journal file, fsyncing each one.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    path: PathBuf,
    records: u64,
}

impl JournalWriter {
    /// Creates (or truncates) the journal at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JournalWriter {
            file: File::create(path.as_ref())?,
            path: path.as_ref().to_path_buf(),
            records: 0,
        })
    }

    /// Opens the journal at `path` for appending, creating it when
    /// missing. Existing records are preserved, so a restarted service
    /// can keep extending the journal it recovered from; pass the
    /// loaded [`Journal`]'s length as the caller's starting `seq`.
    pub fn open_append(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JournalWriter {
            file: std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path.as_ref())?,
            path: path.as_ref().to_path_buf(),
            records: 0,
        })
    }

    /// Appends one record and forces it to disk before returning.
    pub fn append(&mut self, record: &JournalRecord) -> io::Result<()> {
        let payload = serde::json::to_string(record);
        debug_assert!(!payload.contains('\n'), "compact JSON is single-line");
        let line = format!("{}\n", crate::frame_checksummed(&payload));
        self.file.write_all(line.as_bytes())?;
        self.file.flush()?;
        // One fsync per record is the durability contract: after a kill,
        // every acknowledged record is on disk.
        self.file.sync_data()?;
        self.records += 1;
        Ok(())
    }

    /// Records appended so far.
    #[must_use]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The journal's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// A loaded journal: verified records plus a count of rejected lines.
#[derive(Debug, Clone, Default)]
pub struct Journal {
    /// Verified records, in append order.
    pub records: Vec<JournalRecord>,
    /// Lines rejected by the CRC or parse check (torn tail, corruption).
    pub skipped_lines: usize,
}

impl Journal {
    /// Loads and verifies the journal at `path`.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::parse(&std::fs::read_to_string(path)?))
    }

    /// Parses journal text, skipping any line that fails verification.
    #[must_use]
    pub fn parse(text: &str) -> Self {
        let mut journal = Journal::default();
        for line in text.lines() {
            match parse_line(line) {
                Some(record) => journal.records.push(record),
                None => journal.skipped_lines += 1,
            }
        }
        journal
    }

    /// The latest verified record for `(index, key)`, if any. Matching
    /// on both fields makes restoration content-addressed: a record is
    /// only trusted for a job that still describes the same work.
    #[must_use]
    pub fn find(&self, index: usize, key: &str) -> Option<&JournalRecord> {
        self.records
            .iter()
            .rev()
            .find(|r| r.index == index && r.key == key)
    }

    /// Number of verified records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the journal holds no verified records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

fn parse_line(line: &str) -> Option<JournalRecord> {
    // Layout: `{json}|{16 hex digits}` — the workspace-standard frame,
    // split at the fixed-width digest suffix rather than searching for
    // `|`, which may occur inside JSON strings.
    serde::json::from_str(crate::verify_checksummed(line)?).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seq: u64, index: usize) -> JournalRecord {
        JournalRecord {
            seq,
            index,
            key: format!("{:032x}", 0xabcu128 + index as u128),
            name: format!("job{index}"),
            status: "succeeded".into(),
            attempts: 1,
            degraded: false,
            error: None,
            ppa: None,
            gds_fnv: Some(0xdead_beef),
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("chipforge-journal-{name}-{}", std::process::id()))
    }

    #[test]
    fn write_then_load_round_trips() {
        let path = temp_path("roundtrip");
        let mut writer = JournalWriter::create(&path).expect("create");
        for i in 0..5 {
            writer.append(&record(i, i as usize)).expect("append");
        }
        assert_eq!(writer.records(), 5);
        let journal = Journal::load(&path).expect("load");
        std::fs::remove_file(&path).ok();
        assert_eq!(journal.len(), 5);
        assert_eq!(journal.skipped_lines, 0);
        assert_eq!(journal.records[3], record(3, 3));
    }

    #[test]
    fn torn_tail_line_is_skipped() {
        let path = temp_path("torn");
        let mut writer = JournalWriter::create(&path).expect("create");
        writer.append(&record(0, 0)).expect("append");
        writer.append(&record(1, 1)).expect("append");
        let mut text = std::fs::read_to_string(&path).expect("read");
        std::fs::remove_file(&path).ok();
        // Simulate a kill mid-write: the last line is truncated.
        text.truncate(text.len() - 9);
        let journal = Journal::parse(&text);
        assert_eq!(journal.len(), 1);
        assert_eq!(journal.skipped_lines, 1);
    }

    #[test]
    fn corrupted_payload_fails_the_crc() {
        let mut writer_text = String::new();
        let payload = serde::json::to_string(&record(0, 0));
        writer_text.push_str(&format!("{}\n", crate::frame_checksummed(&payload)));
        let flipped = writer_text.replacen("job0", "jobX", 1);
        assert_eq!(Journal::parse(&writer_text).len(), 1);
        let journal = Journal::parse(&flipped);
        assert_eq!(journal.len(), 0);
        assert_eq!(journal.skipped_lines, 1);
    }

    #[test]
    fn find_matches_index_and_key_and_prefers_latest() {
        let mut journal = Journal::default();
        journal.records.push(record(0, 2));
        let mut newer = record(1, 2);
        newer.status = "failed".into();
        journal.records.push(newer);
        let key = record(0, 2).key;
        assert_eq!(journal.find(2, &key).expect("found").status, "failed");
        assert!(journal.find(2, "wrongkey").is_none(), "key must match");
        assert!(journal.find(3, &key).is_none(), "index must match");
    }

    #[test]
    fn append_mode_preserves_existing_records() {
        let path = temp_path("append");
        let mut writer = JournalWriter::create(&path).expect("create");
        writer.append(&record(0, 0)).expect("append");
        drop(writer);
        // A second writer in append mode (a restarted service) extends
        // the journal instead of truncating it.
        let mut writer = JournalWriter::open_append(&path).expect("open");
        writer.append(&record(1, 1)).expect("append");
        assert_eq!(writer.records(), 1, "counts only this writer's records");
        let journal = Journal::load(&path).expect("load");
        std::fs::remove_file(&path).ok();
        assert_eq!(journal.len(), 2);
        assert_eq!(journal.records[0], record(0, 0));
        assert_eq!(journal.records[1], record(1, 1));
    }

    #[test]
    fn empty_journal_restores_nothing() {
        let journal = Journal::parse("");
        assert!(journal.is_empty());
        assert_eq!(journal.skipped_lines, 0);
    }
}
