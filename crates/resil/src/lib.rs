//! # chipforge-resil
//!
//! Resilience primitives for the chipforge execution stack.
//!
//! The position paper's Recommendation 7 argues that a *centralized*
//! cloud enablement hub is only viable if the shared service absorbs the
//! failure modes that per-university setups push onto students — wedged
//! tools, flaky runs, lost batches mid-course. This crate supplies the
//! machinery to inject those failures deterministically and to survive
//! them:
//!
//! * [`FaultPlan`] — a seeded, deterministic fault-injection plane.
//!   Every decision (transient stage error, slow-down, worker panic,
//!   cache corruption, server outage) is a pure hash of the plan seed
//!   and the fault site, so a faulty run replays identically across
//!   worker counts, process restarts and resumed batches.
//! * [`Journal`] / [`JournalWriter`] — an append-only JSONL checkpoint
//!   of completed jobs, one fsynced CRC-framed record per line, so a
//!   killed batch can resume without repeating finished work and still
//!   reproduce the uninterrupted report byte-for-byte.
//! * [`Backoff`] — bounded exponential retry backoff with deterministic
//!   seeded jitter (no retry stampedes, no RNG state).
//! * [`ResiliencePolicy`] — per-job quarantine limits, batch failure
//!   budgets and graceful stage degradation, consumed by
//!   `chipforge-exec`'s batch engine.
//! * [`OutagePlan`] — seeded server outage/repair processes for the
//!   cloud discrete-event simulator (experiment E15).
//!
//! Nothing in this crate keeps mutable random state: determinism is the
//! point. A fault either fires for `(seed, site, key, attempt)` or it
//! never does.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backoff;
mod fault;
mod journal;
mod net;
mod policy;

pub use backoff::Backoff;
pub use fault::{
    is_degradable_stage, Disruption, Fault, FaultPlan, OutagePlan, ShardFault, ShardFaultPlan,
    DEGRADABLE_STAGES, TRANSIENT_STAGES,
};
pub use journal::{Journal, JournalRecord, JournalWriter};
pub use net::{FlakyProxy, NetFault, NetFaultPlan};
pub use policy::ResiliencePolicy;

/// FNV-1a 64-bit hash, the workspace's standard content digest.
///
/// Used for journal record CRCs, artifact checksums and fault-plan
/// rolls. FNV-1a's per-byte multiply is injective, so any single-byte
/// flip changes the digest — the guarantee the cache-integrity check
/// relies on.
#[must_use]
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Maps a 64-bit hash onto a uniform fraction in `[0, 1)`.
#[must_use]
pub fn hash_fraction(hash: u64) -> f64 {
    (hash >> 11) as f64 / (1u64 << 53) as f64
}

/// Frames `payload` with its 16-hex-digit FNV-1a digest:
/// `{payload}|{digest}`.
///
/// This is the workspace's standard integrity frame — the journal, the
/// on-disk stage-cache entries and the remote cache-protocol bodies all
/// use it, so every persisted or transmitted artifact can be verified
/// before it is deserialized. The payload must not contain a newline
/// (compact JSON never does).
#[must_use]
pub fn frame_checksummed(payload: &str) -> String {
    format!("{payload}|{:016x}", fnv64(payload.as_bytes()))
}

/// Verifies a [`frame_checksummed`] string and returns the payload, or
/// `None` when the frame is malformed, truncated or fails its digest.
///
/// The digest suffix has fixed width, so the split never confuses a `|`
/// inside a JSON string for the frame separator. A trailing newline is
/// tolerated (journal lines carry one).
#[must_use]
pub fn verify_checksummed(framed: &str) -> Option<&str> {
    let framed = framed.strip_suffix('\n').unwrap_or(framed);
    if framed.len() < 17 || !framed.is_char_boundary(framed.len() - 17) {
        return None;
    }
    let (payload, suffix) = framed.split_at(framed.len() - 17);
    let digest = suffix.strip_prefix('|')?;
    let expected = u64::from_str_radix(digest, 16).ok()?;
    if fnv64(payload.as_bytes()) != expected {
        return None;
    }
    Some(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv64_detects_any_single_byte_flip() {
        let base = b"journal record payload".to_vec();
        let digest = fnv64(&base);
        for i in 0..base.len() {
            for xor in [1u8, 0x40, 0xff] {
                let mut flipped = base.clone();
                flipped[i] ^= xor;
                assert_ne!(fnv64(&flipped), digest, "flip at {i} xor {xor:#x}");
            }
        }
    }

    #[test]
    fn hash_fraction_is_a_unit_interval() {
        for h in [0u64, 1, u64::MAX, 0xdead_beef_cafe_f00d] {
            let f = hash_fraction(h);
            assert!((0.0..1.0).contains(&f), "{f}");
        }
        assert!(hash_fraction(u64::MAX) > 0.999);
    }

    #[test]
    fn checksummed_frame_round_trips() {
        let payload = r#"{"key":"value|with|pipes"}"#;
        let framed = frame_checksummed(payload);
        assert_eq!(verify_checksummed(&framed), Some(payload));
        // Tolerates the journal's trailing newline.
        assert_eq!(verify_checksummed(&format!("{framed}\n")), Some(payload));
    }

    #[test]
    fn checksummed_frame_rejects_tampering() {
        let framed = frame_checksummed("payload");
        // Any single flipped payload byte fails verification.
        let tampered = framed.replacen("payload", "paYload", 1);
        assert_eq!(verify_checksummed(&tampered), None);
        // Truncation fails verification.
        assert_eq!(verify_checksummed(&framed[..framed.len() - 1]), None);
        // Garbage fails cleanly.
        assert_eq!(verify_checksummed(""), None);
        assert_eq!(verify_checksummed("short"), None);
        assert_eq!(verify_checksummed("|zzzzzzzzzzzzzzzz"), None);
    }
}
