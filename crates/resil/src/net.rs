//! The deterministic *network* fault-injection plane.
//!
//! Where [`FaultPlan`](crate::FaultPlan) disrupts work inside a process,
//! [`NetFaultPlan`] disrupts the wire between processes: the remote
//! stage-cache protocol (and any other HTTP traffic) has to survive
//! refused connections, truncated bodies, flipped bytes, injected
//! latency and outright blackholes. Decisions are pure hashes of the
//! plan seed and the connection index — no RNG state — so a faulty run
//! replays identically and tests can assert exact per-connection
//! behavior.
//!
//! [`FlakyProxy`] puts a plan on the wire: an in-process TCP forwarder
//! that accepts on a local port, applies the planned fault for each
//! accepted connection, and otherwise relays bytes to an upstream
//! address. It is the deterministic stand-in for a lossy campus network
//! between a flow engine and a shared cache hub.

use crate::{fnv64, hash_fraction};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// The fault a [`NetFaultPlan`] injects into one connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// Relay the connection untouched.
    None,
    /// Close the connection immediately (connection refused / reset).
    Refuse,
    /// Relay the request, then send only the first half of the response.
    Truncate,
    /// Relay the request, then flip one response byte before sending.
    Corrupt,
    /// Sleep this many milliseconds before relaying anything.
    Latency(u64),
    /// Accept, read the request, and never answer (hang until timeout).
    Blackhole,
}

/// A seeded, deterministic plan of network faults, keyed by connection
/// index.
///
/// Each rate is the probability the corresponding fault fires for a
/// given connection; when several would fire the most disruptive wins
/// (refuse > blackhole > truncate > corrupt > latency). `blackhole_after`
/// unconditionally blackholes every connection at or past that index —
/// the "remote cache dies mid-batch" scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetFaultPlan {
    /// Plan seed: same seed, same faults.
    pub seed: u64,
    /// Probability a connection is refused outright.
    pub refuse_rate: f64,
    /// Probability a response is truncated mid-body.
    pub truncate_rate: f64,
    /// Probability one response byte is flipped.
    pub corrupt_rate: f64,
    /// Probability the connection is delayed by `latency_ms`.
    pub latency_rate: f64,
    /// Injected delay when a latency fault fires, in milliseconds.
    pub latency_ms: u64,
    /// Probability a connection is blackholed (accepted, never answered).
    pub blackhole_rate: f64,
    /// Blackhole every connection with index >= this, regardless of
    /// rates: the deterministic mid-run outage switch.
    pub blackhole_after: Option<u64>,
}

impl Default for NetFaultPlan {
    fn default() -> Self {
        NetFaultPlan::disabled()
    }
}

impl NetFaultPlan {
    /// A plan that relays every connection untouched.
    #[must_use]
    pub fn disabled() -> Self {
        NetFaultPlan {
            seed: 0,
            refuse_rate: 0.0,
            truncate_rate: 0.0,
            corrupt_rate: 0.0,
            latency_rate: 0.0,
            latency_ms: 0,
            blackhole_rate: 0.0,
            blackhole_after: None,
        }
    }

    /// A general-purpose flaky link: `rate` total fault probability,
    /// split evenly across refusal, truncation, corruption and latency
    /// (25 ms). This is the "30%-fault campus network" used by E20 and
    /// the CI chaos smoke.
    #[must_use]
    pub fn flaky(seed: u64, rate: f64) -> Self {
        let share = rate.clamp(0.0, 1.0) / 4.0;
        NetFaultPlan {
            seed,
            refuse_rate: share,
            truncate_rate: share,
            corrupt_rate: share,
            latency_rate: share,
            latency_ms: 25,
            ..NetFaultPlan::disabled()
        }
    }

    /// Sets the refusal rate.
    #[must_use]
    pub fn with_refuse_rate(mut self, rate: f64) -> Self {
        self.refuse_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the truncation rate.
    #[must_use]
    pub fn with_truncate_rate(mut self, rate: f64) -> Self {
        self.truncate_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the corruption rate.
    #[must_use]
    pub fn with_corrupt_rate(mut self, rate: f64) -> Self {
        self.corrupt_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the latency rate and injected delay.
    #[must_use]
    pub fn with_latency(mut self, rate: f64, latency_ms: u64) -> Self {
        self.latency_rate = rate.clamp(0.0, 1.0);
        self.latency_ms = latency_ms;
        self
    }

    /// Sets the blackhole rate.
    #[must_use]
    pub fn with_blackhole_rate(mut self, rate: f64) -> Self {
        self.blackhole_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Blackholes every connection with index >= `n`.
    #[must_use]
    pub fn with_blackhole_after(mut self, n: u64) -> Self {
        self.blackhole_after = Some(n);
        self
    }

    /// Whether any fault can ever fire.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.refuse_rate > 0.0
            || self.truncate_rate > 0.0
            || self.corrupt_rate > 0.0
            || self.latency_rate > 0.0
            || self.blackhole_rate > 0.0
            || self.blackhole_after.is_some()
    }

    fn roll(&self, site: &str, connection: u64) -> f64 {
        hash_fraction(self.hash(site, connection))
    }

    fn hash(&self, site: &str, connection: u64) -> u64 {
        let mut bytes = Vec::with_capacity(site.len() + 17);
        bytes.extend_from_slice(&self.seed.to_le_bytes());
        bytes.extend_from_slice(site.as_bytes());
        bytes.push(0);
        bytes.extend_from_slice(&connection.to_le_bytes());
        fnv64(&bytes)
    }

    /// The fault this plan injects into connection `connection`.
    ///
    /// Severity resolves ties: a connection that rolls both a refusal
    /// and a latency is refused.
    #[must_use]
    pub fn fault(&self, connection: u64) -> NetFault {
        if let Some(after) = self.blackhole_after {
            if connection >= after {
                return NetFault::Blackhole;
            }
        }
        if self.refuse_rate > 0.0 && self.roll("refuse", connection) < self.refuse_rate {
            return NetFault::Refuse;
        }
        if self.blackhole_rate > 0.0 && self.roll("blackhole", connection) < self.blackhole_rate {
            return NetFault::Blackhole;
        }
        if self.truncate_rate > 0.0 && self.roll("truncate", connection) < self.truncate_rate {
            return NetFault::Truncate;
        }
        if self.corrupt_rate > 0.0 && self.roll("corrupt", connection) < self.corrupt_rate {
            return NetFault::Corrupt;
        }
        if self.latency_rate > 0.0 && self.roll("latency", connection) < self.latency_rate {
            return NetFault::Latency(self.latency_ms);
        }
        NetFault::None
    }

    /// The response byte offset a corruption fault flips (modulo body
    /// length) and the nonzero xor mask it applies.
    #[must_use]
    pub fn corrupt_site(&self, connection: u64) -> (u64, u8) {
        let h = self.hash("corrupt-site", connection);
        ((h >> 16), ((h >> 8) as u8) | 1)
    }
}

/// How long a blackholed connection is held open before the proxy gives
/// up on it; generous next to any sane client timeout.
const BLACKHOLE_HOLD: Duration = Duration::from_secs(10);

/// An in-process flaky TCP proxy: accepts on a local port, decides a
/// [`NetFault`] per connection from its [`NetFaultPlan`], and relays to
/// an upstream address.
///
/// The relay assumes one-shot HTTP/1.1 exchanges (`Connection: close`,
/// which is all the chipforge hub speaks): the client's request is
/// pumped upstream until EOF, the full upstream response is buffered,
/// the fault is applied to the response bytes, and the result is written
/// back. Dropping the proxy shuts it down.
#[derive(Debug)]
pub struct FlakyProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    connections: Arc<AtomicU64>,
    accept_thread: Option<JoinHandle<()>>,
}

impl FlakyProxy {
    /// Starts a proxy on an OS-assigned local port, relaying to
    /// `upstream` under `plan`.
    pub fn start(upstream: SocketAddr, plan: NetFaultPlan) -> std::io::Result<Self> {
        Self::start_on("127.0.0.1:0", upstream, plan)
    }

    /// Starts a proxy bound to `listen`, relaying to `upstream` under
    /// `plan`.
    pub fn start_on(
        listen: &str,
        upstream: SocketAddr,
        plan: NetFaultPlan,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(listen)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(AtomicU64::new(0));
        let thread_stop = Arc::clone(&stop);
        let thread_connections = Arc::clone(&connections);
        // A short accept timeout keeps the loop responsive to shutdown.
        listener.set_nonblocking(false)?;
        let accept_thread = thread::Builder::new()
            .name("flaky-proxy-accept".into())
            .spawn(move || {
                accept_loop(&listener, upstream, plan, &thread_stop, &thread_connections);
            })?;
        Ok(FlakyProxy {
            addr,
            stop,
            connections,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's listening address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections accepted so far.
    #[must_use]
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::SeqCst)
    }

    /// Stops accepting and joins the accept loop. Connections already
    /// being relayed finish (or time out) on their own threads.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for FlakyProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    upstream: SocketAddr,
    plan: NetFaultPlan,
    stop: &Arc<AtomicBool>,
    connections: &Arc<AtomicU64>,
) {
    loop {
        let (client, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let index = connections.fetch_add(1, Ordering::SeqCst);
        let fault = plan.fault(index);
        let corrupt_site = plan.corrupt_site(index);
        let conn_stop = Arc::clone(stop);
        let _ = thread::Builder::new()
            .name(format!("flaky-proxy-conn-{index}"))
            .spawn(move || {
                relay(client, upstream, fault, corrupt_site, &conn_stop);
            });
    }
}

/// Relays one connection under `fault`. Errors are swallowed: from the
/// client's perspective a relay error is just another network fault.
fn relay(
    mut client: TcpStream,
    upstream: SocketAddr,
    fault: NetFault,
    corrupt_site: (u64, u8),
    stop: &Arc<AtomicBool>,
) {
    match fault {
        NetFault::Refuse => {
            // Dropping the accepted socket resets the connection; the
            // client sees an immediate close before any response.
            return;
        }
        NetFault::Blackhole => {
            // Read (and discard) whatever the client sends, then hold
            // the socket open silently until the client gives up. A
            // client half-close (EOF after its request) stops the
            // reads but not the hold: a blackhole never answers and
            // never closes, it only goes quiet, so the client must
            // spend its read timeout to get free.
            let _ = client.set_read_timeout(Some(Duration::from_millis(50)));
            let mut sink = [0u8; 4096];
            let mut draining = true;
            let start = std::time::Instant::now();
            while start.elapsed() < BLACKHOLE_HOLD && !stop.load(Ordering::SeqCst) {
                if !draining {
                    thread::sleep(Duration::from_millis(50));
                    continue;
                }
                match client.read(&mut sink) {
                    Ok(0) => draining = false,
                    Ok(_) => {}
                    Err(ref e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut => {}
                    Err(_) => draining = false,
                }
            }
            return;
        }
        NetFault::Latency(ms) => thread::sleep(Duration::from_millis(ms)),
        NetFault::None | NetFault::Truncate | NetFault::Corrupt => {}
    }

    let Ok(mut server) = TcpStream::connect_timeout(&upstream, Duration::from_secs(5)) else {
        return;
    };
    let _ = server.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = client.set_read_timeout(Some(Duration::from_secs(10)));

    // Pump the request client→upstream on its own thread; EOF (or the
    // client half-closing after its request) propagates as a write-side
    // shutdown so the upstream knows the request is complete.
    let Ok(client_read) = client.try_clone() else {
        return;
    };
    let Ok(server_write) = server.try_clone() else {
        return;
    };
    let pump = thread::Builder::new()
        .name("flaky-proxy-pump".into())
        .spawn(move || {
            let mut from = client_read;
            let mut to = server_write;
            let mut buf = [0u8; 4096];
            loop {
                match from.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        if to.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                }
            }
            let _ = to.shutdown(Shutdown::Write);
        });

    // The hub speaks Connection: close, so the full response ends at EOF.
    let mut response = Vec::new();
    let _ = server.read_to_end(&mut response);
    if let Ok(handle) = pump {
        let _ = handle.join();
    }

    match fault {
        NetFault::Truncate => {
            response.truncate(response.len() / 2);
        }
        NetFault::Corrupt if !response.is_empty() => {
            let (offset, xor) = corrupt_site;
            // Flip a byte in the tail half so headers usually parse
            // and the corruption lands in the body — the case only
            // a checksum can catch.
            let lo = response.len() / 2;
            let idx = lo + (offset as usize % (response.len() - lo).max(1));
            let idx = idx.min(response.len() - 1);
            response[idx] ^= xor;
        }
        _ => {}
    }
    let _ = client.write_all(&response);
    let _ = client.shutdown(Shutdown::Write);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_faults() {
        let plan = NetFaultPlan::disabled();
        assert!(!plan.is_active());
        for c in 0..64 {
            assert_eq!(plan.fault(c), NetFault::None);
        }
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = NetFaultPlan::flaky(11, 0.5);
        let b = NetFaultPlan::flaky(12, 0.5);
        let mut diverged = false;
        for c in 0..128 {
            assert_eq!(a.fault(c), a.fault(c), "replays");
            if a.fault(c) != b.fault(c) {
                diverged = true;
            }
        }
        assert!(diverged, "different seeds must fault differently");
    }

    #[test]
    fn flaky_rate_is_roughly_respected() {
        let plan = NetFaultPlan::flaky(42, 0.3);
        let fired = (0..1000)
            .filter(|&c| plan.fault(c) != NetFault::None)
            .count();
        assert!(
            (200..=400).contains(&fired),
            "30% rate fired {fired}/1000 times"
        );
    }

    #[test]
    fn blackhole_after_overrides_everything() {
        let plan = NetFaultPlan::disabled().with_blackhole_after(3);
        assert_eq!(plan.fault(2), NetFault::None);
        assert_eq!(plan.fault(3), NetFault::Blackhole);
        assert_eq!(plan.fault(4000), NetFault::Blackhole);
        let flaky = NetFaultPlan::flaky(1, 1.0).with_blackhole_after(0);
        for c in 0..16 {
            assert_eq!(flaky.fault(c), NetFault::Blackhole);
        }
    }

    #[test]
    fn severity_orders_refuse_first() {
        // All rates 1.0: every connection must resolve to Refuse.
        let plan = NetFaultPlan::disabled()
            .with_refuse_rate(1.0)
            .with_truncate_rate(1.0)
            .with_corrupt_rate(1.0)
            .with_latency(1.0, 5)
            .with_blackhole_rate(1.0);
        for c in 0..16 {
            assert_eq!(plan.fault(c), NetFault::Refuse);
        }
    }

    #[test]
    fn corrupt_site_mask_is_never_zero() {
        let plan = NetFaultPlan::flaky(5, 1.0);
        for c in 0..64 {
            assert_ne!(plan.corrupt_site(c).1, 0);
        }
    }

    #[test]
    fn proxy_relays_cleanly_when_disabled() {
        let upstream = TcpListener::bind("127.0.0.1:0").expect("bind upstream");
        let upstream_addr = upstream.local_addr().expect("addr");
        let echo = thread::spawn(move || {
            let (mut conn, _) = upstream.accept().expect("accept");
            let mut request = Vec::new();
            let mut buf = [0u8; 1024];
            loop {
                match conn.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => request.extend_from_slice(&buf[..n]),
                }
            }
            conn.write_all(b"pong:").expect("write");
            conn.write_all(&request).expect("write");
        });
        let proxy = FlakyProxy::start(upstream_addr, NetFaultPlan::disabled()).expect("proxy");
        let mut client = TcpStream::connect(proxy.addr()).expect("connect");
        client.write_all(b"ping").expect("send");
        client.shutdown(Shutdown::Write).expect("half-close");
        let mut response = Vec::new();
        client.read_to_end(&mut response).expect("read");
        assert_eq!(response, b"pong:ping");
        assert_eq!(proxy.connections(), 1);
        echo.join().expect("echo thread");
    }

    #[test]
    fn proxy_truncates_and_refuses_per_plan() {
        let upstream = TcpListener::bind("127.0.0.1:0").expect("bind upstream");
        let upstream_addr = upstream.local_addr().expect("addr");
        let serve = thread::spawn(move || {
            // Serve until the listener is dropped by the main thread.
            for conn in upstream.incoming() {
                let Ok(mut conn) = conn else { break };
                let mut buf = [0u8; 1024];
                loop {
                    match conn.read(&mut buf) {
                        Ok(0) | Err(_) => break,
                        Ok(_) => {}
                    }
                }
                if conn.write_all(b"0123456789abcdef").is_err() {
                    break;
                }
            }
        });
        // Truncate every connection.
        let plan = NetFaultPlan::disabled().with_truncate_rate(1.0);
        let proxy = FlakyProxy::start(upstream_addr, plan).expect("proxy");
        let mut client = TcpStream::connect(proxy.addr()).expect("connect");
        client.write_all(b"x").expect("send");
        client.shutdown(Shutdown::Write).expect("half-close");
        let mut response = Vec::new();
        client.read_to_end(&mut response).expect("read");
        assert_eq!(response, b"01234567", "half the 16-byte response");

        // Refuse every connection: the client reads EOF with no bytes.
        let plan = NetFaultPlan::disabled().with_refuse_rate(1.0);
        let proxy2 = FlakyProxy::start(upstream_addr, plan).expect("proxy");
        let mut client = TcpStream::connect(proxy2.addr()).expect("connect");
        let _ = client.write_all(b"x");
        let mut response = Vec::new();
        let _ = client.read_to_end(&mut response);
        assert!(response.is_empty(), "refused connection returns nothing");
        drop(serve);
    }
}
