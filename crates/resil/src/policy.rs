//! Batch-level protection policy.

/// How a batch engine reacts to repeated failures.
///
/// The inert policy reproduces the engine's historical behavior
/// (bounded retry, terminal `Failed`); the resilient policy adds
/// per-job quarantine, an optional batch failure budget and graceful
/// stage degradation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResiliencePolicy {
    /// Quarantine a job (terminal `Quarantined` status, identical
    /// resubmissions short-circuited) once it exhausts `max_attempts`.
    pub quarantine: bool,
    /// Attempt ceiling per job when `quarantine` is on (at least 1).
    pub max_attempts: u32,
    /// Fail fast once this many jobs have terminally failed: remaining
    /// unstarted jobs are cancelled instead of burning worker time.
    pub failure_budget: Option<usize>,
    /// Retry a transiently-failed route/CTS stage once with relaxed
    /// parameters instead of failing the job (tagged `degraded`).
    pub degrade: bool,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy::inert()
    }
}

impl ResiliencePolicy {
    /// The no-op policy: engine behavior is unchanged.
    #[must_use]
    pub fn inert() -> Self {
        ResiliencePolicy {
            quarantine: false,
            max_attempts: 0,
            failure_budget: None,
            degrade: false,
        }
    }

    /// Full protection: quarantine after `max_attempts`, degradation on.
    #[must_use]
    pub fn resilient(max_attempts: u32) -> Self {
        ResiliencePolicy {
            quarantine: true,
            max_attempts: max_attempts.max(1),
            failure_budget: None,
            degrade: true,
        }
    }

    /// Sets the batch failure budget.
    #[must_use]
    pub fn with_failure_budget(mut self, budget: usize) -> Self {
        self.failure_budget = Some(budget);
        self
    }

    /// Disables graceful degradation.
    #[must_use]
    pub fn without_degrade(mut self) -> Self {
        self.degrade = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_inert() {
        let policy = ResiliencePolicy::default();
        assert!(!policy.quarantine);
        assert!(!policy.degrade);
        assert!(policy.failure_budget.is_none());
    }

    #[test]
    fn resilient_clamps_attempts_to_at_least_one() {
        assert_eq!(ResiliencePolicy::resilient(0).max_attempts, 1);
        let policy = ResiliencePolicy::resilient(3)
            .with_failure_budget(5)
            .without_degrade();
        assert!(policy.quarantine);
        assert_eq!(policy.max_attempts, 3);
        assert_eq!(policy.failure_budget, Some(5));
        assert!(!policy.degrade);
    }
}
