//! Gcell grid with per-edge capacities and usage tracking.

use chipforge_pdk::StdCellLibrary;
use serde::{Deserialize, Serialize};

/// A gcell coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GridCoord {
    /// Column.
    pub x: u16,
    /// Row.
    pub y: u16,
}

impl GridCoord {
    /// Creates a coordinate.
    #[must_use]
    pub fn new(x: u16, y: u16) -> Self {
        Self { x, y }
    }

    /// Manhattan distance to another coordinate, in gcells.
    #[must_use]
    pub fn manhattan(self, other: GridCoord) -> u32 {
        self.x.abs_diff(other.x) as u32 + self.y.abs_diff(other.y) as u32
    }
}

/// The routing grid: `width × height` gcells with directed edge usage.
///
/// Horizontal edges connect `(x, y)`–`(x+1, y)`; vertical edges connect
/// `(x, y)`–`(x, y+1)`. Capacity per edge is the number of routing tracks
/// crossing the gcell boundary, split between horizontal and vertical
/// layers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GcellGrid {
    width: u16,
    height: u16,
    gcell_um: f64,
    h_capacity: u16,
    v_capacity: u16,
    /// Usage of horizontal edges, index = y * (width-1) + x.
    h_usage: Vec<u16>,
    /// Usage of vertical edges, index = y * width + x.
    v_usage: Vec<u16>,
}

impl GcellGrid {
    /// Builds a grid covering `core_w_um × core_h_um` with gcells of
    /// `gcell_um`, capacities derived from the library's node.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are non-positive.
    #[must_use]
    pub fn new(core_w_um: f64, core_h_um: f64, gcell_um: f64, lib: &StdCellLibrary) -> Self {
        assert!(core_w_um > 0.0 && core_h_um > 0.0 && gcell_um > 0.0);
        let width = (core_w_um / gcell_um).ceil().max(1.0) as u16 + 1;
        let height = (core_h_um / gcell_um).ceil().max(1.0) as u16 + 1;
        let node = lib.node();
        let rules = chipforge_pdk::DesignRules::for_node(node);
        // Tracks crossing one gcell boundary on one layer.
        let tracks_per_layer = (gcell_um / rules.routing_pitch_um(2)).floor().max(1.0);
        // Half the metal stack routes horizontally, half vertically; M1 is
        // reserved for cell internals and pin access.
        let layers_each = ((node.metal_layers() - 1) / 2).max(1) as f64;
        let capacity = (tracks_per_layer * layers_each * 0.8) as u16;
        Self {
            width,
            height,
            gcell_um,
            h_capacity: capacity.max(1),
            v_capacity: capacity.max(1),
            h_usage: vec![0; (width as usize - 1) * height as usize],
            v_usage: vec![0; width as usize * (height as usize - 1)],
        }
    }

    /// Grid width in gcells.
    #[must_use]
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Grid height in gcells.
    #[must_use]
    pub fn height(&self) -> u16 {
        self.height
    }

    /// Gcell edge length in µm.
    #[must_use]
    pub fn gcell_um(&self) -> f64 {
        self.gcell_um
    }

    /// Capacity of horizontal edges.
    #[must_use]
    pub fn h_capacity(&self) -> u16 {
        self.h_capacity
    }

    /// Capacity of vertical edges.
    #[must_use]
    pub fn v_capacity(&self) -> u16 {
        self.v_capacity
    }

    /// Converts a µm position to the containing gcell.
    #[must_use]
    pub fn coord_of(&self, x_um: f64, y_um: f64) -> GridCoord {
        let x = (x_um / self.gcell_um).floor().max(0.0) as u16;
        let y = (y_um / self.gcell_um).floor().max(0.0) as u16;
        GridCoord {
            x: x.min(self.width - 1),
            y: y.min(self.height - 1),
        }
    }

    fn h_index(&self, x: u16, y: u16) -> usize {
        y as usize * (self.width as usize - 1) + x as usize
    }

    fn v_index(&self, x: u16, y: u16) -> usize {
        y as usize * self.width as usize + x as usize
    }

    /// Usage and capacity of the edge between two adjacent gcells.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are not 4-neighbours.
    #[must_use]
    pub fn edge_usage(&self, a: GridCoord, b: GridCoord) -> (u16, u16) {
        if a.y == b.y {
            let x = a.x.min(b.x);
            assert_eq!(a.x.abs_diff(b.x), 1, "not adjacent");
            (self.h_usage[self.h_index(x, a.y)], self.h_capacity)
        } else {
            let y = a.y.min(b.y);
            assert_eq!(a.y.abs_diff(b.y), 1, "not adjacent");
            assert_eq!(a.x, b.x, "not adjacent");
            (self.v_usage[self.v_index(a.x, y)], self.v_capacity)
        }
    }

    /// Adds (or removes, with `delta < 0`) usage on an edge.
    pub fn add_usage(&mut self, a: GridCoord, b: GridCoord, delta: i32) {
        if a.y == b.y {
            let x = a.x.min(b.x);
            let idx = self.h_index(x, a.y);
            self.h_usage[idx] = (i32::from(self.h_usage[idx]) + delta).max(0) as u16;
        } else {
            let y = a.y.min(b.y);
            let idx = self.v_index(a.x, y);
            self.v_usage[idx] = (i32::from(self.v_usage[idx]) + delta).max(0) as u16;
        }
    }

    /// Number of edges whose usage exceeds capacity.
    #[must_use]
    pub fn overflowed_edges(&self) -> usize {
        self.h_usage
            .iter()
            .filter(|&&u| u > self.h_capacity)
            .count()
            + self
                .v_usage
                .iter()
                .filter(|&&u| u > self.v_capacity)
                .count()
    }

    /// Peak edge congestion as usage/capacity.
    #[must_use]
    pub fn peak_congestion(&self) -> f64 {
        let h = self
            .h_usage
            .iter()
            .map(|&u| f64::from(u) / f64::from(self.h_capacity))
            .fold(0.0, f64::max);
        let v = self
            .v_usage
            .iter()
            .map(|&u| f64::from(u) / f64::from(self.v_capacity))
            .fold(0.0, f64::max);
        h.max(v)
    }

    /// The 4-neighbours of a gcell.
    pub fn neighbors(&self, c: GridCoord) -> impl Iterator<Item = GridCoord> + '_ {
        let (x, y) = (c.x, c.y);
        let mut out = Vec::with_capacity(4);
        if x > 0 {
            out.push(GridCoord::new(x - 1, y));
        }
        if x + 1 < self.width {
            out.push(GridCoord::new(x + 1, y));
        }
        if y > 0 {
            out.push(GridCoord::new(x, y - 1));
        }
        if y + 1 < self.height {
            out.push(GridCoord::new(x, y + 1));
        }
        out.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipforge_pdk::{LibraryKind, TechnologyNode};

    fn grid() -> GcellGrid {
        let lib = StdCellLibrary::generate(TechnologyNode::N130, LibraryKind::Open);
        GcellGrid::new(100.0, 80.0, 10.0, &lib)
    }

    #[test]
    fn grid_dimensions_cover_core() {
        let g = grid();
        assert!(g.width() >= 10);
        assert!(g.height() >= 8);
        assert!(g.h_capacity() >= 1);
    }

    #[test]
    fn coord_mapping_clamps() {
        let g = grid();
        assert_eq!(g.coord_of(0.0, 0.0), GridCoord::new(0, 0));
        assert_eq!(g.coord_of(25.0, 15.0), GridCoord::new(2, 1));
        let far = g.coord_of(1e9, 1e9);
        assert_eq!(far.x, g.width() - 1);
        assert_eq!(far.y, g.height() - 1);
    }

    #[test]
    fn usage_add_and_remove() {
        let mut g = grid();
        let a = GridCoord::new(1, 1);
        let b = GridCoord::new(2, 1);
        assert_eq!(g.edge_usage(a, b).0, 0);
        g.add_usage(a, b, 1);
        assert_eq!(g.edge_usage(a, b).0, 1);
        assert_eq!(g.edge_usage(b, a).0, 1, "edges are undirected");
        g.add_usage(b, a, -1);
        assert_eq!(g.edge_usage(a, b).0, 0);
    }

    #[test]
    fn overflow_detection() {
        let mut g = grid();
        let a = GridCoord::new(0, 0);
        let b = GridCoord::new(1, 0);
        for _ in 0..=g.h_capacity() {
            g.add_usage(a, b, 1);
        }
        assert_eq!(g.overflowed_edges(), 1);
        assert!(g.peak_congestion() > 1.0);
    }

    #[test]
    fn neighbors_respect_bounds() {
        let g = grid();
        let corner: Vec<_> = g.neighbors(GridCoord::new(0, 0)).collect();
        assert_eq!(corner.len(), 2);
        let middle: Vec<_> = g.neighbors(GridCoord::new(2, 2)).collect();
        assert_eq!(middle.len(), 4);
    }

    #[test]
    fn manhattan_distance() {
        assert_eq!(GridCoord::new(0, 0).manhattan(GridCoord::new(3, 4)), 7);
    }

    #[test]
    fn advanced_nodes_have_more_tracks() {
        let old = GcellGrid::new(
            100.0,
            100.0,
            10.0,
            &StdCellLibrary::generate(TechnologyNode::N130, LibraryKind::Open),
        );
        let new = GcellGrid::new(
            100.0,
            100.0,
            10.0,
            &StdCellLibrary::generate(TechnologyNode::N7, LibraryKind::Commercial),
        );
        assert!(new.h_capacity() > 2 * old.h_capacity());
    }
}
