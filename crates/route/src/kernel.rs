//! Pluggable global-routing kernels.
//!
//! Every router implements [`GlobalRouter`]; [`RouterKind`] is the
//! canonical name-addressed registry used by flow profiles, CLI flags
//! and batch manifests. The kind serializes as its name and deserializes
//! permissively: a missing/null field means the default (maze) kernel,
//! so documents written before kernel selection existed keep loading.

use crate::maze::{route, RouteError, RouteOptions, Routing};
use crate::steiner::route_steiner;
use chipforge_netlist::Netlist;
use chipforge_pdk::StdCellLibrary;
use chipforge_place::Placement;
use serde::{Deserialize, Error, Serialize, Value};
use std::fmt;

/// A global-routing kernel: turns a placement into a [`Routing`].
pub trait GlobalRouter {
    /// The registry entry this kernel implements.
    fn kind(&self) -> RouterKind;

    /// Routes a placed netlist.
    ///
    /// # Errors
    ///
    /// Same contract as [`crate::route`].
    fn route(
        &self,
        netlist: &Netlist,
        placement: &Placement,
        lib: &StdCellLibrary,
        options: &RouteOptions,
    ) -> Result<Routing, RouteError>;
}

/// The maze (MST + congestion-aware A*) router (the seed kernel).
pub struct MazeRouter;

impl GlobalRouter for MazeRouter {
    fn kind(&self) -> RouterKind {
        RouterKind::Maze
    }

    fn route(
        &self,
        netlist: &Netlist,
        placement: &Placement,
        lib: &StdCellLibrary,
        options: &RouteOptions,
    ) -> Result<Routing, RouteError> {
        route(netlist, placement, lib, options)
    }
}

/// The Steiner-tree constructor (1-Steiner / HPWL-spine + L embedding).
pub struct SteinerRouter;

impl GlobalRouter for SteinerRouter {
    fn kind(&self) -> RouterKind {
        RouterKind::Steiner
    }

    fn route(
        &self,
        netlist: &Netlist,
        placement: &Placement,
        lib: &StdCellLibrary,
        options: &RouteOptions,
    ) -> Result<Routing, RouteError> {
        route_steiner(netlist, placement, lib, options)
    }
}

/// Name-addressed global-routing kernel selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RouterKind {
    /// MST decomposition + congestion-aware A* (seed behaviour).
    #[default]
    Maze,
    /// Rectilinear Steiner trees feeding the same negotiation rounds.
    Steiner,
}

impl RouterKind {
    /// All registered kernels, in canonical order.
    pub const ALL: [RouterKind; 2] = [RouterKind::Maze, RouterKind::Steiner];

    /// The canonical kernel name (used in profiles, CLI and manifests).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RouterKind::Maze => "maze",
            RouterKind::Steiner => "steiner",
        }
    }

    /// Looks a kernel up by name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.name() == name)
    }

    /// The kernel implementation behind this kind.
    #[must_use]
    pub fn router(self) -> &'static dyn GlobalRouter {
        match self {
            RouterKind::Maze => &MazeRouter,
            RouterKind::Steiner => &SteinerRouter,
        }
    }

    /// Routes a placed netlist with this kernel.
    ///
    /// # Errors
    ///
    /// Same contract as [`crate::route`].
    pub fn route(
        self,
        netlist: &Netlist,
        placement: &Placement,
        lib: &StdCellLibrary,
        options: &RouteOptions,
    ) -> Result<Routing, RouteError> {
        self.router().route(netlist, placement, lib, options)
    }
}

impl fmt::Display for RouterKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Serialize for RouterKind {
    fn to_value(&self) -> Value {
        Value::Str(self.name().to_string())
    }
}

impl Deserialize for RouterKind {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            // Pre-kernel-selection documents have no router field.
            Value::Null => Ok(RouterKind::default()),
            Value::Str(name) => RouterKind::from_name(name)
                .ok_or_else(|| Error::new(format!("unknown router `{name}`"))),
            other => Err(Error::new(format!(
                "expected router name, got {}",
                other.kind()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for kind in RouterKind::ALL {
            assert_eq!(RouterKind::from_name(kind.name()), Some(kind));
            assert_eq!(kind.router().kind(), kind);
            assert_eq!(format!("{kind}"), kind.name());
        }
        assert_eq!(RouterKind::from_name("teleport"), None);
    }

    #[test]
    fn serde_defaults_missing_to_maze() {
        assert_eq!(
            RouterKind::from_value(&Value::Null).unwrap(),
            RouterKind::Maze
        );
        let json = serde::json::to_string(&RouterKind::Steiner);
        assert_eq!(json, "\"steiner\"");
        let back: RouterKind = serde::json::from_str(&json).unwrap();
        assert_eq!(back, RouterKind::Steiner);
        assert!(serde::json::from_str::<RouterKind>("\"nope\"").is_err());
    }
}
