//! # chipforge-route
//!
//! Grid-based global routing with congestion negotiation.
//!
//! The router tessellates the core area into gcells and derives per-edge
//! track capacities from the node's routing pitches and metal-layer
//! count. Two pluggable kernels behind the [`GlobalRouter`] trait
//! (selected by [`RouterKind`]) construct each net's first-pass topology:
//!
//! * `maze` ([`route`]) — breaks every multi-pin net into two-pin
//!   segments along a minimum spanning tree and routes each segment with
//!   congestion-aware A*;
//! * `steiner` ([`route_steiner`]) — builds a FLUTE-style rectilinear
//!   Steiner tree (iterated 1-Steiner for low-degree nets, HPWL spine
//!   for high fan-out) and embeds it as congestion-aware L-shapes,
//!   skipping the per-segment search entirely.
//!
//! Either way, overflowed nets are ripped up and rerouted with
//! escalating history costs (a simplified PathFinder negotiation).
//!
//! The result reports per-net wirelength (used to back-annotate wire
//! capacitance into `chipforge-sta`-style timing), via counts, the
//! congestion map and any remaining overflow.
//!
//! ## Example
//!
//! ```
//! use chipforge_hdl::designs;
//! use chipforge_pdk::{LibraryKind, StdCellLibrary, TechnologyNode};
//! use chipforge_synth::{synthesize, SynthOptions};
//! use chipforge_place::{place, PlacementOptions};
//! use chipforge_route::{route, RouteOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let module = designs::counter(8).elaborate()?;
//! let lib = StdCellLibrary::generate(TechnologyNode::N130, LibraryKind::Open);
//! let netlist = synthesize(&module, &lib, &SynthOptions::default())?.netlist;
//! let placement = place(&netlist, &lib, &PlacementOptions::default())?;
//! let routing = route(&netlist, &placement, &lib, &RouteOptions::default())?;
//! assert!(routing.total_wirelength_um() > 0.0);
//! assert_eq!(routing.overflowed_edges(), 0, "small designs route cleanly");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod grid;
mod kernel;
mod maze;
mod steiner;

pub use grid::{GcellGrid, GridCoord};
pub use kernel::{GlobalRouter, MazeRouter, RouterKind, SteinerRouter};
pub use maze::{route, RouteError, RouteOptions, RoutedNet, Routing};
pub use steiner::{route_steiner, steiner_tree};
