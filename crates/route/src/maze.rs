//! Congestion-negotiated maze routing.

use crate::grid::{GcellGrid, GridCoord};
use chipforge_netlist::{NetDriver, NetId, Netlist};
use chipforge_pdk::StdCellLibrary;
use chipforge_place::Placement;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::error::Error;
use std::fmt;

/// Options for [`route`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouteOptions {
    /// Gcell edge length in µm (0 = derive ~15 routing pitches).
    pub gcell_um: f64,
    /// Maximum rip-up-and-reroute iterations.
    pub max_iterations: usize,
}

impl Default for RouteOptions {
    fn default() -> Self {
        Self {
            gcell_um: 0.0,
            max_iterations: 4,
        }
    }
}

/// A routed net.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutedNet {
    /// The net.
    pub net: NetId,
    /// Gcell-to-gcell edges used (each pair is one unit of wire).
    pub edges: Vec<(GridCoord, GridCoord)>,
    /// Total wirelength in µm.
    pub wirelength_um: f64,
    /// Estimated vias (bends in the route plus pin hops).
    pub vias: usize,
}

/// The result of global routing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Routing {
    grid: GcellGrid,
    nets: Vec<RoutedNet>,
    iterations: usize,
}

impl Routing {
    /// The final congestion grid.
    #[must_use]
    pub fn grid(&self) -> &GcellGrid {
        &self.grid
    }

    /// Per-net routes.
    #[must_use]
    pub fn nets(&self) -> &[RoutedNet] {
        &self.nets
    }

    /// Rip-up iterations used.
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Total wirelength in µm.
    #[must_use]
    pub fn total_wirelength_um(&self) -> f64 {
        self.nets.iter().map(|n| n.wirelength_um).sum()
    }

    /// Total via estimate.
    #[must_use]
    pub fn total_vias(&self) -> usize {
        self.nets.iter().map(|n| n.vias).sum()
    }

    /// Remaining overflowed edges after negotiation.
    #[must_use]
    pub fn overflowed_edges(&self) -> usize {
        self.grid.overflowed_edges()
    }

    /// Peak congestion (usage / capacity).
    #[must_use]
    pub fn peak_congestion(&self) -> f64 {
        self.grid.peak_congestion()
    }

    /// Per-net wire capacitance in fF for timing back-annotation.
    #[must_use]
    pub fn wire_caps_ff(&self, lib: &StdCellLibrary) -> HashMap<NetId, f64> {
        let cap_per_um = lib.node().wire_cap_ff_per_um();
        self.nets
            .iter()
            .map(|n| (n.net, n.wirelength_um * cap_per_um))
            .collect()
    }
}

/// Errors from routing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RouteError {
    /// The placement belongs to a different netlist (cell count mismatch).
    PlacementMismatch,
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::PlacementMismatch => {
                write!(f, "placement does not match the netlist")
            }
        }
    }
}

impl Error for RouteError {}

/// How the first routing pass constructs each net's topology. Later
/// negotiation rounds always repair overflow with congestion-aware A*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum InitialTopology {
    /// MST decomposition + A* per two-pin segment (seed behaviour).
    MazeAstar,
    /// Rectilinear Steiner tree embedded as congestion-aware L-shapes.
    SteinerTree,
}

/// Globally routes a placed netlist with the maze (A*) kernel.
///
/// # Errors
///
/// Returns [`RouteError::PlacementMismatch`] if `placement` was produced
/// from a different netlist.
pub fn route(
    netlist: &Netlist,
    placement: &Placement,
    lib: &StdCellLibrary,
    options: &RouteOptions,
) -> Result<Routing, RouteError> {
    drive(netlist, placement, lib, options, InitialTopology::MazeAstar)
}

/// The shared congestion-negotiation driver: builds the grid, collects
/// pins, runs the first pass with the requested topology and then
/// PathFinder-style rip-up-and-reroute rounds.
pub(crate) fn drive(
    netlist: &Netlist,
    placement: &Placement,
    lib: &StdCellLibrary,
    options: &RouteOptions,
    topology: InitialTopology,
) -> Result<Routing, RouteError> {
    if placement.cells().len() != netlist.cell_count() {
        return Err(RouteError::PlacementMismatch);
    }
    let fp = placement.floorplan();
    let gcell = if options.gcell_um > 0.0 {
        options.gcell_um
    } else {
        let rules = chipforge_pdk::DesignRules::for_node(lib.node());
        (rules.routing_pitch_um(2) * 15.0).max(fp.row_height_um())
    };
    let mut grid = GcellGrid::new(fp.core_width_um(), fp.core_height_um(), gcell, lib);

    // Collect pin gcells per net.
    let mut pins: Vec<Vec<GridCoord>> = vec![Vec::new(); netlist.net_count()];
    for net in netlist.nets() {
        let mut add = |x: f64, y: f64| {
            let c = grid.coord_of(x, y);
            if !pins[net.id().index()].contains(&c) {
                pins[net.id().index()].push(c);
            }
        };
        match net.driver() {
            Some(NetDriver::Cell(cell)) => {
                let p = placement.cell(cell);
                add(p.center_x_um(), p.center_y_um());
            }
            Some(NetDriver::Input(port)) => {
                let (_, x, y) = &placement.ports()[port];
                add(*x, *y);
            }
            None => {}
        }
        for &(sink, _) in net.sinks() {
            let p = placement.cell(sink);
            add(p.center_x_um(), p.center_y_um());
        }
    }

    let mut routes: Vec<Option<RoutedNet>> = vec![None; netlist.net_count()];
    let mut history: HashMap<(GridCoord, GridCoord), f64> = HashMap::new();
    let mut iterations = 0usize;

    // Initial routing pass + negotiation rounds.
    for round in 0..options.max_iterations.max(1) {
        iterations = round + 1;
        let mut any_routed = false;
        for net in netlist.nets() {
            let idx = net.id().index();
            let needs_route = match &routes[idx] {
                None => pins[idx].len() >= 2,
                Some(r) => r.edges.iter().any(|(a, b)| {
                    let (u, c) = grid.edge_usage(*a, *b);
                    u > c
                }),
            };
            if !needs_route {
                continue;
            }
            // Rip up the old route.
            if let Some(old) = routes[idx].take() {
                for (a, b) in &old.edges {
                    grid.add_usage(*a, *b, -1);
                    *history.entry(edge_key(*a, *b)).or_insert(0.0) += 1.0;
                }
            }
            // Steiner topology re-embeds through every round but the
            // last: congestion-gated detour candidates resolve most
            // overflow at a fraction of A*'s cost, and the final round
            // falls back to full negotiated search as the convergence
            // backstop.
            let final_round = round + 1 == options.max_iterations.max(1);
            let use_embed =
                topology == InitialTopology::SteinerTree && (round == 0 || !final_round);
            let routed = if use_embed {
                crate::steiner::embed_net(&grid, &pins[idx])
            } else {
                route_net(&mut grid, &pins[idx], &history, round)
            };
            if let Some(edges) = routed {
                for (a, b) in &edges {
                    grid.add_usage(*a, *b, 1);
                }
                let vias = count_bends(&edges) + pins[idx].len();
                routes[idx] = Some(RoutedNet {
                    net: net.id(),
                    wirelength_um: edges.len() as f64 * grid.gcell_um(),
                    edges,
                    vias,
                });
                any_routed = true;
            }
        }
        if grid.overflowed_edges() == 0 {
            break;
        }
        if !any_routed {
            break;
        }
    }

    let nets: Vec<RoutedNet> = routes.into_iter().flatten().collect();
    Ok(Routing {
        grid,
        nets,
        iterations,
    })
}

pub(crate) fn edge_key(a: GridCoord, b: GridCoord) -> (GridCoord, GridCoord) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

fn count_bends(edges: &[(GridCoord, GridCoord)]) -> usize {
    let mut bends = 0;
    for pair in edges.windows(2) {
        let h0 = pair[0].0.y == pair[0].1.y;
        let h1 = pair[1].0.y == pair[1].1.y;
        if h0 != h1 {
            bends += 1;
        }
    }
    bends
}

/// Routes one multi-pin net: MST decomposition + A* per two-pin segment.
fn route_net(
    grid: &mut GcellGrid,
    pins: &[GridCoord],
    history: &HashMap<(GridCoord, GridCoord), f64>,
    round: usize,
) -> Option<Vec<(GridCoord, GridCoord)>> {
    if pins.len() < 2 {
        return None;
    }
    // Prim's MST over pin Manhattan distances.
    let mut in_tree = vec![false; pins.len()];
    in_tree[0] = true;
    let mut segments = Vec::new();
    for _ in 1..pins.len() {
        let mut best: Option<(usize, usize, u32)> = None;
        for (i, &a) in pins.iter().enumerate() {
            if !in_tree[i] {
                continue;
            }
            for (j, &b) in pins.iter().enumerate() {
                if in_tree[j] {
                    continue;
                }
                let d = a.manhattan(b);
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((i, j, d));
                }
            }
        }
        let (i, j, _) = best.expect("tree is connected");
        in_tree[j] = true;
        segments.push((pins[i], pins[j]));
    }
    // A* each segment.
    let mut edges = Vec::new();
    for (src, dst) in segments {
        let path = astar(grid, src, dst, history, round)?;
        for pair in path.windows(2) {
            edges.push((pair[0], pair[1]));
        }
    }
    Some(edges)
}

/// Congestion-aware A* between two gcells.
fn astar(
    grid: &GcellGrid,
    src: GridCoord,
    dst: GridCoord,
    history: &HashMap<(GridCoord, GridCoord), f64>,
    round: usize,
) -> Option<Vec<GridCoord>> {
    #[derive(PartialEq)]
    struct Entry(f64, GridCoord);
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.partial_cmp(&other.0).expect("finite costs")
        }
    }

    let mut dist: HashMap<GridCoord, f64> = HashMap::new();
    let mut prev: HashMap<GridCoord, GridCoord> = HashMap::new();
    let mut heap = BinaryHeap::new();
    dist.insert(src, 0.0);
    heap.push(Reverse(Entry(src.manhattan(dst) as f64, src)));
    let congestion_weight = 2.0 + 2.0 * round as f64;
    while let Some(Reverse(Entry(_, current))) = heap.pop() {
        if current == dst {
            let mut path = vec![dst];
            let mut c = dst;
            while let Some(&p) = prev.get(&c) {
                path.push(p);
                c = p;
            }
            path.reverse();
            return Some(path);
        }
        let d_current = dist[&current];
        for next in grid.neighbors(current) {
            let (usage, capacity) = grid.edge_usage(current, next);
            let u = f64::from(usage) / f64::from(capacity);
            let over = if usage >= capacity {
                congestion_weight * 4.0
            } else {
                0.0
            };
            let hist = history
                .get(&edge_key(current, next))
                .copied()
                .unwrap_or(0.0);
            let cost = 1.0 + congestion_weight * u * u + over + 0.5 * hist;
            let nd = d_current + cost;
            if dist.get(&next).is_none_or(|&old| nd < old) {
                dist.insert(next, nd);
                prev.insert(next, current);
                heap.push(Reverse(Entry(nd + next.manhattan(dst) as f64, next)));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipforge_hdl::designs;
    use chipforge_pdk::{LibraryKind, TechnologyNode};
    use chipforge_place::{place, PlacementOptions};
    use chipforge_synth::{synthesize, SynthOptions};

    fn lib() -> StdCellLibrary {
        StdCellLibrary::generate(TechnologyNode::N130, LibraryKind::Open)
    }

    fn place_and_route(design: chipforge_hdl::designs::Design) -> (Netlist, Routing) {
        let lib = lib();
        let module = design.elaborate().unwrap();
        let netlist = synthesize(&module, &lib, &SynthOptions::default())
            .unwrap()
            .netlist;
        let placement = place(&netlist, &lib, &PlacementOptions::default()).unwrap();
        let routing = route(&netlist, &placement, &lib, &RouteOptions::default()).unwrap();
        (netlist, routing)
    }

    #[test]
    fn suite_routes_without_overflow() {
        for design in designs::suite() {
            let (netlist, routing) = place_and_route(design.clone());
            assert_eq!(
                routing.overflowed_edges(),
                0,
                "{} overflows (peak {})",
                design.name(),
                routing.peak_congestion()
            );
            // Every multi-pin net got a route.
            let multi_pin = netlist
                .nets()
                .filter(|n| n.driver().is_some() && n.fanout() > 0)
                .count();
            assert!(routing.nets().len() <= multi_pin);
            assert!(routing.total_wirelength_um() > 0.0, "{}", design.name());
        }
    }

    #[test]
    fn routes_are_connected_paths() {
        let (_, routing) = place_and_route(designs::counter(8));
        for net in routing.nets() {
            for (a, b) in &net.edges {
                assert_eq!(a.manhattan(*b), 1, "edges join adjacent gcells");
            }
        }
    }

    #[test]
    fn wire_caps_scale_with_length() {
        let lib = lib();
        let (_, routing) = place_and_route(designs::alu(8));
        let caps = routing.wire_caps_ff(&lib);
        for net in routing.nets() {
            let cap = caps[&net.net];
            assert!((cap - net.wirelength_um * lib.node().wire_cap_ff_per_um()).abs() < 1e-9);
        }
    }

    #[test]
    fn larger_designs_use_more_wire() {
        let (_, small) = place_and_route(designs::counter(8));
        let (_, big) = place_and_route(designs::fir4(8));
        assert!(big.total_wirelength_um() > small.total_wirelength_um());
    }

    #[test]
    fn astar_finds_straight_line() {
        let lib = lib();
        let grid = GcellGrid::new(100.0, 100.0, 10.0, &lib);
        let path = astar(
            &grid,
            GridCoord::new(0, 0),
            GridCoord::new(5, 0),
            &HashMap::new(),
            0,
        )
        .unwrap();
        assert_eq!(path.len(), 6);
    }

    #[test]
    fn placement_mismatch_rejected() {
        let lib = lib();
        let module = designs::counter(8).elaborate().unwrap();
        let netlist = synthesize(&module, &lib, &SynthOptions::default())
            .unwrap()
            .netlist;
        let placement = place(&netlist, &lib, &PlacementOptions::default()).unwrap();
        let other = Netlist::new("other");
        let err = route(&other, &placement, &lib, &RouteOptions::default()).unwrap_err();
        assert_eq!(err, RouteError::PlacementMismatch);
    }
}
