//! FLUTE-style rectilinear Steiner-tree construction.
//!
//! Low-degree nets (the vast majority) get an iterated 1-Steiner tree:
//! start from the pin MST, then greedily insert Hanan-grid points while
//! they shorten the tree — the classic Kahng/Robins heuristic that
//! lookup-table routers like FLUTE approximate. High-degree nets fall
//! back to an HPWL spine (median-x trunk with per-pin branches). Tree
//! segments are embedded into the gcell grid as L-shapes, choosing each
//! bend orientation by current congestion, and the embedded nets feed the
//! same PathFinder negotiation rounds as the maze kernel.

use crate::grid::{GcellGrid, GridCoord};
use crate::maze::{drive, edge_key, InitialTopology, RouteError, RouteOptions, Routing};
use chipforge_netlist::Netlist;
use chipforge_pdk::StdCellLibrary;
use chipforge_place::Placement;
use std::collections::HashSet;

/// Nets with more pins than this skip the 1-Steiner search and use the
/// HPWL-spine topology instead.
pub(crate) const STEINER_PIN_LIMIT: usize = 8;

/// Globally routes a placed netlist with the Steiner-tree kernel.
///
/// # Errors
///
/// Returns [`RouteError::PlacementMismatch`] if `placement` was produced
/// from a different netlist.
pub fn route_steiner(
    netlist: &Netlist,
    placement: &Placement,
    lib: &StdCellLibrary,
    options: &RouteOptions,
) -> Result<Routing, RouteError> {
    drive(
        netlist,
        placement,
        lib,
        options,
        InitialTopology::SteinerTree,
    )
}

/// Builds a rectilinear Steiner tree over `pins`, returned as
/// axis-independent point-to-point segments whose Manhattan lengths sum
/// to the tree wirelength. Duplicate pins are ignored; fewer than two
/// distinct pins yield an empty tree.
#[must_use]
pub fn steiner_tree(pins: &[GridCoord]) -> Vec<(GridCoord, GridCoord)> {
    let mut points: Vec<GridCoord> = Vec::new();
    for &p in pins {
        if !points.contains(&p) {
            points.push(p);
        }
    }
    if points.len() < 2 {
        return Vec::new();
    }
    if points.len() > STEINER_PIN_LIMIT {
        return spine_tree(&points);
    }
    let terminals = points.len();

    // Iterated 1-Steiner: add the Hanan-grid point that shrinks the MST
    // the most, until no candidate helps. `terminals - 2` Steiner points
    // always suffice for an optimal tree, so the loop is bounded.
    let mut best_len = mst_length(&points);
    for _ in 0..terminals.saturating_sub(2) {
        let mut best: Option<(GridCoord, u64)> = None;
        for candidate in hanan_candidates(&points) {
            points.push(candidate);
            let len = mst_length(&points);
            points.pop();
            if len < best_len && best.is_none_or(|(_, b)| len < b) {
                best = Some((candidate, len));
            }
        }
        match best {
            Some((candidate, len)) => {
                points.push(candidate);
                best_len = len;
            }
            None => break,
        }
    }

    // Build the final MST and prune useless (degree <= 1) Steiner points.
    let mut edges = mst_edges(&points);
    loop {
        let mut degree = vec![0usize; points.len()];
        for &(a, b) in &edges {
            degree[a] += 1;
            degree[b] += 1;
        }
        let prune = (terminals..points.len()).find(|&i| degree[i] <= 1);
        match prune {
            Some(i) => {
                edges.retain(|&(a, b)| a != i && b != i);
                for e in &mut edges {
                    if e.0 > i {
                        e.0 -= 1;
                    }
                    if e.1 > i {
                        e.1 -= 1;
                    }
                }
                points.remove(i);
            }
            None => break,
        }
    }
    edges
        .into_iter()
        .map(|(a, b)| (points[a], points[b]))
        .collect()
}

/// HPWL-spine topology for high-degree nets: a vertical trunk at the
/// median pin x, with a horizontal branch per pin.
fn spine_tree(points: &[GridCoord]) -> Vec<(GridCoord, GridCoord)> {
    let mut xs: Vec<u16> = points.iter().map(|p| p.x).collect();
    xs.sort_unstable();
    let trunk_x = xs[xs.len() / 2];
    let min_y = points.iter().map(|p| p.y).min().expect("non-empty");
    let max_y = points.iter().map(|p| p.y).max().expect("non-empty");
    let mut edges = Vec::with_capacity(points.len() + 1);
    if min_y != max_y {
        edges.push((
            GridCoord::new(trunk_x, min_y),
            GridCoord::new(trunk_x, max_y),
        ));
    }
    for &p in points {
        if p.x != trunk_x {
            edges.push((p, GridCoord::new(trunk_x, p.y)));
        }
    }
    edges
}

/// Total Manhattan MST length over a point set (Prim's algorithm).
fn mst_length(points: &[GridCoord]) -> u64 {
    let n = points.len();
    let mut in_tree = vec![false; n];
    let mut dist = vec![u32::MAX; n];
    in_tree[0] = true;
    for j in 1..n {
        dist[j] = points[0].manhattan(points[j]);
    }
    let mut total = 0u64;
    for _ in 1..n {
        let mut best = usize::MAX;
        let mut best_d = u32::MAX;
        for j in 0..n {
            if !in_tree[j] && dist[j] < best_d {
                best = j;
                best_d = dist[j];
            }
        }
        in_tree[best] = true;
        total += u64::from(best_d);
        for j in 0..n {
            if !in_tree[j] {
                let d = points[best].manhattan(points[j]);
                if d < dist[j] {
                    dist[j] = d;
                }
            }
        }
    }
    total
}

/// MST edge list as index pairs (Prim's algorithm).
fn mst_edges(points: &[GridCoord]) -> Vec<(usize, usize)> {
    let n = points.len();
    let mut in_tree = vec![false; n];
    let mut dist = vec![u32::MAX; n];
    let mut parent = vec![0usize; n];
    in_tree[0] = true;
    for j in 1..n {
        dist[j] = points[0].manhattan(points[j]);
    }
    let mut edges = Vec::with_capacity(n - 1);
    for _ in 1..n {
        let mut best = usize::MAX;
        let mut best_d = u32::MAX;
        for j in 0..n {
            if !in_tree[j] && dist[j] < best_d {
                best = j;
                best_d = dist[j];
            }
        }
        in_tree[best] = true;
        edges.push((parent[best], best));
        for j in 0..n {
            if !in_tree[j] {
                let d = points[best].manhattan(points[j]);
                if d < dist[j] {
                    dist[j] = d;
                    parent[j] = best;
                }
            }
        }
    }
    edges
}

/// Hanan-grid candidates: intersections of the points' x and y
/// coordinates that are not already in the set.
fn hanan_candidates(points: &[GridCoord]) -> Vec<GridCoord> {
    let mut xs: Vec<u16> = points.iter().map(|p| p.x).collect();
    let mut ys: Vec<u16> = points.iter().map(|p| p.y).collect();
    xs.sort_unstable();
    xs.dedup();
    ys.sort_unstable();
    ys.dedup();
    let mut out = Vec::new();
    for &x in &xs {
        for &y in &ys {
            let c = GridCoord::new(x, y);
            if !points.contains(&c) {
                out.push(c);
            }
        }
    }
    out
}

/// Embeds a net's Steiner tree into the grid as unit gcell edges,
/// choosing each segment's embedding (two L-bends plus two staircase
/// Z-shapes through the segment midpoint) by current congestion.
/// Returns `None` for nets with fewer than two distinct pins (mirroring
/// the maze kernel's contract).
pub(crate) fn embed_net(
    grid: &GcellGrid,
    pins: &[GridCoord],
) -> Option<Vec<(GridCoord, GridCoord)>> {
    let tree = steiner_tree(pins);
    if tree.is_empty() {
        return None;
    }
    let mut edges = Vec::new();
    let mut seen: HashSet<(GridCoord, GridCoord)> = HashSet::new();
    for (a, b) in tree {
        let mut best: Option<(f64, Vec<(GridCoord, GridCoord)>)> = None;
        for corners in basic_candidates(a, b) {
            let path = path_edges(&corners);
            let limit = best.as_ref().map(|(c, _)| *c);
            if let Some(cost) = path_cost(grid, &path, limit) {
                best = Some((cost, path));
            }
        }
        let (mut cost, mut path) = best.expect("segments have at least one embedding");
        // Only a segment whose best in-bbox embedding would land on an
        // at-capacity edge pays for evaluating the out-of-bbox detours;
        // in the common uncongested case the bbox candidates are optimal
        // and the detours cannot win.
        if path.iter().any(|&(u, v)| {
            let (usage, capacity) = grid.edge_usage(u, v);
            usage >= capacity
        }) {
            for corners in detour_candidates(grid, a, b) {
                let detour = path_edges(&corners);
                if let Some(c) = path_cost(grid, &detour, Some(cost)) {
                    cost = c;
                    path = detour;
                }
            }
        }
        for edge in path {
            if seen.insert(edge_key(edge.0, edge.1)) {
                edges.push(edge);
            }
        }
    }
    Some(edges)
}

/// Bounding-box candidate embeddings for one tree segment, as corner
/// sequences: the two L-bends and the two midpoint staircases.
/// Straight segments admit exactly one embedding, and staircases whose
/// midpoint lands on an endpoint collapse into the L-shapes, so the
/// degenerate cases are dropped rather than costed twice.
fn basic_candidates(a: GridCoord, b: GridCoord) -> Vec<Vec<GridCoord>> {
    if a.x == b.x || a.y == b.y {
        return vec![vec![a, b]];
    }
    let mut candidates = vec![
        vec![a, GridCoord::new(b.x, a.y), b],
        vec![a, GridCoord::new(a.x, b.y), b],
    ];
    if a.x.abs_diff(b.x) > 1 {
        let xm = a.x.min(b.x) + a.x.abs_diff(b.x) / 2;
        candidates.push(vec![a, GridCoord::new(xm, a.y), GridCoord::new(xm, b.y), b]);
    }
    if a.y.abs_diff(b.y) > 1 {
        let ym = a.y.min(b.y) + a.y.abs_diff(b.y) / 2;
        candidates.push(vec![a, GridCoord::new(a.x, ym), GridCoord::new(b.x, ym), b]);
    }
    candidates
}

/// U-shaped detours via the rows/columns outside the segment's bounding
/// box — the only way an embedding can escape a saturated channel the
/// way the maze kernel's A* search would.
fn detour_candidates(grid: &GcellGrid, a: GridCoord, b: GridCoord) -> Vec<Vec<GridCoord>> {
    let mut candidates = Vec::new();
    for d in [1u16, 3, 6] {
        let below = a.y.min(b.y).checked_sub(d);
        let above = (a.y.max(b.y) + d < grid.height()).then(|| a.y.max(b.y) + d);
        for y in below.into_iter().chain(above) {
            candidates.push(vec![a, GridCoord::new(a.x, y), GridCoord::new(b.x, y), b]);
        }
        let left = a.x.min(b.x).checked_sub(d);
        let right = (a.x.max(b.x) + d < grid.width()).then(|| a.x.max(b.x) + d);
        for x in left.into_iter().chain(right) {
            candidates.push(vec![a, GridCoord::new(x, a.y), GridCoord::new(x, b.y), b]);
        }
    }
    candidates
}

/// Unit edges of the axis-aligned polyline through `corners`.
fn path_edges(corners: &[GridCoord]) -> Vec<(GridCoord, GridCoord)> {
    let mut edges = Vec::new();
    for pair in corners.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        if a.y == b.y {
            for x in a.x.min(b.x)..a.x.max(b.x) {
                edges.push((GridCoord::new(x, a.y), GridCoord::new(x + 1, a.y)));
            }
        } else {
            for y in a.y.min(b.y)..a.y.max(b.y) {
                edges.push((GridCoord::new(a.x, y), GridCoord::new(a.x, y + 1)));
            }
        }
    }
    edges
}

/// Base cost per unit edge, so detours only win under congestion.
const EDGE_COST: f64 = 0.25;

/// Cost of one candidate embedding: [`EDGE_COST`] per unit edge plus
/// squared utilization and a flat penalty per edge already at capacity.
/// Returns `None` as soon as the running total exceeds `limit`, so
/// losing candidates are abandoned early.
fn path_cost(grid: &GcellGrid, path: &[(GridCoord, GridCoord)], limit: Option<f64>) -> Option<f64> {
    let mut total = 0.0;
    for &(u, v) in path {
        let (usage, capacity) = grid.edge_usage(u, v);
        let util = f64::from(usage) / f64::from(capacity);
        total += EDGE_COST + util * util + if usage >= capacity { 4.0 } else { 0.0 };
        if limit.is_some_and(|l| total >= l) {
            return None;
        }
    }
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maze::route;
    use chipforge_hdl::designs;
    use chipforge_pdk::{LibraryKind, StdCellLibrary, TechnologyNode};
    use chipforge_place::{place, PlacementOptions};
    use chipforge_synth::{synthesize, SynthOptions};

    fn lib() -> StdCellLibrary {
        StdCellLibrary::generate(TechnologyNode::N130, LibraryKind::Open)
    }

    fn tree_length(edges: &[(GridCoord, GridCoord)]) -> u64 {
        edges.iter().map(|&(a, b)| u64::from(a.manhattan(b))).sum()
    }

    #[test]
    fn steiner_beats_or_matches_the_mst() {
        // The textbook case: 4 corner pins. The MST needs 3 full sides
        // (30 units on a 10x10 square); the Steiner tree adds points and
        // does better.
        let pins = [
            GridCoord::new(0, 0),
            GridCoord::new(10, 0),
            GridCoord::new(0, 10),
            GridCoord::new(10, 10),
        ];
        let tree = steiner_tree(&pins);
        assert!(!tree.is_empty());
        assert!(tree_length(&tree) <= 30, "length {}", tree_length(&tree));
    }

    #[test]
    fn degenerate_nets_yield_empty_trees() {
        assert!(steiner_tree(&[]).is_empty());
        assert!(steiner_tree(&[GridCoord::new(3, 3)]).is_empty());
        assert!(steiner_tree(&[GridCoord::new(3, 3), GridCoord::new(3, 3)]).is_empty());
    }

    #[test]
    fn high_degree_nets_use_the_spine() {
        let pins: Vec<GridCoord> = (0..12u16).map(|i| GridCoord::new(i, i % 4)).collect();
        let tree = steiner_tree(&pins);
        assert!(!tree.is_empty());
        // The spine spans every pin: walking the embedded unit edges
        // reaches all of them.
        let lib = lib();
        let grid = GcellGrid::new(200.0, 200.0, 10.0, &lib);
        let edges = embed_net(&grid, &pins).expect("embeds");
        let mut reach: std::collections::HashSet<GridCoord> = std::collections::HashSet::new();
        for (a, b) in &edges {
            reach.insert(*a);
            reach.insert(*b);
        }
        for pin in &pins {
            assert!(reach.contains(pin), "pin {pin:?} not covered");
        }
    }

    #[test]
    fn steiner_routing_matches_maze_quality_on_the_suite() {
        let lib = lib();
        for design in designs::suite() {
            let module = design.elaborate().unwrap();
            let netlist = synthesize(&module, &lib, &SynthOptions::default())
                .unwrap()
                .netlist;
            let placement = place(&netlist, &lib, &PlacementOptions::default()).unwrap();
            let maze = route(&netlist, &placement, &lib, &RouteOptions::default()).unwrap();
            let steiner =
                route_steiner(&netlist, &placement, &lib, &RouteOptions::default()).unwrap();
            assert_eq!(
                steiner.overflowed_edges(),
                0,
                "{} overflows under steiner (peak {})",
                design.name(),
                steiner.peak_congestion()
            );
            assert_eq!(steiner.nets().len(), maze.nets().len(), "{}", design.name());
            // Tree wirelength must stay within a small factor of the
            // maze result (it is usually shorter).
            assert!(
                steiner.total_wirelength_um() <= maze.total_wirelength_um() * 1.10 + 1e-9,
                "{}: steiner {} vs maze {}",
                design.name(),
                steiner.total_wirelength_um(),
                maze.total_wirelength_um()
            );
        }
    }

    #[test]
    fn steiner_routing_is_deterministic() {
        let lib = lib();
        let module = designs::alu(8).elaborate().unwrap();
        let netlist = synthesize(&module, &lib, &SynthOptions::default())
            .unwrap()
            .netlist;
        let placement = place(&netlist, &lib, &PlacementOptions::default()).unwrap();
        let a = route_steiner(&netlist, &placement, &lib, &RouteOptions::default()).unwrap();
        let b = route_steiner(&netlist, &placement, &lib, &RouteOptions::default()).unwrap();
        assert_eq!(a, b);
    }
}
