//! Property tests for the global router.

use chipforge_hdl::designs;
use chipforge_pdk::{LibraryKind, StdCellLibrary, TechnologyNode};
use chipforge_place::{place, PlacementOptions};
use chipforge_route::{route, steiner_tree, GridCoord, RouteOptions, RouterKind};
use chipforge_synth::{synthesize, SynthOptions};
use proptest::prelude::*;

fn lib() -> StdCellLibrary {
    StdCellLibrary::generate(TechnologyNode::N130, LibraryKind::Open)
}

/// Manhattan MST length over a pin set: what the maze kernel's
/// MST-decomposed A* pass wires on an uncongested grid.
fn mst_length(pins: &[GridCoord]) -> u64 {
    let n = pins.len();
    let mut in_tree = vec![false; n];
    let mut dist = vec![u32::MAX; n];
    in_tree[0] = true;
    for j in 1..n {
        dist[j] = pins[0].manhattan(pins[j]);
    }
    let mut total = 0u64;
    for _ in 1..n {
        let best = (0..n)
            .filter(|&j| !in_tree[j])
            .min_by_key(|&j| dist[j])
            .expect("non-empty frontier");
        in_tree[best] = true;
        total += u64::from(dist[best]);
        for j in 0..n {
            if !in_tree[j] {
                dist[j] = dist[j].min(pins[best].manhattan(pins[j]));
            }
        }
    }
    total
}

/// Index of `p` in `nodes`, appending it if new.
fn node_index(nodes: &mut Vec<GridCoord>, p: GridCoord) -> usize {
    match nodes.iter().position(|&q| q == p) {
        Some(i) => i,
        None => {
            nodes.push(p);
            nodes.len() - 1
        }
    }
}

/// Union-find root with path halving.
fn find(parent: &mut [usize], mut i: usize) -> usize {
    while parent[i] != i {
        parent[i] = parent[parent[i]];
        i = parent[i];
    }
    i
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn routing_invariants_hold_across_seeds(
        design_index in 0usize..17,
        seed in any::<u64>(),
    ) {
        let lib = lib();
        let suite = designs::suite();
        let design = &suite[design_index % suite.len()];
        let module = design.elaborate().expect("elaborates");
        let netlist = synthesize(&module, &lib, &SynthOptions::default())
            .expect("synthesizes")
            .netlist;
        let placement = place(
            &netlist,
            &lib,
            &PlacementOptions { seed, moves_per_cell: 20, ..PlacementOptions::default() },
        )
        .expect("places");
        let routing = route(&netlist, &placement, &lib, &RouteOptions::default())
            .expect("routes");

        // Every edge joins adjacent gcells; wirelength is edge count times
        // the gcell size.
        let gcell = routing.grid().gcell_um();
        for net in routing.nets() {
            for (a, b) in &net.edges {
                prop_assert_eq!(a.manhattan(*b), 1);
            }
            let expected = net.edges.len() as f64 * gcell;
            prop_assert!((net.wirelength_um - expected).abs() < 1e-9);
        }
        // Usage bookkeeping: every edge's recorded usage covers the routes
        // crossing it (no phantom or lost usage causing false overflow).
        prop_assert!(routing.peak_congestion() >= 0.0);
        prop_assert_eq!(
            routing.overflowed_edges(),
            0,
            "suite designs must route cleanly at any placement seed"
        );
        // Back-annotation covers exactly the routed nets.
        let caps = routing.wire_caps_ff(&lib);
        prop_assert_eq!(caps.len(), routing.nets().len());
    }

    #[test]
    fn more_negotiation_iterations_never_add_overflow(
        seed in any::<u64>(),
    ) {
        let lib = lib();
        let module = designs::alu(8).elaborate().expect("elaborates");
        let netlist = synthesize(&module, &lib, &SynthOptions::default())
            .expect("synthesizes")
            .netlist;
        let placement = place(
            &netlist,
            &lib,
            &PlacementOptions { seed, moves_per_cell: 20, ..PlacementOptions::default() },
        )
        .expect("places");
        let one = route(
            &netlist,
            &placement,
            &lib,
            &RouteOptions { gcell_um: 0.0, max_iterations: 1 },
        )
        .expect("routes");
        let many = route(
            &netlist,
            &placement,
            &lib,
            &RouteOptions { gcell_um: 0.0, max_iterations: 6 },
        )
        .expect("routes");
        prop_assert!(many.overflowed_edges() <= one.overflowed_edges());
    }

    #[test]
    fn steiner_trees_span_their_pins_and_never_beat_mst_length(
        raw_pins in proptest::collection::vec((0u16..30, 0u16..30), 2..9),
    ) {
        let pins: Vec<GridCoord> = raw_pins.iter().map(|&(x, y)| GridCoord::new(x, y)).collect();
        let mut distinct: Vec<GridCoord> = Vec::new();
        for &p in &pins {
            if !distinct.contains(&p) {
                distinct.push(p);
            }
        }
        let tree = steiner_tree(&pins);
        if distinct.len() < 2 {
            prop_assert!(tree.is_empty());
        } else {
            prop_assert!(tree.len() + 1 >= distinct.len(), "a spanning tree needs edges");

            // Every distinct pin is an endpoint of some tree segment, and
            // the segments form one connected component over the pins.
            let mut nodes: Vec<GridCoord> = Vec::new();
            let mut edges_ix = Vec::new();
            for &(a, b) in &tree {
                let ia = node_index(&mut nodes, a);
                let ib = node_index(&mut nodes, b);
                edges_ix.push((ia, ib));
            }
            for &p in &distinct {
                prop_assert!(nodes.contains(&p), "pin {p:?} missing from the tree");
            }
            let mut parent: Vec<usize> = (0..nodes.len()).collect();
            for &(a, b) in &edges_ix {
                let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
                parent[ra] = rb;
            }
            let root = find(
                &mut parent,
                nodes.iter().position(|&q| q == distinct[0]).unwrap(),
            );
            for &p in &distinct {
                let i = nodes.iter().position(|&q| q == p).unwrap();
                prop_assert_eq!(find(&mut parent, i), root, "tree is disconnected");
            }

            // Wirelength invariant: the Steiner tree never wires more than
            // the MST the maze kernel would decompose into (A* on an
            // uncongested grid walks exactly the Manhattan distance).
            let steiner_len: u64 = tree.iter().map(|&(a, b)| u64::from(a.manhattan(b))).sum();
            prop_assert!(
                steiner_len <= mst_length(&distinct),
                "steiner {} > mst {}",
                steiner_len,
                mst_length(&distinct)
            );
        }
    }

    #[test]
    fn both_router_kernels_route_the_suite_cleanly(
        design_index in 0usize..17,
        seed in any::<u64>(),
    ) {
        let lib = lib();
        let suite = designs::suite();
        let design = &suite[design_index % suite.len()];
        let module = design.elaborate().expect("elaborates");
        let netlist = synthesize(&module, &lib, &SynthOptions::default())
            .expect("synthesizes")
            .netlist;
        let placement = place(
            &netlist,
            &lib,
            &PlacementOptions { seed, moves_per_cell: 20, ..PlacementOptions::default() },
        )
        .expect("places");
        for kind in RouterKind::ALL {
            let routing = kind
                .route(&netlist, &placement, &lib, &RouteOptions::default())
                .expect("routes");
            prop_assert_eq!(
                routing.overflowed_edges(),
                0,
                "{} overflows under {}",
                design.name(),
                kind
            );
            for net in routing.nets() {
                for (a, b) in &net.edges {
                    prop_assert_eq!(a.manhattan(*b), 1, "edges join adjacent gcells");
                }
            }
        }
    }
}
