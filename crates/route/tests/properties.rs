//! Property tests for the global router.

use chipforge_hdl::designs;
use chipforge_pdk::{LibraryKind, StdCellLibrary, TechnologyNode};
use chipforge_place::{place, PlacementOptions};
use chipforge_route::{route, RouteOptions};
use chipforge_synth::{synthesize, SynthOptions};
use proptest::prelude::*;

fn lib() -> StdCellLibrary {
    StdCellLibrary::generate(TechnologyNode::N130, LibraryKind::Open)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn routing_invariants_hold_across_seeds(
        design_index in 0usize..17,
        seed in any::<u64>(),
    ) {
        let lib = lib();
        let suite = designs::suite();
        let design = &suite[design_index % suite.len()];
        let module = design.elaborate().expect("elaborates");
        let netlist = synthesize(&module, &lib, &SynthOptions::default())
            .expect("synthesizes")
            .netlist;
        let placement = place(
            &netlist,
            &lib,
            &PlacementOptions { seed, moves_per_cell: 20, ..PlacementOptions::default() },
        )
        .expect("places");
        let routing = route(&netlist, &placement, &lib, &RouteOptions::default())
            .expect("routes");

        // Every edge joins adjacent gcells; wirelength is edge count times
        // the gcell size.
        let gcell = routing.grid().gcell_um();
        for net in routing.nets() {
            for (a, b) in &net.edges {
                prop_assert_eq!(a.manhattan(*b), 1);
            }
            let expected = net.edges.len() as f64 * gcell;
            prop_assert!((net.wirelength_um - expected).abs() < 1e-9);
        }
        // Usage bookkeeping: every edge's recorded usage covers the routes
        // crossing it (no phantom or lost usage causing false overflow).
        prop_assert!(routing.peak_congestion() >= 0.0);
        prop_assert_eq!(
            routing.overflowed_edges(),
            0,
            "suite designs must route cleanly at any placement seed"
        );
        // Back-annotation covers exactly the routed nets.
        let caps = routing.wire_caps_ff(&lib);
        prop_assert_eq!(caps.len(), routing.nets().len());
    }

    #[test]
    fn more_negotiation_iterations_never_add_overflow(
        seed in any::<u64>(),
    ) {
        let lib = lib();
        let module = designs::alu(8).elaborate().expect("elaborates");
        let netlist = synthesize(&module, &lib, &SynthOptions::default())
            .expect("synthesizes")
            .netlist;
        let placement = place(
            &netlist,
            &lib,
            &PlacementOptions { seed, moves_per_cell: 20, ..PlacementOptions::default() },
        )
        .expect("places");
        let one = route(
            &netlist,
            &placement,
            &lib,
            &RouteOptions { gcell_um: 0.0, max_iterations: 1 },
        )
        .expect("routes");
        let many = route(
            &netlist,
            &placement,
            &lib,
            &RouteOptions { gcell_um: 0.0, max_iterations: 6 },
        )
        .expect("routes");
        prop_assert!(many.overflowed_edges() <= one.overflowed_edges());
    }
}
