//! Submission body parsing: the `POST /api/v1/jobs` JSON → [`JobSpec`].
//!
//! The accepted shape mirrors one `forge batch` manifest entry:
//!
//! ```json
//! {"design": "counter8", "profile": "quick", "clock_mhz": 100, "seed": 7}
//! {"source": "module m ... end", "name": "lab3", "node": 130}
//! ```
//!
//! Parsing is strict: a field of the wrong JSON type is a named 400,
//! never silently ignored — a student whose `"clock_mhz": "fast"` was
//! dropped would otherwise get a default-clock GDS with no warning.

use chipforge_exec::{Fault, JobSpec};
use chipforge_flow::OptimizationProfile;
use chipforge_pdk::TechnologyNode;
use serde::Value;

fn typed<'a, T>(
    body: &'a Value,
    name: &str,
    kind: &str,
    read: impl Fn(&'a Value) -> Option<T>,
) -> Result<Option<T>, String> {
    let value = body.get(name);
    if matches!(value, Value::Null) {
        return Ok(None);
    }
    read(value)
        .map(Some)
        .ok_or_else(|| format!("`{name}` must be a {kind}, got {}", value.kind()))
}

/// Parses a job submission body into a [`JobSpec`].
///
/// # Errors
///
/// Returns a message naming the offending field; the server answers
/// with it as a 400.
pub fn job_from_json(body: &Value) -> Result<JobSpec, String> {
    if !matches!(body, Value::Map(_)) {
        return Err(format!("job must be a JSON object, got {}", body.kind()));
    }
    let design = typed(body, "design", "string", Value::as_str)?;
    let source = typed(body, "source", "string", Value::as_str)?;
    let (name, source) = match (design, source) {
        (Some(_), Some(_)) => return Err("give `design` or `source`, not both".to_string()),
        (None, None) => {
            return Err("needs `design` (a built-in name or `gen:` spec) or `source`".to_string())
        }
        (Some(design), None) => {
            // Built-in names and generated `gen:` specs resolve
            // uniformly; an unknown design is a named 400 here, never a
            // late job failure.
            let found = chipforge_gen::resolve(design)?;
            (found.name().to_string(), found.source().to_string())
        }
        (None, Some(source)) => {
            let name = typed(body, "name", "string", Value::as_str)?
                .unwrap_or("inline")
                .to_string();
            (name, source.to_string())
        }
    };

    let node = match typed(body, "node", "number (feature nm)", Value::as_u64)? {
        None => TechnologyNode::N130,
        Some(nm) => {
            let nm = u32::try_from(nm).map_err(|_| format!("unknown node {nm} nm"))?;
            TechnologyNode::from_feature_nm(nm).ok_or_else(|| format!("unknown node {nm} nm"))?
        }
    };
    let profile = match typed(body, "profile", "string", Value::as_str)? {
        None | Some("open") => OptimizationProfile::open(),
        Some("commercial") => OptimizationProfile::commercial(),
        Some("quick") => OptimizationProfile::quick(),
        Some(other) => return Err(format!("unknown profile `{other}`")),
    };

    let mut spec = JobSpec::new(name, source, node, profile);
    if let Some(clock) = typed(body, "clock_mhz", "number", Value::as_f64)? {
        if !clock.is_finite() || clock <= 0.0 {
            return Err(format!("`clock_mhz` must be positive, got {clock}"));
        }
        spec = spec.with_clock_mhz(clock);
    }
    if let Some(seed) = typed(body, "seed", "number", Value::as_u64)? {
        spec = spec.with_seed(seed);
    }
    if let Some(deadline_ms) = typed(body, "deadline_ms", "number", Value::as_u64)? {
        spec = spec.with_deadline_ms(deadline_ms);
    }
    match typed(body, "fault", "string", Value::as_str)? {
        None => {}
        Some("panic") => spec = spec.with_fault(Fault::Panic),
        Some("transient") => spec = spec.with_fault(Fault::Transient(1)),
        Some(other) => return Err(format!("unknown fault `{other}`")),
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Result<JobSpec, String> {
        job_from_json(&serde::json::parse(text).expect("test body is valid JSON"))
    }

    #[test]
    fn builtin_design_by_name() {
        let spec = parse(r#"{"design": "counter8", "profile": "quick", "seed": 3}"#).expect("ok");
        assert_eq!(spec.name, "counter8");
    }

    #[test]
    fn inline_source_with_name() {
        let spec = parse(r#"{"source": "module m\nend", "name": "lab3"}"#).expect("ok");
        assert_eq!(spec.name, "lab3");
    }

    #[test]
    fn wrong_typed_fields_are_named_errors() {
        assert!(parse(r#"{"design": "counter8", "clock_mhz": "fast"}"#)
            .unwrap_err()
            .contains("clock_mhz"));
        assert!(parse(r#"{"design": "counter8", "node": "x"}"#)
            .unwrap_err()
            .contains("node"));
        assert!(parse(r#"{"design": 42}"#).unwrap_err().contains("design"));
        assert!(parse("[1]").unwrap_err().contains("object"));
    }

    #[test]
    fn unknown_design_and_profile_are_errors() {
        assert!(parse(r#"{"design": "mystery"}"#)
            .unwrap_err()
            .contains("mystery"));
        assert!(parse(r#"{"design": "counter8", "profile": "turbo"}"#)
            .unwrap_err()
            .contains("turbo"));
    }

    #[test]
    fn gen_specs_resolve_like_builtin_names() {
        let spec = parse(r#"{"design": "gen:dsp/fir?width=16&taps=8&seed=3"}"#).expect("ok");
        assert_eq!(spec.name, "gen_dsp_fir_w16_d8_u1_s3");
        assert!(spec.source.contains("module gen_dsp_fir_w16_d8_u1_s3"));
        // A malformed spec is a named 400, not a late job failure.
        assert!(parse(r#"{"design": "gen:dsp/iir"}"#)
            .unwrap_err()
            .contains("iir"));
        assert!(parse(r#"{"design": "gen:dsp/fir?width=999"}"#)
            .unwrap_err()
            .contains("width"));
    }
}
