//! Per-university API keys mapped to access tiers.
//!
//! A key is the hub's whole notion of identity: it names the
//! university (the tenant whose jobs it can see) and the access tier
//! its submissions are billed against — which queue bound, rate limit
//! and fair-share weight apply (Recommendation 8's tiering, enforced at
//! the front door).

use chipforge_cloud::AccessTier;
use serde::Value;
use std::collections::HashMap;

/// Who a request is acting as.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Identity {
    /// Tenant name; jobs are scoped per university.
    pub university: String,
    /// Access tier the key's submissions are billed against.
    pub tier: AccessTier,
}

/// API-key registry: opaque key string → [`Identity`].
#[derive(Debug, Clone, Default)]
pub struct KeyRegistry {
    keys: HashMap<String, Identity>,
}

impl KeyRegistry {
    /// An empty registry (every request is a 401).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The built-in demo keys used by CI, tests and the tutorial: one
    /// university per tier.
    #[must_use]
    pub fn demo() -> Self {
        let mut registry = Self::new();
        registry.insert("demo-beginner", "tu-demo", AccessTier::Beginner);
        registry.insert("demo-intermediate", "uni-demo", AccessTier::Intermediate);
        registry.insert("demo-advanced", "eth-demo", AccessTier::Advanced);
        registry
    }

    /// Adds (or replaces) a key.
    pub fn insert(
        &mut self,
        key: impl Into<String>,
        university: impl Into<String>,
        tier: AccessTier,
    ) {
        self.keys.insert(
            key.into(),
            Identity {
                university: university.into(),
                tier,
            },
        );
    }

    /// Looks up a presented key.
    #[must_use]
    pub fn identify(&self, key: &str) -> Option<&Identity> {
        self.keys.get(key)
    }

    /// Number of registered keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether no keys are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Parses a registry from a JSON document of the shape
    /// `{"keys": [{"key": "...", "university": "...", "tier": "beginner"}]}`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed entry.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = serde::json::parse(text).map_err(|e| format!("bad key file: {e}"))?;
        let entries = doc
            .get("keys")
            .seq()
            .map_err(|_| "key file needs a top-level `keys` array".to_string())?;
        let mut registry = Self::new();
        for (i, entry) in entries.iter().enumerate() {
            let field = |name: &str| -> Result<String, String> {
                entry
                    .get(name)
                    .as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("key entry {i}: missing string `{name}`"))
            };
            let tier = parse_tier(&field("tier")?).ok_or_else(|| {
                format!("key entry {i}: unknown tier (expected beginner|intermediate|advanced)")
            })?;
            registry.insert(field("key")?, field("university")?, tier);
        }
        Ok(registry)
    }

    /// Serializes the registry back to the `from_json` document shape
    /// (keys sorted for stable output).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut keys: Vec<(&String, &Identity)> = self.keys.iter().collect();
        keys.sort_by_key(|&(k, _)| k.clone());
        let entries: Vec<Value> = keys
            .into_iter()
            .map(|(key, id)| {
                Value::Map(vec![
                    (Value::Str("key".into()), Value::Str(key.clone())),
                    (
                        Value::Str("university".into()),
                        Value::Str(id.university.clone()),
                    ),
                    (Value::Str("tier".into()), Value::Str(id.tier.to_string())),
                ])
            })
            .collect();
        serde::json::to_string(&Value::Map(vec![(
            Value::Str("keys".into()),
            Value::Seq(entries),
        )]))
    }
}

/// Parses a tier name as used in key files and job manifests.
#[must_use]
pub fn parse_tier(name: &str) -> Option<AccessTier> {
    match name {
        "beginner" => Some(AccessTier::Beginner),
        "intermediate" => Some(AccessTier::Intermediate),
        "advanced" => Some(AccessTier::Advanced),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_keys_cover_all_three_tiers() {
        let registry = KeyRegistry::demo();
        assert_eq!(registry.len(), 3);
        assert_eq!(
            registry.identify("demo-advanced").map(|id| id.tier),
            Some(AccessTier::Advanced)
        );
        assert!(registry.identify("nope").is_none());
    }

    #[test]
    fn json_round_trips() {
        let registry = KeyRegistry::demo();
        let restored = KeyRegistry::from_json(&registry.to_json()).expect("parses");
        assert_eq!(restored.len(), 3);
        assert_eq!(
            restored
                .identify("demo-beginner")
                .map(|id| id.university.clone()),
            Some("tu-demo".to_string())
        );
    }

    #[test]
    fn malformed_key_files_are_named_errors() {
        assert!(KeyRegistry::from_json("{").is_err());
        assert!(KeyRegistry::from_json("{\"keys\": 3}").is_err());
        let bad_tier = r#"{"keys": [{"key": "k", "university": "u", "tier": "root"}]}"#;
        assert!(KeyRegistry::from_json(bad_tier)
            .unwrap_err()
            .contains("tier"));
    }
}
