//! A tiny blocking HTTP client for the hub: `forge client`, the load
//! generator and the integration tests all speak through it, so the
//! service is exercised over real sockets, never via in-process calls.

use chipforge_resil::Backoff;
use serde::Value;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Hub client: server address plus the API key requests present.
///
/// Transport failures (refused connection, reset, timeout) are retried
/// with capped exponential backoff before surfacing the named
/// `hub unreachable` error; HTTP-level refusals are never retried.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    key: String,
    retries: u32,
    backoff: Backoff,
}

/// One decoded HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Parsed JSON body.
    pub body: Value,
}

impl Client {
    /// A client for the hub at `addr` (e.g. `127.0.0.1:8080`)
    /// presenting `key`. Defaults to 3 transport retries with a 250 ms
    /// backoff base.
    #[must_use]
    pub fn new(addr: impl Into<String>, key: impl Into<String>) -> Self {
        Client {
            addr: addr.into(),
            key: key.into(),
            retries: 3,
            backoff: Backoff {
                base: Duration::from_millis(250),
                max: Duration::from_millis(2_000),
                seed: 0,
            },
        }
    }

    /// Overrides the transport retry policy: `retries` extra attempts,
    /// exponential backoff from `retry_ms` capped at 8× the base.
    /// `retries = 0` fails on the first transport error.
    #[must_use]
    pub fn with_retries(mut self, retries: u32, retry_ms: u64) -> Self {
        self.retries = retries;
        self.backoff = Backoff {
            base: Duration::from_millis(retry_ms),
            max: Duration::from_millis(retry_ms.saturating_mul(8)),
            seed: 0,
        };
        self
    }

    /// Sends one request and decodes the JSON response, retrying
    /// transport failures per the retry policy.
    ///
    /// # Errors
    ///
    /// Returns `hub unreachable: <addr> after <n> attempt(s): <cause>`
    /// when every attempt fails at the transport layer, or a message
    /// for non-JSON bodies.
    pub fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<Response, String> {
        let attempts = self.retries.saturating_add(1);
        let mut last_error = String::new();
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(self.backoff.delay(path, attempt));
            }
            match self.request_once(method, path, body) {
                Ok(response) => return Ok(response),
                Err(error) => last_error = error,
            }
        }
        Err(format!(
            "hub unreachable: {} after {attempts} attempt(s): {last_error}",
            self.addr
        ))
    }

    /// One transport attempt, no retries.
    fn request_once(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<Response, String> {
        let mut stream =
            TcpStream::connect(&self.addr).map_err(|e| format!("connect {}: {e}", self.addr))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .map_err(|e| format!("socket: {e}"))?;
        let payload = body.unwrap_or("");
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nhost: {}\r\nx-api-key: {}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{payload}",
            self.addr,
            self.key,
            payload.len(),
        )
        .map_err(|e| format!("send: {e}"))?;
        let mut raw = String::new();
        stream
            .read_to_string(&mut raw)
            .map_err(|e| format!("read: {e}"))?;
        parse_response(&raw)
    }

    /// Submits one job body; returns the assigned id on 202, or the
    /// full refusal response otherwise.
    ///
    /// # Errors
    ///
    /// Transport failures only; admission refusals are `Ok` responses.
    pub fn submit(&self, job: &str) -> Result<Result<u64, Response>, String> {
        let response = self.request("POST", "/api/v1/jobs", Some(job))?;
        if response.status == 202 {
            let id = response
                .body
                .get("id")
                .as_u64()
                .ok_or_else(|| "202 without an id".to_string())?;
            return Ok(Ok(id));
        }
        Ok(Err(response))
    }

    /// Fetches one job's status JSON.
    ///
    /// # Errors
    ///
    /// Transport failures, or a non-200 status.
    pub fn job_status(&self, id: u64) -> Result<Value, String> {
        let response = self.request("GET", &format!("/api/v1/jobs/{id}"), None)?;
        if response.status != 200 {
            return Err(format!("job {id}: HTTP {}", response.status));
        }
        Ok(response.body)
    }

    /// Polls a job until it reaches a terminal state.
    ///
    /// # Errors
    ///
    /// Transport failures, or `timeout` elapsing first.
    pub fn wait(&self, id: u64, timeout: Duration) -> Result<Value, String> {
        let deadline = Instant::now() + timeout;
        loop {
            let status = self.job_status(id)?;
            match status.get("state").as_str() {
                Some("queued" | "running") => {}
                _ => return Ok(status),
            }
            if Instant::now() >= deadline {
                return Err(format!("job {id} did not finish within {timeout:?}"));
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Cancels a queued job; `Ok(true)` if it was cancelled.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn cancel(&self, id: u64) -> Result<bool, String> {
        let response = self.request("POST", &format!("/api/v1/jobs/{id}/cancel"), None)?;
        Ok(response.status == 200)
    }

    /// Lists this tenant's jobs.
    ///
    /// # Errors
    ///
    /// Transport failures, or a non-200 status.
    pub fn list(&self) -> Result<Value, String> {
        let response = self.request("GET", "/api/v1/jobs", None)?;
        if response.status != 200 {
            return Err(format!("list: HTTP {}", response.status));
        }
        Ok(response.body)
    }

    /// Fetches the `/metrics` snapshot (no authentication required).
    ///
    /// # Errors
    ///
    /// Transport failures, or a non-200 status.
    pub fn metrics(&self) -> Result<Value, String> {
        let response = self.request("GET", "/metrics", None)?;
        if response.status != 200 {
            return Err(format!("metrics: HTTP {}", response.status));
        }
        Ok(response.body)
    }
}

/// Splits a raw HTTP/1.1 response into status code and JSON body.
fn parse_response(raw: &str) -> Result<Response, String> {
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| "malformed response (no header terminator)".to_string())?;
    let status_line = head.lines().next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| format!("malformed status line `{status_line}`"))?;
    let body = serde::json::parse(body).map_err(|e| format!("non-JSON body: {e}"))?;
    Ok(Response { status, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_response() {
        let raw = "HTTP/1.1 202 Accepted\r\ncontent-type: application/json\r\n\r\n{\"id\":7}";
        let response = parse_response(raw).expect("parses");
        assert_eq!(response.status, 202);
        assert_eq!(response.body.get("id").as_u64(), Some(7));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response("not http").is_err());
        assert!(parse_response("HTTP/1.1 abc\r\n\r\n{}").is_err());
        assert!(parse_response("HTTP/1.1 200 OK\r\n\r\nnot json").is_err());
    }
}
