//! Minimal HTTP/1.1 framing: request parsing with hard limits and
//! response writing. No external dependencies — the hub's vendored-only
//! rule extends to its network layer.
//!
//! The parser is deliberately strict and bounded: request lines and
//! header lines are capped, header count is capped, bodies are capped,
//! and every violation maps to a specific 4xx status. Those caps are
//! what the fuzz-style tests in this module lean on — arbitrary bytes
//! in, clean error out, never a panic.

use std::io::{BufRead, Write};

/// Longest accepted request line (method + path + version), in bytes.
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Longest accepted single header line, in bytes.
pub const MAX_HEADER_LINE: usize = 8 * 1024;
/// Most headers accepted per request.
pub const MAX_HEADERS: usize = 64;
/// Largest accepted request body, in bytes.
pub const MAX_BODY: usize = 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), as sent.
    pub method: String,
    /// Request target, e.g. `/api/v1/jobs/3`.
    pub path: String,
    /// Header name/value pairs, in wire order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Raw request body (exactly `Content-Length` bytes).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of `name` (ASCII case-insensitive), if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let wanted = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == wanted)
            .map(|(_, v)| v.as_str())
    }
}

/// A request the parser refused, mapped to the 4xx it answers with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// HTTP status code (400, 401, 404, 405, 409, 413, 429, 431).
    pub status: u16,
    /// Human-readable reason included in the JSON error body.
    pub message: String,
}

impl HttpError {
    /// Creates an error with the given status and message.
    #[must_use]
    pub fn new(status: u16, message: impl Into<String>) -> Self {
        HttpError {
            status,
            message: message.into(),
        }
    }

    /// Shorthand for a 400 Bad Request.
    #[must_use]
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self::new(400, message)
    }
}

/// Reads one line terminated by `\n`, refusing lines longer than
/// `limit` bytes with the given status. Returns `None` on clean EOF
/// before any byte.
fn read_limited_line(
    stream: &mut impl BufRead,
    limit: usize,
    too_long_status: u16,
) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match std::io::Read::read(stream, &mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::bad_request("truncated line (no terminator)"));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    let text = String::from_utf8(line)
                        .map_err(|_| HttpError::bad_request("non-UTF-8 header bytes"))?;
                    return Ok(Some(text));
                }
                line.push(byte[0]);
                if line.len() > limit {
                    return Err(HttpError::new(too_long_status, "line exceeds limit"));
                }
            }
            Err(e) => return Err(HttpError::bad_request(format!("read error: {e}"))),
        }
    }
}

/// Parses one HTTP/1.1 request from `stream`, enforcing all limits.
///
/// # Errors
///
/// Returns an [`HttpError`] carrying the 4xx status the caller should
/// answer with: 400 for malformed framing, 413 for an oversized body,
/// 431 for oversized or too many headers.
pub fn read_request(stream: &mut impl BufRead) -> Result<Request, HttpError> {
    let request_line = read_limited_line(stream, MAX_REQUEST_LINE, 431)?
        .ok_or_else(|| HttpError::bad_request("empty request"))?;
    let mut parts = request_line.split(' ');
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::bad_request(
            "malformed request line (expected `METHOD PATH VERSION`)",
        ));
    };
    if parts.next().is_some() || method.is_empty() || !path.starts_with('/') {
        return Err(HttpError::bad_request("malformed request line"));
    }
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::bad_request(format!(
            "unsupported protocol `{version}`"
        )));
    }
    if !method
        .bytes()
        .all(|b| b.is_ascii_uppercase() || b.is_ascii_digit())
    {
        return Err(HttpError::bad_request(format!(
            "malformed method `{method}`"
        )));
    }

    let mut headers = Vec::new();
    loop {
        let line = read_limited_line(stream, MAX_HEADER_LINE, 431)?
            .ok_or_else(|| HttpError::bad_request("truncated headers"))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::new(431, "too many headers"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::bad_request(format!(
                "malformed header line `{}`",
                truncate_for_log(&line)
            )));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::bad_request("malformed header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    if headers.iter().any(|(k, _)| k == "transfer-encoding") {
        // Only Content-Length framing is supported; silently treating a
        // chunked body as empty would corrupt cache PUTs.
        return Err(HttpError::bad_request(
            "transfer-encoding is not supported (use content-length)",
        ));
    }
    let mut body = Vec::new();
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.as_str());
    if let Some(raw) = content_length {
        let length: usize = raw
            .parse()
            .map_err(|_| HttpError::bad_request(format!("bad content-length `{raw}`")))?;
        if length > MAX_BODY {
            return Err(HttpError::new(413, "request body too large"));
        }
        body.resize(length, 0);
        std::io::Read::read_exact(stream, &mut body)
            .map_err(|_| HttpError::bad_request("body shorter than content-length"))?;
    }

    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body,
    })
}

fn truncate_for_log(line: &str) -> String {
    let mut end = line.len().min(40);
    while !line.is_char_boundary(end) {
        end -= 1;
    }
    line[..end].to_string()
}

/// The standard reason phrase for the statuses the hub emits.
#[must_use]
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        401 => "Unauthorized",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes a complete `Connection: close` HTTP/1.1 response.
///
/// # Errors
///
/// Propagates I/O errors from the underlying stream.
pub fn write_response(stream: &mut impl Write, status: u16, body: &str) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        reason_phrase(status),
        body.len(),
    )?;
    stream.flush()
}

/// Serializes an [`HttpError`] as the JSON error body it is sent with.
#[must_use]
pub fn error_body(error: &HttpError) -> String {
    serde::json::to_string(&serde::Value::Map(vec![(
        serde::Value::Str("error".into()),
        serde::Value::Str(error.message.clone()),
    )]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(bytes))
    }

    #[test]
    fn well_formed_request_round_trips() {
        let req =
            parse(b"POST /api/v1/jobs HTTP/1.1\r\nX-Api-Key: demo\r\nContent-Length: 2\r\n\r\n{}")
                .expect("parses");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/api/v1/jobs");
        assert_eq!(req.header("x-api-key"), Some("demo"));
        assert_eq!(req.body, b"{}");
    }

    #[test]
    fn truncated_request_line_is_a_400() {
        assert_eq!(parse(b"GET /healthz").unwrap_err().status, 400);
        assert_eq!(parse(b"GET\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(parse(b"\r\n\r\n").unwrap_err().status, 400);
    }

    #[test]
    fn oversized_request_line_is_a_431() {
        let mut raw = b"GET /".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_REQUEST_LINE + 10));
        raw.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        assert_eq!(parse(&raw).unwrap_err().status, 431);
    }

    #[test]
    fn too_many_headers_is_a_431() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..(MAX_HEADERS + 1) {
            raw.extend_from_slice(format!("h{i}: v\r\n").as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        assert_eq!(parse(&raw).unwrap_err().status, 431);
    }

    #[test]
    fn bad_content_length_is_a_400_and_oversized_a_413() {
        let bad = b"POST / HTTP/1.1\r\ncontent-length: banana\r\n\r\n";
        assert_eq!(parse(bad).unwrap_err().status, 400);
        let negative = b"POST / HTTP/1.1\r\ncontent-length: -1\r\n\r\n";
        assert_eq!(parse(negative).unwrap_err().status, 400);
        let huge = format!(
            "POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert_eq!(parse(huge.as_bytes()).unwrap_err().status, 413);
        let short = b"POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc";
        assert_eq!(parse(short).unwrap_err().status, 400);
    }

    #[test]
    fn chunked_transfer_encoding_is_a_400() {
        let raw = b"PUT /cache/stage/0 HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n";
        assert_eq!(parse(raw).unwrap_err().status, 400);
    }

    #[test]
    fn non_utf8_header_bytes_are_a_400() {
        let raw = b"GET / HTTP/1.1\r\nx-key: \xff\xfe\r\n\r\n";
        assert_eq!(parse(raw).unwrap_err().status, 400);
    }
}
