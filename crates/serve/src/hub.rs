//! The hub scheduling core: admission, fair-share dispatch, execution
//! and crash recovery — the live counterpart of the DES in
//! `chipforge-cloud`, built from the *same* `chipforge-admit` types.
//!
//! Time is seconds since hub start (an `f64`, matching the abstract
//! clock the admit types use). Each accepted job waits in its tier's
//! bounded [`ClassQueues`] slot until a worker thread's
//! [`FairShare::pick`] selects its class; the worker then runs it as a
//! single-job batch on a short-lived [`BatchEngine`] sharing the
//! hub-wide artifact and stage caches, and charges the measured service
//! seconds back to the fair share. Completed jobs append to the
//! `chipforge-resil` journal; [`Hub::new`] reloads that journal, so a
//! killed-and-restarted hub re-lists every completed job.

use crate::auth::Identity;
use chipforge_admit::{Admission, ClassQueues, FairShare, OverflowPolicy, RateLimit, TokenBucket};
use chipforge_cloud::AccessTier;
use chipforge_exec::{
    ArtifactCache, BatchEngine, CacheKey, EngineConfig, JobSpec, JobStatus, StageCache,
};
use chipforge_flow::{PpaReport, StageSnapshot};
use chipforge_obs::Tracer;
use chipforge_resil::{
    frame_checksummed, verify_checksummed, Journal, JournalRecord, JournalWriter,
};
use serde::{Serialize, Value};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Hub tuning knobs. The defaults mirror the bounded fair-share policy
/// E16 found overload-robust: per-tier bounded queues, weighted
/// interleave favouring beginners, anti-starvation aging.
#[derive(Debug, Clone)]
pub struct HubConfig {
    /// Worker threads (the hub's "servers" in DES terms).
    pub workers: usize,
    /// Supervision shards the worker pool is grouped into: worker `w`
    /// reports its execution telemetry under shard `w % shards`, so
    /// `/metrics` exposes the same per-shard view `forge batch
    /// --shards` prints (E21 feeds this into the DES as capacity).
    pub shards: usize,
    /// Per-tier waiting-room bound; `None` means unbounded.
    pub queue_capacity: Option<usize>,
    /// What happens when a bounded tier queue overflows.
    pub overflow: OverflowPolicy,
    /// Fair-share weights `[beginner, intermediate, advanced]`.
    pub weights: [f64; 3],
    /// Anti-starvation aging credit per waiting second.
    pub aging_rate: f64,
    /// Optional per-tier token-bucket rate limits (tokens per second).
    pub rate_limits: [Option<RateLimit>; 3],
    /// Per-job wall-clock timeout.
    pub job_timeout: Duration,
    /// Checkpoint journal path; completed jobs are appended (fsynced)
    /// and recovered on restart. `None` disables persistence.
    pub journal: Option<PathBuf>,
    /// Stage-snapshot cache directory; `None` keeps stage caching
    /// in-memory only.
    pub stage_cache_dir: Option<PathBuf>,
    /// Whether to attach a stage cache at all.
    pub stage_cache: bool,
    /// Upstream remote stage cache (`forge serve --remote-cache <url>`):
    /// this hub's stage cache chains to another hub's
    /// `/cache/stage/<key>` endpoints, so a fleet of hubs shares one
    /// warm tier. Failure-first like any remote tier — an unreachable
    /// upstream degrades to local-only caching.
    pub remote_cache: Option<String>,
}

impl Default for HubConfig {
    fn default() -> Self {
        HubConfig {
            workers: 2,
            shards: 1,
            queue_capacity: Some(8),
            overflow: OverflowPolicy::Reject,
            weights: [2.0, 1.5, 1.0],
            aging_rate: 0.25,
            rate_limits: [None, None, None],
            job_timeout: Duration::from_secs(30),
            journal: None,
            stage_cache_dir: None,
            stage_cache: true,
            remote_cache: None,
        }
    }
}

/// Lifecycle of a hub job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting in its tier queue.
    Queued,
    /// Executing on a worker.
    Running,
    /// Finished with a good artifact.
    Succeeded,
    /// Finished without one (flow error, panic, timeout).
    Failed,
    /// Cancelled while queued, or displaced by shed-oldest overflow.
    Cancelled,
}

impl JobState {
    /// Whether the job will never run (again).
    #[must_use]
    pub fn is_terminal(self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }

    /// Wire name, as reported in status JSON.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Succeeded => "succeeded",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }
}

/// What [`Hub::submit`] decided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Admitted with this job id.
    Accepted(u64),
    /// Turned away by the tier's token-bucket rate limit.
    RateLimited,
    /// Turned away because the tier queue is full (reject overflow).
    QueueFull,
}

/// One job's full hub-side record.
#[derive(Debug)]
struct JobEntry {
    name: String,
    university: String,
    tier: AccessTier,
    state: JobState,
    /// Present while the job still has to run.
    spec: Option<JobSpec>,
    key: String,
    tracer: Tracer,
    submitted_ms: f64,
    started_ms: Option<f64>,
    finished_ms: Option<f64>,
    attempts: u32,
    cache_hit: bool,
    degraded: bool,
    error: Option<String>,
    ppa: Option<PpaReport>,
    gds_fnv: Option<u64>,
    /// Restored from the journal at startup rather than run live.
    recovered: bool,
}

struct HubState {
    jobs: BTreeMap<u64, JobEntry>,
    waiting: ClassQueues<u64>,
    fair: FairShare,
    buckets: [Option<TokenBucket>; 3],
    journal: Option<JournalWriter>,
    next_id: u64,
    next_seq: u64,
    rejected: [u64; 3],
    shed: [u64; 3],
}

/// Per-hub-shard execution counters, aggregated from the mini-batch
/// reports of the workers that belong to the shard.
#[derive(Debug, Default)]
struct ShardTelemetry {
    jobs_run: AtomicU64,
    failed: AtomicU64,
    quarantines: AtomicU64,
    restarts: AtomicU64,
}

/// Request counters for the `/cache/stage/<key>` protocol endpoints.
#[derive(Debug, Default)]
struct CacheProtocol {
    gets: AtomicU64,
    get_hits: AtomicU64,
    puts: AtomicU64,
    put_rejects: AtomicU64,
    heads: AtomicU64,
    head_hits: AtomicU64,
}

struct HubInner {
    config: HubConfig,
    started: Instant,
    state: Mutex<HubState>,
    work_ready: Condvar,
    cache: Arc<ArtifactCache>,
    stage_cache: Option<Arc<StageCache>>,
    cache_protocol: CacheProtocol,
    /// Attempt threads orphaned by job timeouts, hub-wide (the same
    /// gauge every mini-batch engine reports into).
    detached: Arc<AtomicI64>,
    shard_stats: Vec<ShardTelemetry>,
    shutdown: AtomicBool,
}

/// The live multi-tenant hub: shared state plus a worker pool.
pub struct Hub {
    inner: Arc<HubInner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Hub {
    /// Builds the hub, recovers any journal, and starts the worker
    /// pool.
    ///
    /// # Errors
    ///
    /// Returns a message when the journal cannot be read or opened.
    pub fn new(config: HubConfig) -> Result<Self, String> {
        let mut state = HubState {
            jobs: BTreeMap::new(),
            waiting: ClassQueues::new(3),
            fair: FairShare::new(config.weights.to_vec(), config.aging_rate),
            buckets: core::array::from_fn(|i| config.rate_limits[i].map(TokenBucket::new)),
            journal: None,
            next_id: 0,
            next_seq: 0,
            rejected: [0; 3],
            shed: [0; 3],
        };
        if let Some(path) = &config.journal {
            if path.exists() {
                let journal = Journal::load(path)
                    .map_err(|e| format!("read journal `{}`: {e}", path.display()))?;
                recover(&mut state, &journal);
            }
            state.journal = Some(
                JournalWriter::open_append(path)
                    .map_err(|e| format!("open journal `{}`: {e}", path.display()))?,
            );
        }
        let stage_cache = if config.stage_cache {
            let mode = match &config.stage_cache_dir {
                Some(dir) => chipforge_exec::StageCacheMode::Disk(dir.clone()),
                None => chipforge_exec::StageCacheMode::Memory,
            };
            Some(match &config.remote_cache {
                Some(url) => StageCache::with_remote(
                    &mode,
                    Arc::new(chipforge_exec::RemoteCache::new(
                        chipforge_exec::RemoteCacheConfig::new(url.clone()),
                    )),
                ),
                None => match &config.stage_cache_dir {
                    Some(dir) => StageCache::on_disk(dir),
                    None => StageCache::in_memory(),
                },
            })
        } else {
            None
        };
        let shard_count = config.shards.max(1);
        let inner = Arc::new(HubInner {
            started: Instant::now(),
            state: Mutex::new(state),
            work_ready: Condvar::new(),
            cache: Arc::new(ArtifactCache::new(256)),
            stage_cache,
            cache_protocol: CacheProtocol::default(),
            detached: Arc::new(AtomicI64::new(0)),
            shard_stats: (0..shard_count)
                .map(|_| ShardTelemetry::default())
                .collect(),
            shutdown: AtomicBool::new(false),
            config,
        });
        let workers = (0..inner.config.workers.max(1))
            .map(|worker| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner, worker))
            })
            .collect();
        Ok(Hub {
            inner,
            workers: Mutex::new(workers),
        })
    }

    /// Seconds since hub start — the abstract clock the admit types see.
    fn now_s(&self) -> f64 {
        self.inner.started.elapsed().as_secs_f64()
    }

    /// How many jobs were rebuilt from the journal at startup.
    ///
    /// # Panics
    ///
    /// Panics on a poisoned hub lock (a prior worker panic).
    #[must_use]
    pub fn recovered_jobs(&self) -> usize {
        let state = self.inner.state.lock().expect("hub lock");
        state.jobs.values().filter(|j| j.recovered).count()
    }

    /// Whether the stage-cache protocol endpoints are live.
    #[must_use]
    pub fn cache_enabled(&self) -> bool {
        self.inner.stage_cache.is_some()
    }

    /// Serves `GET /cache/stage/<key>`: the checksum-framed snapshot
    /// body, or `None` on a miss. Counter-free on the engine side
    /// ([`StageCache::peek`]) so protocol traffic never skews the hub's
    /// own hit-rate metrics.
    #[must_use]
    pub fn cache_get(&self, key: u128) -> Option<String> {
        let stage_cache = self.inner.stage_cache.as_ref()?;
        self.inner
            .cache_protocol
            .gets
            .fetch_add(1, Ordering::Relaxed);
        let snapshot = stage_cache.peek(key)?;
        self.inner
            .cache_protocol
            .get_hits
            .fetch_add(1, Ordering::Relaxed);
        Some(frame_checksummed(&serde::json::to_string(&snapshot)))
    }

    /// Serves `HEAD /cache/stage/<key>`: presence without the body.
    #[must_use]
    pub fn cache_has(&self, key: u128) -> bool {
        let Some(stage_cache) = self.inner.stage_cache.as_ref() else {
            return false;
        };
        self.inner
            .cache_protocol
            .heads
            .fetch_add(1, Ordering::Relaxed);
        let hit = stage_cache.peek(key).is_some();
        if hit {
            self.inner
                .cache_protocol
                .head_hits
                .fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Serves `PUT /cache/stage/<key>`: verifies the checksum frame,
    /// parses the snapshot and stores it in the hub's local tiers only
    /// (never re-published upstream, so chained hubs cannot loop).
    ///
    /// # Errors
    ///
    /// Returns a message when the frame digest or payload is invalid;
    /// the entry is rejected without touching the cache.
    pub fn cache_put(&self, key: u128, body: &str) -> Result<(), String> {
        let Some(stage_cache) = self.inner.stage_cache.as_ref() else {
            return Err("stage cache disabled".into());
        };
        self.inner
            .cache_protocol
            .puts
            .fetch_add(1, Ordering::Relaxed);
        let stored = verify_checksummed(body)
            .ok_or_else(|| "checksum mismatch".to_string())
            .and_then(|payload| {
                serde::json::from_str::<StageSnapshot>(payload)
                    .map_err(|e| format!("malformed snapshot: {e}"))
            })
            .map(|snapshot| stage_cache.insert_local(key, &snapshot));
        if stored.is_err() {
            self.inner
                .cache_protocol
                .put_rejects
                .fetch_add(1, Ordering::Relaxed);
        }
        stored
    }

    /// Offers one job on behalf of `who`. Admission is decided here:
    /// token bucket first, then the tier's bounded queue.
    pub fn submit(&self, who: &Identity, spec: JobSpec) -> SubmitOutcome {
        let now = self.now_s();
        let tier = who.tier;
        let class = tier.priority() as usize;
        let spec = spec.with_tier(tier);
        let key = CacheKey::of(&spec).to_string();
        let mut state = self.inner.state.lock().expect("hub lock");
        let within_rate = state.buckets[class]
            .as_mut()
            .is_none_or(|bucket| bucket.try_acquire(now));
        if !within_rate {
            state.rejected[class] += 1;
            return SubmitOutcome::RateLimited;
        }
        let id = state.next_id;
        state.next_id += 1;
        let entry = JobEntry {
            name: spec.name.clone(),
            university: who.university.clone(),
            tier,
            state: JobState::Queued,
            spec: Some(spec),
            key,
            tracer: Tracer::new(),
            submitted_ms: now * 1e3,
            started_ms: None,
            finished_ms: None,
            attempts: 0,
            cache_hit: false,
            degraded: false,
            error: None,
            ppa: None,
            gds_fnv: None,
            recovered: false,
        };
        match state.waiting.offer(
            class,
            id,
            now,
            self.inner.config.queue_capacity,
            self.inner.config.overflow,
        ) {
            Admission::Admitted => {
                state.jobs.insert(id, entry);
            }
            Admission::Rejected(_) => {
                state.rejected[class] += 1;
                state.next_id = id; // nothing was stored under this id
                return SubmitOutcome::QueueFull;
            }
            Admission::Shed(displaced) => {
                state.jobs.insert(id, entry);
                state.shed[class] += 1;
                // With capacity zero the newcomer itself is the shed
                // entry; either way the displaced job lands terminal.
                if let Some(old) = state.jobs.get_mut(&displaced) {
                    old.state = JobState::Cancelled;
                    old.finished_ms = Some(now * 1e3);
                    old.error = Some("shed: displaced by a newer arrival".into());
                    old.spec = None;
                }
            }
        }
        drop(state);
        self.inner.work_ready.notify_all();
        SubmitOutcome::Accepted(id)
    }

    /// Cancels a queued job. Running or finished jobs are not
    /// interrupted (`false`); unknown ids or other tenants' jobs are
    /// also `false`.
    pub fn cancel(&self, who: &Identity, id: u64) -> bool {
        let now_ms = self.now_s() * 1e3;
        let mut state = self.inner.state.lock().expect("hub lock");
        let Some(entry) = state.jobs.get_mut(&id) else {
            return false;
        };
        if entry.university != who.university || entry.state != JobState::Queued {
            return false;
        }
        entry.state = JobState::Cancelled;
        entry.finished_ms = Some(now_ms);
        entry.error = Some("cancelled by owner".into());
        entry.spec = None;
        true
    }

    /// Status JSON for one of `who`'s jobs, or `None` (also for other
    /// tenants' jobs, indistinguishable from unknown ids).
    #[must_use]
    pub fn job_status(&self, who: &Identity, id: u64) -> Option<Value> {
        let state = self.inner.state.lock().expect("hub lock");
        let entry = state.jobs.get(&id)?;
        if entry.university != who.university {
            return None;
        }
        Some(job_json(id, entry, true))
    }

    /// List JSON of all of `who`'s jobs (ascending id order).
    #[must_use]
    pub fn list_jobs(&self, who: &Identity) -> Value {
        let state = self.inner.state.lock().expect("hub lock");
        let jobs: Vec<Value> = state
            .jobs
            .iter()
            .filter(|(_, e)| e.university == who.university)
            .map(|(id, e)| job_json(*id, e, false))
            .collect();
        Value::Map(vec![(Value::Str("jobs".into()), Value::Seq(jobs))])
    }

    /// The live `/metrics` snapshot: job-state counters, per-tier
    /// admission gauges (queue depth, peak depth, rejected, shed) and
    /// the shared stage/artifact cache counters.
    #[must_use]
    pub fn metrics(&self) -> Value {
        let state = self.inner.state.lock().expect("hub lock");
        let mut counts = [0u64; 5];
        let mut recovered = 0u64;
        for entry in state.jobs.values() {
            let slot = match entry.state {
                JobState::Queued => 0,
                JobState::Running => 1,
                JobState::Succeeded => 2,
                JobState::Failed => 3,
                JobState::Cancelled => 4,
            };
            counts[slot] += 1;
            recovered += u64::from(entry.recovered);
        }
        let tier_seq = |f: &dyn Fn(usize) -> Value| Value::Seq((0..3).map(f).collect());
        let mut fields = vec![
            (
                Value::Str("uptime_ms".into()),
                Value::F64(self.now_s() * 1e3),
            ),
            (
                Value::Str("jobs".into()),
                Value::Map(vec![
                    (Value::Str("queued".into()), Value::U64(counts[0])),
                    (Value::Str("running".into()), Value::U64(counts[1])),
                    (Value::Str("succeeded".into()), Value::U64(counts[2])),
                    (Value::Str("failed".into()), Value::U64(counts[3])),
                    (Value::Str("cancelled".into()), Value::U64(counts[4])),
                    (
                        Value::Str("completed".into()),
                        Value::U64(counts[2] + counts[3]),
                    ),
                    (Value::Str("recovered".into()), Value::U64(recovered)),
                ]),
            ),
            (
                Value::Str("admission".into()),
                Value::Map(vec![
                    (
                        Value::Str("queue_depth".into()),
                        tier_seq(&|c| Value::U64(state.waiting.depth(c) as u64)),
                    ),
                    (
                        Value::Str("peak_depth".into()),
                        tier_seq(&|c| Value::U64(state.waiting.peak_depth(c) as u64)),
                    ),
                    (
                        Value::Str("rejected".into()),
                        tier_seq(&|c| Value::U64(state.rejected[c])),
                    ),
                    (
                        Value::Str("shed".into()),
                        tier_seq(&|c| Value::U64(state.shed[c])),
                    ),
                ]),
            ),
            (
                Value::Str("artifact_cache".into()),
                self.inner.cache.stats().to_value(),
            ),
        ];
        if let Some(stage_cache) = &self.inner.stage_cache {
            // Lifetime totals: the delta from a default (zero) baseline.
            let record = stage_cache.record(&chipforge_exec::StageCounters::default(), 0, 0);
            fields.push((Value::Str("stage_cache".into()), record.to_value()));
        } else {
            fields.push((Value::Str("stage_cache".into()), Value::Null));
        }
        let protocol = &self.inner.cache_protocol;
        let count = |counter: &AtomicU64| Value::U64(counter.load(Ordering::Relaxed));
        fields.push((
            Value::Str("exec".into()),
            Value::Map(vec![
                (
                    Value::Str("detached_threads".into()),
                    Value::I64(self.inner.detached.load(Ordering::SeqCst)),
                ),
                (
                    Value::Str("shards".into()),
                    Value::Seq(
                        self.inner
                            .shard_stats
                            .iter()
                            .enumerate()
                            .map(|(shard, stats)| {
                                Value::Map(vec![
                                    (Value::Str("shard".into()), Value::U64(shard as u64)),
                                    (Value::Str("jobs_run".into()), count(&stats.jobs_run)),
                                    (Value::Str("failed".into()), count(&stats.failed)),
                                    (Value::Str("quarantines".into()), count(&stats.quarantines)),
                                    (Value::Str("restarts".into()), count(&stats.restarts)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ));
        fields.push((
            Value::Str("cache_protocol".into()),
            Value::Map(vec![
                (Value::Str("gets".into()), count(&protocol.gets)),
                (Value::Str("get_hits".into()), count(&protocol.get_hits)),
                (Value::Str("puts".into()), count(&protocol.puts)),
                (
                    Value::Str("put_rejects".into()),
                    count(&protocol.put_rejects),
                ),
                (Value::Str("heads".into()), count(&protocol.heads)),
                (Value::Str("head_hits".into()), count(&protocol.head_hits)),
            ]),
        ));
        drop(state);
        Value::Map(fields)
    }

    /// Stops accepting work, drains running jobs and joins the workers.
    /// Queued jobs are *not* run — exactly what a crash would lose; the
    /// journal holds every completed job either way. Idempotent.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.work_ready.notify_all();
        let handles: Vec<JoinHandle<()>> = self
            .workers
            .lock()
            .expect("worker handles")
            .drain(..)
            .collect();
        for worker in handles {
            let _ = worker.join();
        }
    }

    /// Whether a shutdown was requested.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }
}

impl Drop for Hub {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Rebuilds terminal job entries from a recovered journal. The latest
/// record per id wins (matching [`Journal::find`] semantics); ids
/// continue above the highest recovered one, so restarts never reuse
/// or duplicate an id.
fn recover(state: &mut HubState, journal: &Journal) {
    for record in &journal.records {
        let id = record.index as u64;
        let (university, tier, name) = decode_job_name(&record.name);
        let job_state = match JobStatus::from_name(&record.status) {
            Some(JobStatus::Succeeded) => JobState::Succeeded,
            Some(JobStatus::Cancelled) => JobState::Cancelled,
            _ => JobState::Failed,
        };
        let entry = JobEntry {
            name,
            university,
            tier,
            state: job_state,
            spec: None,
            key: record.key.clone(),
            tracer: Tracer::disabled(),
            submitted_ms: 0.0,
            started_ms: None,
            finished_ms: Some(0.0),
            attempts: record.attempts,
            cache_hit: false,
            degraded: record.degraded,
            error: record.error.clone(),
            ppa: record.ppa.clone(),
            gds_fnv: record.gds_fnv,
            recovered: true,
        };
        state.jobs.insert(id, entry);
        state.next_id = state.next_id.max(id + 1);
        state.next_seq = state.next_seq.max(record.seq + 1);
    }
}

/// Journal `name` field layout: `university/tier/job-name`. The first
/// two segments never contain `/` (tier names are fixed; university
/// names are caller-controlled identifiers), the job name may.
fn encode_job_name(entry: &JobEntry) -> String {
    format!("{}/{}/{}", entry.university, entry.tier, entry.name)
}

fn decode_job_name(encoded: &str) -> (String, AccessTier, String) {
    let mut parts = encoded.splitn(3, '/');
    let university = parts.next().unwrap_or("unknown").to_string();
    let tier = parts
        .next()
        .and_then(crate::auth::parse_tier)
        .unwrap_or(AccessTier::Beginner);
    let name = parts.next().unwrap_or("unknown").to_string();
    (university, tier, name)
}

/// One job's JSON view. With `with_progress`, the finished flow-stage
/// spans recorded by the job's tracer are included — this is the
/// "streaming" a polling client sees while the job runs.
fn job_json(id: u64, entry: &JobEntry, with_progress: bool) -> Value {
    let opt_f64 = |v: Option<f64>| v.map_or(Value::Null, Value::F64);
    let mut fields = vec![
        (Value::Str("id".into()), Value::U64(id)),
        (Value::Str("name".into()), Value::Str(entry.name.clone())),
        (
            Value::Str("university".into()),
            Value::Str(entry.university.clone()),
        ),
        (
            Value::Str("tier".into()),
            Value::Str(entry.tier.to_string()),
        ),
        (
            Value::Str("state".into()),
            Value::Str(entry.state.name().into()),
        ),
        (
            Value::Str("submitted_ms".into()),
            Value::F64(entry.submitted_ms),
        ),
        (Value::Str("started_ms".into()), opt_f64(entry.started_ms)),
        (Value::Str("finished_ms".into()), opt_f64(entry.finished_ms)),
        (
            Value::Str("attempts".into()),
            Value::U64(u64::from(entry.attempts)),
        ),
        (Value::Str("cache_hit".into()), Value::Bool(entry.cache_hit)),
        (Value::Str("degraded".into()), Value::Bool(entry.degraded)),
        (Value::Str("recovered".into()), Value::Bool(entry.recovered)),
        (
            Value::Str("error".into()),
            entry
                .error
                .as_ref()
                .map_or(Value::Null, |e| Value::Str(e.clone())),
        ),
    ];
    if with_progress {
        let stages: Vec<Value> = entry
            .tracer
            .spans()
            .into_iter()
            .filter(|span| span.category == "flow" && span.name != "flow")
            .map(|span| {
                Value::Map(vec![
                    (Value::Str("stage".into()), Value::Str(span.name)),
                    (Value::Str("wall_ms".into()), Value::F64(span.dur_us / 1e3)),
                ])
            })
            .collect();
        fields.push((Value::Str("stages".into()), Value::Seq(stages)));
    }
    if let Some(ppa) = &entry.ppa {
        fields.push((Value::Str("ppa".into()), ppa.to_value()));
    }
    if let Some(fnv) = entry.gds_fnv {
        fields.push((Value::Str("gds_fnv".into()), Value::U64(fnv)));
    }
    Value::Map(fields)
}

/// The worker loop: fair-share pick under the lock, flow execution
/// outside it, result + journal + usage charge back under the lock.
fn worker_loop(inner: &Arc<HubInner>, worker: usize) {
    let shard = worker % inner.shard_stats.len().max(1);
    loop {
        let picked = {
            let mut state = inner.state.lock().expect("hub lock");
            loop {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let now = inner.started.elapsed().as_secs_f64();
                if let Some(class) = state.fair.pick(&state.waiting, now) {
                    let (id, _) = state
                        .waiting
                        .pop_front(class)
                        .expect("picked class has work");
                    let Some(entry) = state.jobs.get_mut(&id) else {
                        continue; // shed and pruned meanwhile
                    };
                    if entry.state != JobState::Queued {
                        continue; // cancelled or shed while waiting
                    }
                    entry.state = JobState::Running;
                    entry.started_ms = Some(now * 1e3);
                    let spec = entry.spec.take().expect("queued job keeps its spec");
                    break Some((id, class, spec, entry.tracer.clone()));
                }
                state = inner.work_ready.wait(state).expect("hub lock");
            }
        };
        let Some((id, class, spec, tracer)) = picked else {
            return;
        };

        let engine = BatchEngine::with_shared_caches(
            EngineConfig {
                workers: 1,
                job_timeout: inner.config.job_timeout,
                max_retries: 1,
                ..EngineConfig::default()
            },
            Arc::clone(&inner.cache),
            inner.stage_cache.as_ref().map(Arc::clone),
            tracer,
        )
        .with_detached_gauge(Arc::clone(&inner.detached));
        let run_started = Instant::now();
        let batch = engine.run_batch(vec![spec]);
        let service_s = run_started.elapsed().as_secs_f64();
        let result = &batch.results[0];
        let stats = &inner.shard_stats[shard];
        stats.jobs_run.fetch_add(1, Ordering::Relaxed);
        if !result.status.is_success() {
            stats.failed.fetch_add(1, Ordering::Relaxed);
        }
        for engine_shard in &batch.report.shards {
            stats
                .quarantines
                .fetch_add(engine_shard.quarantines, Ordering::Relaxed);
            stats
                .restarts
                .fetch_add(engine_shard.restarts, Ordering::Relaxed);
        }

        let mut state = inner.state.lock().expect("hub lock");
        state.fair.charge(class, service_s);
        let now_ms = inner.started.elapsed().as_secs_f64() * 1e3;
        let seq = state.next_seq;
        let record = {
            let Some(entry) = state.jobs.get_mut(&id) else {
                continue;
            };
            entry.state = if result.status.is_success() {
                JobState::Succeeded
            } else {
                JobState::Failed
            };
            entry.finished_ms = Some(now_ms);
            entry.attempts = result.attempts;
            entry.cache_hit = result.cache_hit;
            entry.degraded = result.degraded;
            entry.error = result.error.clone();
            let digests = result.artifact_digests();
            entry.ppa = digests.as_ref().map(|(ppa, _)| ppa.clone());
            entry.gds_fnv = digests.map(|(_, fnv)| fnv);
            JournalRecord {
                seq,
                index: id as usize,
                key: entry.key.clone(),
                name: encode_job_name(entry),
                status: result.status.to_string(),
                attempts: entry.attempts,
                degraded: entry.degraded,
                error: entry.error.clone(),
                ppa: entry.ppa.clone(),
                gds_fnv: entry.gds_fnv,
            }
        };
        if let Some(journal) = &mut state.journal {
            if journal.append(&record).is_ok() {
                state.next_seq = seq + 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identity(tier: AccessTier) -> Identity {
        Identity {
            university: "test-uni".into(),
            tier,
        }
    }

    fn quick_job(seed: u64) -> JobSpec {
        let design = chipforge_hdl::designs::counter(8);
        JobSpec::new(
            design.name(),
            design.source(),
            chipforge_pdk::TechnologyNode::N130,
            chipforge_flow::OptimizationProfile::quick(),
        )
        .with_seed(seed)
    }

    fn wait_terminal(hub: &Hub, who: &Identity, id: u64) -> Value {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let status = hub.job_status(who, id).expect("job exists");
            let state = status.get("state").as_str().expect("state").to_string();
            if state != "queued" && state != "running" {
                return status;
            }
            assert!(Instant::now() < deadline, "job {id} stuck in `{state}`");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn submit_run_and_report_ppa() {
        let hub = Hub::new(HubConfig::default()).expect("hub");
        let who = identity(AccessTier::Beginner);
        let SubmitOutcome::Accepted(id) = hub.submit(&who, quick_job(1)) else {
            panic!("accepted");
        };
        let status = wait_terminal(&hub, &who, id);
        assert_eq!(status.get("state").as_str(), Some("succeeded"));
        assert!(status.get("ppa").get("cells").as_u64().is_some());
        assert!(status.get("gds_fnv").as_u64().is_some());
        let stages: Vec<&str> = status
            .get("stages")
            .seq()
            .expect("stages")
            .iter()
            .filter_map(|s| s.get("stage").as_str())
            .collect();
        assert!(stages.contains(&"synthesize"), "stages: {stages:?}");
        hub.shutdown();
    }

    #[test]
    fn tenants_cannot_see_each_other() {
        let hub = Hub::new(HubConfig::default()).expect("hub");
        let alice = identity(AccessTier::Beginner);
        let bob = Identity {
            university: "other-uni".into(),
            tier: AccessTier::Advanced,
        };
        let SubmitOutcome::Accepted(id) = hub.submit(&alice, quick_job(2)) else {
            panic!("accepted");
        };
        assert!(hub.job_status(&bob, id).is_none());
        assert!(!hub.cancel(&bob, id));
        let listed = bob.university.clone();
        let bobs = hub.list_jobs(&bob);
        assert_eq!(bobs.get("jobs").seq().expect("list").len(), 0, "{listed}");
        hub.shutdown();
    }

    #[test]
    fn queue_full_rejects_and_counts() {
        // Zero-capacity queues with a single stalled worker: the
        // engine is busy, so later submissions find the queue full.
        let hub = Hub::new(HubConfig {
            workers: 1,
            queue_capacity: Some(0),
            ..HubConfig::default()
        })
        .expect("hub");
        let who = identity(AccessTier::Beginner);
        // Capacity 0 rejects everything that cannot start immediately;
        // there is a race with the worker picking up the first job, so
        // only the *count* is asserted.
        let mut accepted = 0;
        let mut rejected = 0;
        for seed in 0..6 {
            match hub.submit(&who, quick_job(seed)) {
                SubmitOutcome::Accepted(_) => accepted += 1,
                SubmitOutcome::QueueFull => rejected += 1,
                SubmitOutcome::RateLimited => panic!("no rate limit configured"),
            }
        }
        assert_eq!(accepted + rejected, 6);
        assert!(rejected > 0, "zero-capacity queue must reject");
        let metrics = hub.metrics();
        let rejected_gauge: u64 = metrics
            .get("admission")
            .get("rejected")
            .seq()
            .expect("rejected")
            .iter()
            .filter_map(Value::as_u64)
            .sum();
        assert_eq!(rejected_gauge, rejected);
        hub.shutdown();
    }

    #[test]
    fn journal_recovery_relists_completed_jobs() {
        let journal = std::env::temp_dir().join(format!(
            "chipforge-serve-hub-recovery-{}.jsonl",
            std::process::id()
        ));
        std::fs::remove_file(&journal).ok();
        let config = HubConfig {
            journal: Some(journal.clone()),
            ..HubConfig::default()
        };
        let who = identity(AccessTier::Intermediate);
        let hub = Hub::new(config.clone()).expect("hub");
        let mut ids = Vec::new();
        for seed in 0..3 {
            let SubmitOutcome::Accepted(id) = hub.submit(&who, quick_job(seed)) else {
                panic!("accepted");
            };
            ids.push(id);
        }
        for id in &ids {
            wait_terminal(&hub, &who, *id);
        }
        hub.shutdown();

        // Restart on the same journal: all completed jobs re-listed,
        // none duplicated, ids continue above the recovered range.
        let hub = Hub::new(config).expect("hub restarts");
        let listed = hub.list_jobs(&who);
        let jobs = listed.get("jobs").seq().expect("jobs").to_vec();
        assert_eq!(jobs.len(), 3, "recovered exactly the completed jobs");
        for job in &jobs {
            assert_eq!(job.get("state").as_str(), Some("succeeded"));
            assert_eq!(job.get("recovered"), &Value::Bool(true));
        }
        let SubmitOutcome::Accepted(new_id) = hub.submit(&who, quick_job(9)) else {
            panic!("accepted");
        };
        assert!(
            ids.iter().all(|id| *id != new_id),
            "fresh ids never collide with recovered ones"
        );
        wait_terminal(&hub, &who, new_id);
        hub.shutdown();
        std::fs::remove_file(&journal).ok();
    }

    #[test]
    fn cancel_only_hits_queued_jobs() {
        let hub = Hub::new(HubConfig {
            workers: 1,
            ..HubConfig::default()
        })
        .expect("hub");
        let who = identity(AccessTier::Beginner);
        // Stall the worker with a slow job, then queue another.
        let SubmitOutcome::Accepted(first) = hub.submit(
            &who,
            quick_job(1).with_fault(chipforge_exec::Fault::Hang(300)),
        ) else {
            panic!("accepted");
        };
        let SubmitOutcome::Accepted(second) = hub.submit(&who, quick_job(2)) else {
            panic!("accepted");
        };
        assert!(hub.cancel(&who, second), "queued job cancels");
        assert!(!hub.cancel(&who, second), "second cancel is a no-op");
        let status = wait_terminal(&hub, &who, second);
        assert_eq!(status.get("state").as_str(), Some("cancelled"));
        wait_terminal(&hub, &who, first);
        assert!(!hub.cancel(&who, first), "finished job cannot cancel");
        hub.shutdown();
    }
}
