//! chipforge-serve: the live multi-tenant enablement hub.
//!
//! Recommendation 7 of the position paper asks for a *centralized,
//! cloud-based* enablement platform that universities share. Until now
//! the repo modelled that platform twice — as a discrete-event
//! simulation (`chipforge-cloud`) and as a one-shot `forge batch` CLI —
//! but never ran it. This crate is the running service:
//!
//! - [`Server`] — a zero-external-dependency HTTP/1.1 daemon on
//!   `std::net::TcpListener` exposing job submit/status/result/cancel
//!   endpoints plus `/metrics` and `/healthz`. One request per
//!   connection, hard caps on request-line/header/body sizes, and every
//!   malformed input answered with a clean 4xx instead of a panic.
//! - [`Hub`] — the scheduling core. Admission is the *existing*
//!   `chipforge-admit` machinery, not a reimplementation: per-tier
//!   bounded [`ClassQueues`](chipforge_admit::ClassQueues), optional
//!   [`TokenBucket`](chipforge_admit::TokenBucket) rate limits and
//!   weighted [`FairShare`](chipforge_admit::FairShare) dispatch with
//!   aging — the same types the DES runs, which is what makes the E18
//!   model-vs-reality comparison meaningful. Jobs execute on the
//!   existing [`BatchEngine`](chipforge_exec::BatchEngine) with
//!   hub-wide shared artifact and stage caches.
//! - [`auth::KeyRegistry`] — per-university API keys mapped to the
//!   three access tiers; the key presented at submit decides which
//!   tier's queue, rate limit and fair-share weight a job is billed to.
//! - Progress streaming — each job runs under its own enabled
//!   [`Tracer`](chipforge_obs::Tracer); the status endpoint reports the
//!   finished flow-stage spans, so a polling client watches a job move
//!   through elaborate → synthesize → … → export while it runs.
//! - Crash recovery — completed jobs are appended to the fsynced
//!   `chipforge-resil` checkpoint journal; a restarted hub reloads it
//!   and re-lists every completed job with no duplicates or losses.
//! - [`loadgen`] — a deterministic trace replayer that submits a
//!   [`HubArrival`](chipforge_cloud::HubArrival) trace against a live
//!   server, closing the loop for experiment E18.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod auth;
pub mod client;
pub mod http;
pub mod hub;
pub mod loadgen;
pub mod server;

pub use api::job_from_json;
pub use auth::{Identity, KeyRegistry};
pub use client::Client;
pub use hub::{Hub, HubConfig, JobState, SubmitOutcome};
pub use loadgen::{replay_trace, ReplayJob, ReplayReport, ReplayTierStats};
pub use server::Server;
