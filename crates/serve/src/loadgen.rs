//! Deterministic trace replay against a live hub.
//!
//! Takes the same [`HubArrival`] trace the DES consumes, maps simulated
//! hours onto wall-clock milliseconds, and submits each arrival over
//! real HTTP at its scheduled instant (one timer thread per arrival, so
//! a slow submission never skews later ones). After the last arrival it
//! polls every accepted job to a terminal state and aggregates per-tier
//! turnaround and admission statistics — the live-side numbers E18
//! holds against the DES prediction.

use crate::client::Client;
use chipforge_cloud::HubArrival;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// What to submit for one trace arrival: the API key that decides the
/// tier/tenant, and the JSON job body.
#[derive(Debug, Clone)]
pub struct ReplayJob {
    /// API key presented for this submission.
    pub key: String,
    /// JSON body for `POST /api/v1/jobs`.
    pub body: String,
}

/// Per-tier outcome of a replay, indexed by `AccessTier::priority`.
#[derive(Debug, Clone, Default)]
pub struct ReplayTierStats {
    /// Arrivals submitted for this tier.
    pub offered: usize,
    /// Submissions answered 202.
    pub accepted: usize,
    /// Submissions refused (429: queue full or rate-limited).
    pub rejected: usize,
    /// Accepted jobs that reached `succeeded`.
    pub succeeded: usize,
    /// Accepted jobs that reached any other terminal state.
    pub not_succeeded: usize,
    /// Server-reported turnaround (submit to finish) per completed
    /// job, milliseconds, ascending.
    pub turnaround_ms: Vec<f64>,
}

impl ReplayTierStats {
    /// Nearest-rank percentile of the completed turnarounds.
    #[must_use]
    pub fn percentile_ms(&self, q: f64) -> f64 {
        if self.turnaround_ms.is_empty() {
            return 0.0;
        }
        let rank =
            ((self.turnaround_ms.len() as f64 * q) as usize).min(self.turnaround_ms.len() - 1);
        self.turnaround_ms[rank]
    }
}

/// Aggregate outcome of one replay run.
#[derive(Debug, Clone, Default)]
pub struct ReplayReport {
    /// Per-tier statistics.
    pub tiers: [ReplayTierStats; 3],
    /// Wall-clock span from first scheduled arrival to last observed
    /// completion, in milliseconds.
    pub horizon_ms: f64,
}

/// Replays `trace` against the hub at `addr`, submitting `jobs[i]` at
/// `trace[i].arrival_h * ms_per_hour` milliseconds after start.
///
/// # Errors
///
/// Returns the first transport failure, or a message when `jobs` and
/// `trace` lengths differ.
///
/// # Panics
///
/// Panics only on poisoned internal locks (a prior panic in a replay
/// thread).
pub fn replay_trace(
    addr: &str,
    trace: &[HubArrival],
    ms_per_hour: f64,
    jobs: &[ReplayJob],
    drain_timeout: Duration,
) -> Result<ReplayReport, String> {
    if trace.len() != jobs.len() {
        return Err(format!(
            "trace has {} arrivals but {} jobs were provided",
            trace.len(),
            jobs.len()
        ));
    }
    let start = Instant::now();
    let accepted: Mutex<Vec<(usize, u64)>> = Mutex::new(Vec::new());
    let refused: Mutex<Vec<usize>> = Mutex::new(Vec::new());
    let failures: Mutex<Vec<String>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for (i, (arrival, job)) in trace.iter().zip(jobs).enumerate() {
            let at = start + Duration::from_secs_f64(arrival.arrival_h * ms_per_hour / 1e3);
            let (accepted, refused, failures) = (&accepted, &refused, &failures);
            let client = Client::new(addr, job.key.clone());
            let body = job.body.clone();
            scope.spawn(move || {
                let now = Instant::now();
                if at > now {
                    std::thread::sleep(at - now);
                }
                match client.submit(&body) {
                    Ok(Ok(id)) => accepted.lock().expect("replay lock").push((i, id)),
                    Ok(Err(_refusal)) => refused.lock().expect("replay lock").push(i),
                    Err(e) => failures.lock().expect("replay lock").push(e),
                }
            });
        }
    });
    let transport_failures = failures.into_inner().expect("replay lock");
    if let Some(first) = transport_failures.first() {
        return Err(format!(
            "{} submission(s) failed at the transport level; first: {first}",
            transport_failures.len()
        ));
    }

    let mut report = ReplayReport::default();
    for arrival in trace {
        report.tiers[arrival.tier.priority() as usize].offered += 1;
    }
    for i in refused.into_inner().expect("replay lock") {
        report.tiers[trace[i].tier.priority() as usize].rejected += 1;
    }
    let mut horizon_ms = 0.0f64;
    for (i, id) in accepted.into_inner().expect("replay lock") {
        let tier = &mut report.tiers[trace[i].tier.priority() as usize];
        tier.accepted += 1;
        let client = Client::new(addr, jobs[i].key.clone());
        let status = client.wait(id, drain_timeout)?;
        let state = status.get("state").as_str().unwrap_or("unknown");
        if state == "succeeded" {
            tier.succeeded += 1;
        } else {
            tier.not_succeeded += 1;
        }
        if let (Some(submitted), Some(finished)) = (
            status.get("submitted_ms").as_f64(),
            status.get("finished_ms").as_f64(),
        ) {
            tier.turnaround_ms.push(finished - submitted);
            horizon_ms = horizon_ms.max(finished);
        }
    }
    for tier in &mut report.tiers {
        tier.turnaround_ms.sort_by(f64::total_cmp);
    }
    report.horizon_ms = horizon_ms;
    Ok(report)
}
