//! The HTTP front end: a `TcpListener` accept loop routing requests
//! onto a [`Hub`].
//!
//! One request per connection (`Connection: close`), one handler thread
//! per connection, 5-second socket timeouts. Handlers never unwrap
//! tainted input: every malformed request is answered with the 4xx the
//! parser mapped it to, so no byte sequence a client sends can take
//! down the accept loop.

use crate::auth::{Identity, KeyRegistry};
use crate::http::{error_body, read_request, write_response, HttpError, Request};
use crate::hub::{Hub, SubmitOutcome};
use serde::Value;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running hub server: the bound address plus the accept-loop thread.
pub struct Server {
    addr: SocketAddr,
    hub: Arc<Hub>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts serving `hub` with `keys` as the tenant registry.
    ///
    /// # Errors
    ///
    /// Returns the bind error, formatted.
    pub fn start(hub: Hub, keys: KeyRegistry, addr: &str) -> Result<Self, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        let local = listener
            .local_addr()
            .map_err(|e| format!("local addr: {e}"))?;
        let hub = Arc::new(hub);
        let stop = Arc::new(AtomicBool::new(false));
        let keys = Arc::new(keys);
        let accept_hub = Arc::clone(&hub);
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let hub = Arc::clone(&accept_hub);
                let keys = Arc::clone(&keys);
                std::thread::spawn(move || handle_connection(stream, &hub, &keys));
            }
        });
        Ok(Server {
            addr: local,
            hub,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound socket address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and shuts the hub down (drains running
    /// jobs, joins workers, closes the journal).
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Poke the listener so `incoming()` returns once more.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        self.hub.shutdown();
    }
}

fn handle_connection(stream: TcpStream, hub: &Hub, keys: &KeyRegistry) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let mut reader = BufReader::new(stream);
    let response = match read_request(&mut reader) {
        Ok(request) => route(&request, hub, keys),
        Err(error) => Err(error),
    };
    let mut stream = reader.into_inner();
    let (status, body) = match response {
        Ok((status, body)) => (status, body),
        Err(error) => (error.status, error_body(&error)),
    };
    let _ = write_response(&mut stream, status, &body);
}

fn authenticate<'a>(request: &Request, keys: &'a KeyRegistry) -> Result<&'a Identity, HttpError> {
    let presented = request
        .header("x-api-key")
        .ok_or_else(|| HttpError::new(401, "missing X-Api-Key header"))?;
    keys.identify(presented)
        .ok_or_else(|| HttpError::new(401, "unknown API key"))
}

fn json_field(pairs: Vec<(&str, Value)>) -> String {
    serde::json::to_string(&Value::Map(
        pairs
            .into_iter()
            .map(|(k, v)| (Value::Str(k.to_string()), v))
            .collect(),
    ))
}

/// Routes one parsed request. Returns `(status, body)` or the error to
/// send.
fn route(request: &Request, hub: &Hub, keys: &KeyRegistry) -> Result<(u16, String), HttpError> {
    let path = request.path.as_str();
    let method = request.method.as_str();
    match (method, path) {
        ("GET", "/healthz") => {
            return Ok((200, json_field(vec![("ok", Value::Bool(true))])));
        }
        ("GET", "/metrics") => {
            return Ok((200, serde::json::to_string(&hub.metrics())));
        }
        ("POST", "/api/v1/jobs") => {
            let who = authenticate(request, keys)?;
            return submit(request, hub, who);
        }
        ("GET", "/api/v1/jobs") => {
            let who = authenticate(request, keys)?;
            return Ok((200, serde::json::to_string(&hub.list_jobs(who))));
        }
        _ => {}
    }

    // /api/v1/jobs/<id>[/result|/cancel]
    if let Some(rest) = path.strip_prefix("/api/v1/jobs/") {
        let who = authenticate(request, keys)?;
        let (id_text, action) = match rest.split_once('/') {
            Some((id, action)) => (id, Some(action)),
            None => (rest, None),
        };
        let id: u64 = id_text
            .parse()
            .map_err(|_| HttpError::new(404, format!("no job `{id_text}`")))?;
        return match (method, action) {
            ("GET", None) => job_status(hub, who, id),
            ("GET", Some("result")) => job_result(hub, who, id),
            ("POST", Some("cancel")) => {
                if hub.cancel(who, id) {
                    Ok((200, json_field(vec![("cancelled", Value::U64(id))])))
                } else if hub.job_status(who, id).is_some() {
                    Err(HttpError::new(409, "job is not queued"))
                } else {
                    Err(HttpError::new(404, format!("no job {id}")))
                }
            }
            (_, None | Some("result" | "cancel")) => {
                Err(HttpError::new(405, format!("{method} not allowed here")))
            }
            _ => Err(HttpError::new(404, format!("no route `{path}`"))),
        };
    }

    // /cache/stage/<key> — the remote stage-cache protocol. Keyless by
    // design, like /metrics: cache bodies are checksum-framed snapshots
    // keyed by a 128-bit content hash, not tenant data.
    if let Some(rest) = path.strip_prefix("/cache/stage/") {
        return cache_stage(method, rest, request, hub);
    }

    if matches!(path, "/healthz" | "/metrics" | "/api/v1/jobs") {
        return Err(HttpError::new(405, format!("{method} not allowed here")));
    }
    Err(HttpError::new(404, format!("no route `{path}`")))
}

/// The content-addressed get/put/has protocol behind
/// `/cache/stage/<key>`: GET returns the framed snapshot (404 on miss),
/// HEAD probes presence, PUT stores a verified entry. 409 when the hub
/// runs without `--stage-cache`.
fn cache_stage(
    method: &str,
    key_text: &str,
    request: &Request,
    hub: &Hub,
) -> Result<(u16, String), HttpError> {
    let key = u128::from_str_radix(key_text, 16)
        .map_err(|_| HttpError::new(404, format!("no cache key `{key_text}`")))?;
    if !hub.cache_enabled() {
        return Err(HttpError::new(409, "stage cache disabled on this hub"));
    }
    match method {
        "GET" => hub
            .cache_get(key)
            .map(|body| (200, body))
            .ok_or_else(|| HttpError::new(404, format!("cache miss for `{key_text}`"))),
        "HEAD" => {
            if hub.cache_has(key) {
                Ok((200, String::new()))
            } else {
                Err(HttpError::new(404, format!("cache miss for `{key_text}`")))
            }
        }
        "PUT" => {
            let body = std::str::from_utf8(&request.body)
                .map_err(|_| HttpError::bad_request("body is not UTF-8"))?;
            hub.cache_put(key, body).map_err(HttpError::bad_request)?;
            Ok((
                200,
                json_field(vec![("stored", Value::Str(key_text.into()))]),
            ))
        }
        _ => Err(HttpError::new(405, format!("{method} not allowed here"))),
    }
}

fn submit(request: &Request, hub: &Hub, who: &Identity) -> Result<(u16, String), HttpError> {
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| HttpError::bad_request("body is not UTF-8"))?;
    let body =
        serde::json::parse(text).map_err(|e| HttpError::bad_request(format!("bad JSON: {e}")))?;
    let spec = crate::api::job_from_json(&body).map_err(HttpError::bad_request)?;
    match hub.submit(who, spec) {
        SubmitOutcome::Accepted(id) => Ok((
            202,
            json_field(vec![
                ("id", Value::U64(id)),
                ("state", Value::Str("queued".into())),
                ("tier", Value::Str(who.tier.to_string())),
            ]),
        )),
        SubmitOutcome::RateLimited => Err(HttpError::new(429, "tier rate limit exceeded")),
        SubmitOutcome::QueueFull => Err(HttpError::new(429, "tier queue is full")),
    }
}

fn job_status(hub: &Hub, who: &Identity, id: u64) -> Result<(u16, String), HttpError> {
    hub.job_status(who, id)
        .map(|status| (200, serde::json::to_string(&status)))
        .ok_or_else(|| HttpError::new(404, format!("no job {id}")))
}

fn job_result(hub: &Hub, who: &Identity, id: u64) -> Result<(u16, String), HttpError> {
    let status = hub
        .job_status(who, id)
        .ok_or_else(|| HttpError::new(404, format!("no job {id}")))?;
    match status.get("state").as_str() {
        Some("queued" | "running") => Err(HttpError::new(409, "job has not finished")),
        _ => Ok((200, serde::json::to_string(&status))),
    }
}
