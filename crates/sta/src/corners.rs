//! Multi-corner analysis: setup signed off at the slow corner, hold at the
//! fast corner.

use crate::{analyze, StaError, TimingOptions, TimingReport};
use chipforge_netlist::Netlist;
use chipforge_pdk::StdCellLibrary;
use serde::{Deserialize, Serialize};

/// A process/voltage/temperature corner as a delay derating factor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Corner {
    /// Corner name (e.g. `"ss_0p9v_125c"`).
    pub name: &'static str,
    /// Multiplier on every cell delay (1.0 = typical).
    pub derate: f64,
}

impl Corner {
    /// Typical corner.
    pub const TYPICAL: Corner = Corner {
        name: "tt_nom_25c",
        derate: 1.0,
    };
    /// Slow corner (slow process, low voltage, high temperature):
    /// setup signoff.
    pub const SLOW: Corner = Corner {
        name: "ss_lowv_125c",
        derate: 1.35,
    };
    /// Fast corner (fast process, high voltage, low temperature):
    /// hold signoff.
    pub const FAST: Corner = Corner {
        name: "ff_highv_m40c",
        derate: 0.75,
    };
}

/// Reports at all three standard corners.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CornerReport {
    /// Typical-corner report.
    pub typical: TimingReport,
    /// Slow-corner report (authoritative for setup).
    pub slow: TimingReport,
    /// Fast-corner report (authoritative for hold).
    pub fast: TimingReport,
}

impl CornerReport {
    /// Signoff setup slack: the slow corner's WNS.
    #[must_use]
    pub fn signoff_setup_wns_ps(&self) -> f64 {
        self.slow.wns_ps
    }

    /// Signoff hold slack: the fast corner's hold WNS.
    #[must_use]
    pub fn signoff_hold_wns_ps(&self) -> f64 {
        self.fast.hold_wns_ps
    }

    /// Whether the design closes timing at both signoff corners.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.signoff_setup_wns_ps() >= 0.0 && self.signoff_hold_wns_ps() >= 0.0
    }
}

/// Runs analysis at one corner by scaling arrival-relevant delays.
///
/// Delay derating is applied uniformly by scaling the clock constraint and
/// the resulting report back: `analyze` at period `T/derate` with
/// undeviated delays is equivalent to derated delays at period `T`, and
/// the report's times are rescaled so callers see real picoseconds.
///
/// # Errors
///
/// Propagates [`StaError`] from the underlying analysis.
pub fn analyze_at_corner(
    netlist: &Netlist,
    lib: &StdCellLibrary,
    options: &TimingOptions,
    corner: Corner,
) -> Result<TimingReport, StaError> {
    let mut scaled = options.clone();
    scaled.clock_period_ps = options.clock_period_ps / corner.derate;
    scaled.input_delay_ps = options.input_delay_ps / corner.derate;
    scaled.clock_skew_ps = options.clock_skew_ps / corner.derate;
    let mut report = analyze(netlist, lib, &scaled)?;
    let k = corner.derate;
    report.wns_ps *= k;
    report.tns_ps *= k;
    report.max_arrival_ps *= k;
    report.min_period_ps *= k;
    report.hold_wns_ps *= k;
    report.fmax_mhz = if report.min_period_ps > 0.0 {
        1e6 / report.min_period_ps
    } else {
        f64::INFINITY
    };
    for step in &mut report.critical_path {
        step.arrival_ps *= k;
    }
    Ok(report)
}

/// Runs the standard three-corner analysis.
///
/// # Errors
///
/// Propagates [`StaError`].
pub fn analyze_corners(
    netlist: &Netlist,
    lib: &StdCellLibrary,
    options: &TimingOptions,
) -> Result<CornerReport, StaError> {
    Ok(CornerReport {
        typical: analyze_at_corner(netlist, lib, options, Corner::TYPICAL)?,
        slow: analyze_at_corner(netlist, lib, options, Corner::SLOW)?,
        fast: analyze_at_corner(netlist, lib, options, Corner::FAST)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipforge_netlist::CellFunction;
    use chipforge_pdk::{LibraryKind, TechnologyNode};

    fn lib() -> StdCellLibrary {
        StdCellLibrary::generate(TechnologyNode::N130, LibraryKind::Open)
    }

    fn seq_netlist() -> Netlist {
        let mut nl = Netlist::new("seq");
        let q = nl.add_net("q");
        let d2 = nl.add_net("d2");
        let q2 = nl.add_net("q2");
        nl.add_cell("ff1", CellFunction::Dff, "DFF_X1", &[q2], q)
            .unwrap();
        nl.add_cell("inv", CellFunction::Inv, "INV_X1", &[q], d2)
            .unwrap();
        nl.add_cell("ff2", CellFunction::Dff, "DFF_X1", &[d2], q2)
            .unwrap();
        nl.mark_output("q2", q2).unwrap();
        nl
    }

    #[test]
    fn corners_order_arrivals() {
        let nl = seq_netlist();
        let lib = lib();
        let report = analyze_corners(&nl, &lib, &TimingOptions::new(5_000.0)).unwrap();
        assert!(report.slow.max_arrival_ps > report.typical.max_arrival_ps);
        assert!(report.fast.max_arrival_ps < report.typical.max_arrival_ps);
        // Derate is exact in this linear model.
        let ratio = report.slow.max_arrival_ps / report.typical.max_arrival_ps;
        assert!((ratio - Corner::SLOW.derate).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn setup_is_worst_at_slow_hold_at_fast() {
        let nl = seq_netlist();
        let lib = lib();
        let report = analyze_corners(&nl, &lib, &TimingOptions::new(2_000.0)).unwrap();
        assert!(report.slow.wns_ps <= report.typical.wns_ps);
        assert!(report.typical.wns_ps <= report.fast.wns_ps);
        assert!(report.fast.hold_wns_ps <= report.typical.hold_wns_ps);
    }

    #[test]
    fn signoff_summary_is_conservative() {
        let nl = seq_netlist();
        let lib = lib();
        let report = analyze_corners(&nl, &lib, &TimingOptions::new(5_000.0)).unwrap();
        assert_eq!(report.signoff_setup_wns_ps(), report.slow.wns_ps);
        assert_eq!(report.signoff_hold_wns_ps(), report.fast.hold_wns_ps);
        assert!(report.is_clean(), "relaxed clock closes at all corners");
    }

    #[test]
    fn typical_corner_matches_plain_analyze() {
        let nl = seq_netlist();
        let lib = lib();
        let opts = TimingOptions::new(4_000.0);
        let plain = analyze(&nl, &lib, &opts).unwrap();
        let typical = analyze_at_corner(&nl, &lib, &opts, Corner::TYPICAL).unwrap();
        assert_eq!(plain, typical);
    }
}
