//! # chipforge-sta
//!
//! Static timing analysis over mapped netlists.
//!
//! The analyzer propagates arrival times through the combinational core of
//! a [`chipforge_netlist::Netlist`] using the linear delay model of the
//! [`chipforge_pdk::StdCellLibrary`] cells (`delay = intrinsic + R · load`),
//! checks setup constraints at flip-flop D pins and primary outputs against
//! a clock period, and extracts the critical path. A companion gate-sizing
//! pass ([`size_cells`]) upsizes drive strengths along violating paths.
//!
//! Single-clock, setup-only analysis — hold checks are not modelled, which
//! matches the idealized zero-skew clock tree the flow assumes.
//!
//! ## Example
//!
//! ```
//! use chipforge_hdl::designs;
//! use chipforge_pdk::{LibraryKind, StdCellLibrary, TechnologyNode};
//! use chipforge_synth::{synthesize, SynthOptions};
//! use chipforge_sta::{analyze, TimingOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let module = designs::alu(8).elaborate()?;
//! let lib = StdCellLibrary::generate(TechnologyNode::N130, LibraryKind::Open);
//! let netlist = synthesize(&module, &lib, &SynthOptions::default())?.netlist;
//! let report = analyze(&netlist, &lib, &TimingOptions::new(10_000.0))?;
//! assert!(report.max_arrival_ps > 0.0);
//! assert!(report.wns_ps > 0.0, "10 ns is generous at 130 nm");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod corners;
mod sizing;

pub use corners::{analyze_at_corner, analyze_corners, Corner, CornerReport};
pub use sizing::{size_cells, SizingOutcome};

use chipforge_netlist::{NetDriver, NetId, Netlist, NetlistError};
use chipforge_pdk::StdCellLibrary;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Options for [`analyze`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingOptions {
    /// Clock period constraint in picoseconds.
    pub clock_period_ps: f64,
    /// Arrival time of primary inputs relative to the clock edge, in ps.
    pub input_delay_ps: f64,
    /// Extra wire capacitance per fanout, in fF. When `None`, a default is
    /// derived from the library's node (fanout-based wire-load model); pass
    /// explicit per-net capacitances via [`TimingOptions::net_wire_cap_ff`]
    /// after routing for back-annotated analysis.
    pub wire_cap_per_fanout_ff: Option<f64>,
    /// Post-route per-net wire capacitance in fF, keyed by net.
    pub net_wire_cap_ff: HashMap<NetId, f64>,
    /// Worst clock skew between any launching and capturing flip-flop, in
    /// ps (e.g. from clock-tree synthesis). Tightens both setup and hold.
    pub clock_skew_ps: f64,
}

impl TimingOptions {
    /// Creates options with the given clock period and defaults otherwise.
    #[must_use]
    pub fn new(clock_period_ps: f64) -> Self {
        Self {
            clock_period_ps,
            input_delay_ps: 0.0,
            wire_cap_per_fanout_ff: None,
            net_wire_cap_ff: HashMap::new(),
            clock_skew_ps: 0.0,
        }
    }

    /// Sets the clock skew (builder style).
    #[must_use]
    pub fn with_clock_skew_ps(mut self, skew_ps: f64) -> Self {
        self.clock_skew_ps = skew_ps;
        self
    }
}

/// One step of the critical path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathStep {
    /// Instance name of the driving cell, or the port name for PIs.
    pub through: String,
    /// Library cell, empty for ports.
    pub lib_cell: String,
    /// Arrival time at this step's output, in ps.
    pub arrival_ps: f64,
}

/// Result of a timing analysis run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingReport {
    /// Worst negative slack (positive value = constraint met), in ps.
    pub wns_ps: f64,
    /// Total negative slack (sum over violating endpoints), in ps.
    pub tns_ps: f64,
    /// Latest arrival anywhere in the design, in ps.
    pub max_arrival_ps: f64,
    /// Number of timing endpoints (FF D pins + primary outputs).
    pub endpoints: usize,
    /// Endpoints with negative slack.
    pub violations: usize,
    /// Smallest clock period that would meet timing, in ps.
    pub min_period_ps: f64,
    /// Maximum achievable clock frequency in MHz.
    pub fmax_mhz: f64,
    /// Worst hold slack at flip-flop data pins, in ps (positive = met).
    /// Hold checks are period-independent: they compare the *shortest*
    /// register-to-register path against the hold window plus clock skew.
    pub hold_wns_ps: f64,
    /// Flip-flop data pins violating hold.
    pub hold_violations: usize,
    /// The critical path, source to endpoint.
    pub critical_path: Vec<PathStep>,
}

/// Errors from timing analysis.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StaError {
    /// A netlist cell references a library cell that does not exist.
    UnknownLibCell {
        /// The instance referencing the missing cell.
        instance: String,
        /// The missing library cell name.
        lib_cell: String,
    },
    /// The netlist failed validation (e.g. combinational loop).
    Netlist(NetlistError),
}

impl fmt::Display for StaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaError::UnknownLibCell { instance, lib_cell } => {
                write!(
                    f,
                    "instance `{instance}` uses unknown library cell `{lib_cell}`"
                )
            }
            StaError::Netlist(e) => write!(f, "invalid netlist: {e}"),
        }
    }
}

impl Error for StaError {}

impl From<NetlistError> for StaError {
    fn from(e: NetlistError) -> Self {
        StaError::Netlist(e)
    }
}

/// Setup time of a flip-flop, derived from its intrinsic delay.
fn setup_time_ps(lib: &StdCellLibrary) -> f64 {
    lib.smallest(chipforge_pdk::CellClass::Dff)
        .map_or(0.0, |dff| dff.intrinsic_ps() * 0.3)
}

/// Hold time of a flip-flop, derived from its intrinsic delay.
fn hold_time_ps(lib: &StdCellLibrary) -> f64 {
    lib.smallest(chipforge_pdk::CellClass::Dff)
        .map_or(0.0, |dff| dff.intrinsic_ps() * 0.1)
}

/// Capacitive load on a net in fF.
fn net_load_ff(
    netlist: &Netlist,
    lib: &StdCellLibrary,
    net: NetId,
    options: &TimingOptions,
) -> Result<f64, StaError> {
    let mut load = 0.0;
    let net_ref = netlist.net(net);
    for &(sink, _) in net_ref.sinks() {
        let cell = netlist.cell(sink);
        let lib_cell = lib
            .cell(cell.lib_cell())
            .ok_or_else(|| StaError::UnknownLibCell {
                instance: cell.name().to_string(),
                lib_cell: cell.lib_cell().to_string(),
            })?;
        load += lib_cell.input_cap_ff();
    }
    if let Some(&wire) = options.net_wire_cap_ff.get(&net) {
        load += wire;
    } else {
        let per_fanout = options
            .wire_cap_per_fanout_ff
            .unwrap_or_else(|| lib.node().wire_cap_ff_per_um() * 5.0 * lib.row_height_um());
        load += per_fanout * net_ref.fanout() as f64;
    }
    Ok(load)
}

/// Runs setup timing analysis.
///
/// # Errors
///
/// Returns [`StaError::UnknownLibCell`] if an instance references a cell
/// absent from `lib`, or [`StaError::Netlist`] for invalid netlists.
pub fn analyze(
    netlist: &Netlist,
    lib: &StdCellLibrary,
    options: &TimingOptions,
) -> Result<TimingReport, StaError> {
    let order = netlist.combinational_order()?;
    let mut arrival: Vec<f64> = vec![0.0; netlist.net_count()];
    let mut min_arrival: Vec<f64> = vec![0.0; netlist.net_count()];
    // `prev[net]`: the input net through which the worst arrival came.
    let mut prev: Vec<Option<NetId>> = vec![None; netlist.net_count()];

    // Sources: primary inputs and flip-flop outputs.
    for (_, net) in netlist.inputs() {
        arrival[net.index()] = options.input_delay_ps;
        min_arrival[net.index()] = options.input_delay_ps;
    }
    for cell in netlist.cells() {
        if cell.is_sequential() {
            let lib_cell = lib
                .cell(cell.lib_cell())
                .ok_or_else(|| StaError::UnknownLibCell {
                    instance: cell.name().to_string(),
                    lib_cell: cell.lib_cell().to_string(),
                })?;
            // Clock-to-Q: intrinsic plus load-dependent drive delay.
            let load = net_load_ff(netlist, lib, cell.output(), options)?;
            arrival[cell.output().index()] = lib_cell.delay_ps(load);
            min_arrival[cell.output().index()] = lib_cell.delay_ps(load);
        }
    }

    for id in order {
        let cell = netlist.cell(id);
        let lib_cell = lib
            .cell(cell.lib_cell())
            .ok_or_else(|| StaError::UnknownLibCell {
                instance: cell.name().to_string(),
                lib_cell: cell.lib_cell().to_string(),
            })?;
        let mut worst_in = 0.0f64;
        let mut best_in = f64::INFINITY;
        let mut worst_net = None;
        for &input in cell.inputs() {
            if arrival[input.index()] >= worst_in {
                worst_in = arrival[input.index()];
                worst_net = Some(input);
            }
            best_in = best_in.min(min_arrival[input.index()]);
        }
        if !best_in.is_finite() {
            best_in = 0.0; // constant cells have no inputs
        }
        let load = net_load_ff(netlist, lib, cell.output(), options)?;
        let delay = lib_cell.delay_ps(load);
        arrival[cell.output().index()] = worst_in + delay;
        min_arrival[cell.output().index()] = best_in + delay;
        prev[cell.output().index()] = worst_net;
    }

    // Endpoints: FF D inputs (setup) and primary outputs.
    let setup = setup_time_ps(lib);
    let mut endpoints = 0usize;
    let mut violations = 0usize;
    let mut wns = f64::INFINITY;
    let mut tns = 0.0f64;
    let mut worst_endpoint_net: Option<NetId> = None;
    let mut max_arrival = 0.0f64;
    let mut endpoint_nets: Vec<(NetId, f64)> = Vec::new();
    for cell in netlist.cells() {
        if cell.is_sequential() {
            // Pin 0 is D for both DFF and DFFE; EN is also timed.
            for &input in cell.inputs() {
                endpoint_nets.push((input, setup));
            }
        }
    }
    for (_, net) in netlist.outputs() {
        endpoint_nets.push((*net, 0.0));
    }
    for (net, margin) in endpoint_nets {
        let arr = arrival[net.index()];
        endpoints += 1;
        max_arrival = max_arrival.max(arr);
        let slack = options.clock_period_ps - margin - arr - options.clock_skew_ps;
        if slack < 0.0 {
            violations += 1;
            tns += slack;
        }
        if slack < wns {
            wns = slack;
            worst_endpoint_net = Some(net);
        }
    }
    if endpoints == 0 {
        wns = options.clock_period_ps;
    }

    // Hold: shortest path into every flip-flop data pin must exceed the
    // hold window plus the skew a late-clocked capture flop may see.
    let hold = hold_time_ps(lib);
    let mut hold_wns = f64::INFINITY;
    let mut hold_violations = 0usize;
    for cell in netlist.cells() {
        if !cell.is_sequential() {
            continue;
        }
        for &input in cell.inputs() {
            let slack = min_arrival[input.index()] - hold - options.clock_skew_ps;
            if slack < 0.0 {
                hold_violations += 1;
            }
            hold_wns = hold_wns.min(slack);
        }
    }
    if !hold_wns.is_finite() {
        hold_wns = 0.0; // purely combinational designs have no hold checks
    }

    // Walk the critical path backwards.
    let mut critical_path = Vec::new();
    if let Some(mut net) = worst_endpoint_net {
        loop {
            let net_ref = netlist.net(net);
            let step = match net_ref.driver() {
                Some(NetDriver::Cell(cell)) => {
                    let cell = netlist.cell(cell);
                    PathStep {
                        through: cell.name().to_string(),
                        lib_cell: cell.lib_cell().to_string(),
                        arrival_ps: arrival[net.index()],
                    }
                }
                Some(NetDriver::Input(port)) => PathStep {
                    through: netlist.inputs()[port].0.clone(),
                    lib_cell: String::new(),
                    arrival_ps: arrival[net.index()],
                },
                None => break,
            };
            critical_path.push(step);
            // Stop at sequential or primary-input sources.
            let stop = match net_ref.driver() {
                Some(NetDriver::Cell(cell)) => netlist.cell(cell).is_sequential(),
                _ => true,
            };
            if stop {
                break;
            }
            match prev[net.index()] {
                Some(p) => net = p,
                None => break,
            }
        }
        critical_path.reverse();
    }

    // Slack = clock - margin - arrival, so the worst endpoint meets timing
    // exactly at period = clock - wns.
    let min_period = if endpoints == 0 {
        0.0
    } else {
        (options.clock_period_ps - wns).max(0.0)
    };
    let fmax = if min_period > 0.0 {
        1e6 / min_period
    } else {
        f64::INFINITY
    };
    Ok(TimingReport {
        wns_ps: wns,
        tns_ps: tns,
        max_arrival_ps: max_arrival,
        endpoints,
        violations,
        min_period_ps: min_period,
        fmax_mhz: fmax,
        hold_wns_ps: hold_wns,
        hold_violations,
        critical_path,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipforge_netlist::CellFunction;
    use chipforge_pdk::{LibraryKind, TechnologyNode};

    fn lib() -> StdCellLibrary {
        StdCellLibrary::generate(TechnologyNode::N130, LibraryKind::Open)
    }

    fn inverter_chain(n: usize) -> Netlist {
        let mut nl = Netlist::new("chain");
        let mut prev = nl.add_input("a");
        for i in 0..n {
            let next = nl.add_net(format!("w{i}"));
            nl.add_cell(format!("u{i}"), CellFunction::Inv, "INV_X1", &[prev], next)
                .unwrap();
            prev = next;
        }
        nl.mark_output("y", prev).unwrap();
        nl
    }

    #[test]
    fn longer_chains_have_later_arrivals() {
        let lib = lib();
        let opts = TimingOptions::new(10_000.0);
        let short = analyze(&inverter_chain(2), &lib, &opts).unwrap();
        let long = analyze(&inverter_chain(10), &lib, &opts).unwrap();
        assert!(long.max_arrival_ps > short.max_arrival_ps * 3.0);
    }

    #[test]
    fn critical_path_traverses_chain() {
        let lib = lib();
        let report = analyze(&inverter_chain(5), &lib, &TimingOptions::new(10_000.0)).unwrap();
        // PI + 5 inverters.
        assert_eq!(report.critical_path.len(), 6);
        assert_eq!(report.critical_path[0].through, "a");
        assert_eq!(report.critical_path[5].through, "u4");
        // Arrivals strictly increase along the path.
        for pair in report.critical_path.windows(2) {
            assert!(pair[1].arrival_ps > pair[0].arrival_ps);
        }
    }

    #[test]
    fn tight_clock_causes_violations() {
        let lib = lib();
        let netlist = inverter_chain(20);
        let relaxed = analyze(&netlist, &lib, &TimingOptions::new(1e6)).unwrap();
        assert_eq!(relaxed.violations, 0);
        assert!(relaxed.wns_ps > 0.0);
        let tight = analyze(&netlist, &lib, &TimingOptions::new(10.0)).unwrap();
        assert!(tight.violations > 0);
        assert!(tight.wns_ps < 0.0);
        assert!(tight.tns_ps < 0.0);
    }

    #[test]
    fn min_period_is_self_consistent() {
        let lib = lib();
        let netlist = inverter_chain(8);
        let report = analyze(&netlist, &lib, &TimingOptions::new(5_000.0)).unwrap();
        // Re-analyzing at exactly min_period must meet timing.
        let at_min = analyze(&netlist, &lib, &TimingOptions::new(report.min_period_ps)).unwrap();
        assert!(
            at_min.wns_ps >= -1e-9,
            "wns at min period: {}",
            at_min.wns_ps
        );
        // And 1% below must violate.
        let below = analyze(
            &netlist,
            &lib,
            &TimingOptions::new(report.min_period_ps * 0.99),
        )
        .unwrap();
        assert!(below.wns_ps < 0.0);
    }

    #[test]
    fn sequential_paths_include_clk_to_q_and_setup() {
        let lib = lib();
        // FF -> INV -> FF
        let mut nl = Netlist::new("seq");
        let q = nl.add_net("q");
        let d2 = nl.add_net("d2");
        let q2 = nl.add_net("q2");
        nl.add_cell("ff1", CellFunction::Dff, "DFF_X1", &[q2], q)
            .unwrap();
        nl.add_cell("inv", CellFunction::Inv, "INV_X1", &[q], d2)
            .unwrap();
        nl.add_cell("ff2", CellFunction::Dff, "DFF_X1", &[d2], q2)
            .unwrap();
        nl.mark_output("q2", q2).unwrap();
        let report = analyze(&nl, &lib, &TimingOptions::new(10_000.0)).unwrap();
        let clk_q = lib
            .smallest(chipforge_pdk::CellClass::Dff)
            .unwrap()
            .intrinsic_ps();
        assert!(
            report.max_arrival_ps > clk_q,
            "path must include clock-to-Q ({clk_q} ps), got {}",
            report.max_arrival_ps
        );
        assert!(report.endpoints >= 2);
    }

    #[test]
    fn unknown_lib_cell_is_reported() {
        let lib = lib();
        let mut nl = Netlist::new("bad");
        let a = nl.add_input("a");
        let y = nl.add_net("y");
        nl.add_cell("u0", CellFunction::Inv, "MYSTERY_X9", &[a], y)
            .unwrap();
        nl.mark_output("y", y).unwrap();
        let err = analyze(&nl, &lib, &TimingOptions::new(1000.0)).unwrap_err();
        assert!(matches!(err, StaError::UnknownLibCell { .. }));
    }

    #[test]
    fn back_annotated_wire_caps_slow_the_path() {
        let lib = lib();
        let netlist = inverter_chain(4);
        let base = analyze(&netlist, &lib, &TimingOptions::new(10_000.0)).unwrap();
        let mut opts = TimingOptions::new(10_000.0);
        for net in netlist.nets() {
            opts.net_wire_cap_ff.insert(net.id(), 50.0);
        }
        let loaded = analyze(&netlist, &lib, &opts).unwrap();
        assert!(loaded.max_arrival_ps > 2.0 * base.max_arrival_ps);
    }

    #[test]
    fn hold_is_met_without_skew_and_fails_with_large_skew() {
        let lib = lib();
        // FF -> INV -> FF: one gate of min-path delay.
        let mut nl = Netlist::new("seq");
        let q = nl.add_net("q");
        let d2 = nl.add_net("d2");
        let q2 = nl.add_net("q2");
        nl.add_cell("ff1", CellFunction::Dff, "DFF_X1", &[q2], q)
            .unwrap();
        nl.add_cell("inv", CellFunction::Inv, "INV_X1", &[q], d2)
            .unwrap();
        nl.add_cell("ff2", CellFunction::Dff, "DFF_X1", &[d2], q2)
            .unwrap();
        nl.mark_output("q2", q2).unwrap();
        let clean = analyze(&nl, &lib, &TimingOptions::new(10_000.0)).unwrap();
        assert!(
            clean.hold_wns_ps > 0.0,
            "clk-to-Q + INV covers the hold window"
        );
        assert_eq!(clean.hold_violations, 0);
        // A huge skew breaks hold on the shortest path.
        let skewed = analyze(
            &nl,
            &lib,
            &TimingOptions::new(10_000.0).with_clock_skew_ps(500.0),
        )
        .unwrap();
        assert!(skewed.hold_wns_ps < 0.0);
        assert!(skewed.hold_violations > 0);
        // Skew also eats into setup.
        assert!(skewed.wns_ps < clean.wns_ps);
    }

    #[test]
    fn combinational_designs_have_no_hold_checks() {
        let lib = lib();
        let report = analyze(&inverter_chain(3), &lib, &TimingOptions::new(1_000.0)).unwrap();
        assert_eq!(report.hold_violations, 0);
        assert_eq!(report.hold_wns_ps, 0.0);
    }

    #[test]
    fn combinational_loop_is_an_error() {
        let lib = lib();
        let mut nl = Netlist::new("loop");
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        nl.add_cell("u1", CellFunction::Inv, "INV_X1", &[a], b)
            .unwrap();
        nl.add_cell("u2", CellFunction::Inv, "INV_X1", &[b], a)
            .unwrap();
        let err = analyze(&nl, &lib, &TimingOptions::new(1000.0)).unwrap_err();
        assert!(matches!(err, StaError::Netlist(_)));
    }
}
