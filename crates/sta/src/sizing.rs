//! Timing-driven gate sizing.

use crate::{analyze, StaError, TimingOptions, TimingReport};
use chipforge_netlist::Netlist;
use chipforge_pdk::{CellClass, StdCellLibrary};
use serde::{Deserialize, Serialize};

/// Result of a [`size_cells`] run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SizingOutcome {
    /// Cells whose drive strength was increased.
    pub upsized_cells: usize,
    /// Sizing iterations executed.
    pub iterations: usize,
    /// Timing report after the final iteration.
    pub final_report: TimingReport,
}

/// Iteratively upsizes cells on the critical path until timing is met, no
/// further improvement is possible, or `max_iterations` is reached.
///
/// Greedy heuristic: each iteration re-analyzes timing and bumps every
/// critical-path cell that still has a stronger library variant to the
/// next drive strength. Libraries with a single drive per class (beginner
/// tiers) simply converge immediately.
///
/// # Errors
///
/// Propagates [`StaError`] from the embedded timing analyses.
pub fn size_cells(
    netlist: &mut Netlist,
    lib: &StdCellLibrary,
    options: &TimingOptions,
    max_iterations: usize,
) -> Result<SizingOutcome, StaError> {
    let mut upsized_total = 0usize;
    let mut iterations = 0usize;
    let mut report = analyze(netlist, lib, options)?;
    while report.wns_ps < 0.0 && iterations < max_iterations {
        iterations += 1;
        let mut upsized_now = 0usize;
        for step in &report.critical_path {
            if step.lib_cell.is_empty() {
                continue; // port
            }
            let Some(current) = lib.cell(&step.lib_cell) else {
                continue;
            };
            let Some(class) = CellClass::from_lib_cell(&step.lib_cell) else {
                continue;
            };
            let variants = lib.variants(class);
            let Some(pos) = variants.iter().position(|c| c.name() == current.name()) else {
                continue;
            };
            if pos + 1 >= variants.len() {
                continue; // already strongest
            }
            let stronger = variants[pos + 1].name().to_string();
            if let Some(cell_id) = netlist.find_cell(&step.through) {
                netlist.cell_mut(cell_id).set_lib_cell(stronger);
                upsized_now += 1;
            }
        }
        if upsized_now == 0 {
            break; // stuck: every critical cell is at max drive
        }
        upsized_total += upsized_now;
        report = analyze(netlist, lib, options)?;
    }
    Ok(SizingOutcome {
        upsized_cells: upsized_total,
        iterations,
        final_report: report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipforge_netlist::CellFunction;
    use chipforge_pdk::{LibraryKind, TechnologyNode};

    /// A chain of heavily loaded NAND gates: X1 drives are slow, upsizing
    /// helps.
    fn loaded_chain(stages: usize, fanout: usize) -> Netlist {
        let mut nl = Netlist::new("loaded");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let mut prev = a;
        for i in 0..stages {
            let out = nl.add_net(format!("w{i}"));
            nl.add_cell(
                format!("u{i}"),
                CellFunction::Nand2,
                "NAND2_X1",
                &[prev, b],
                out,
            )
            .unwrap();
            // Dummy load cells on each stage output.
            for j in 0..fanout {
                let sink = nl.add_net(format!("l{i}_{j}"));
                nl.add_cell(
                    format!("load{i}_{j}"),
                    CellFunction::Inv,
                    "INV_X1",
                    &[out],
                    sink,
                )
                .unwrap();
            }
            prev = out;
        }
        nl.mark_output("y", prev).unwrap();
        nl
    }

    #[test]
    fn sizing_improves_wns_on_loaded_paths() {
        let lib = StdCellLibrary::generate(TechnologyNode::N130, LibraryKind::Commercial);
        let mut netlist = loaded_chain(8, 12);
        let base = analyze(&netlist, &lib, &TimingOptions::new(1.0)).unwrap();
        let outcome = size_cells(&mut netlist, &lib, &TimingOptions::new(1.0), 10).unwrap();
        assert!(outcome.upsized_cells > 0);
        assert!(
            outcome.final_report.min_period_ps < base.min_period_ps,
            "sizing must shorten the critical path: {} -> {}",
            base.min_period_ps,
            outcome.final_report.min_period_ps
        );
    }

    #[test]
    fn sizing_is_noop_when_timing_met() {
        let lib = StdCellLibrary::generate(TechnologyNode::N130, LibraryKind::Commercial);
        let mut netlist = loaded_chain(2, 1);
        let outcome = size_cells(&mut netlist, &lib, &TimingOptions::new(1e9), 10).unwrap();
        assert_eq!(outcome.upsized_cells, 0);
        assert_eq!(outcome.iterations, 0);
    }

    #[test]
    fn sizing_terminates_at_max_drive() {
        // Open library has only X1/X2: an impossible constraint converges
        // quickly instead of looping forever.
        let lib = StdCellLibrary::generate(TechnologyNode::N130, LibraryKind::Open);
        let mut netlist = loaded_chain(20, 8);
        let outcome = size_cells(&mut netlist, &lib, &TimingOptions::new(1.0), 50).unwrap();
        assert!(outcome.iterations < 50, "must stop when saturated");
        assert!(outcome.final_report.wns_ps < 0.0, "1 ps is unmeetable");
    }
}
