//! Property tests: timing analysis monotonicity and self-consistency on
//! random gate trees.

use chipforge_netlist::{CellFunction, NetId, Netlist};
use chipforge_pdk::{LibraryKind, StdCellLibrary, TechnologyNode};
use chipforge_sta::{analyze, size_cells, TimingOptions};
use proptest::prelude::*;

/// Strategy: a random combinational tree netlist over mapped gates.
fn random_netlist() -> impl Strategy<Value = Netlist> {
    let gate = prop_oneof![
        Just((CellFunction::Inv, "INV_X1")),
        Just((CellFunction::Nand2, "NAND2_X1")),
        Just((CellFunction::Nor2, "NOR2_X1")),
        Just((CellFunction::Xor2, "XOR2_X1")),
        Just((CellFunction::And2, "AND2_X1")),
    ];
    (
        2usize..5,
        proptest::collection::vec((gate, any::<u64>()), 1..30),
    )
        .prop_map(|(inputs, gates)| {
            let mut nl = Netlist::new("rand");
            let mut pool: Vec<NetId> = (0..inputs)
                .map(|i| nl.add_input(format!("in{i}")))
                .collect();
            for (i, ((function, lib_cell), seed)) in gates.into_iter().enumerate() {
                let out = nl.add_net(format!("w{i}"));
                let picks: Vec<NetId> = (0..function.input_count())
                    .map(|k| pool[((seed >> (8 * k)) as usize) % pool.len()])
                    .collect();
                nl.add_cell(format!("g{i}"), function, lib_cell, &picks, out)
                    .expect("valid by construction");
                pool.push(out);
            }
            let last = *pool.last().expect("nonempty");
            nl.mark_output("y", last).expect("exists");
            nl
        })
}

fn lib() -> StdCellLibrary {
    StdCellLibrary::generate(TechnologyNode::N130, LibraryKind::Open)
}

proptest! {
    #[test]
    fn longer_clock_period_never_decreases_slack(nl in random_netlist(), period in 100.0f64..10_000.0) {
        let lib = lib();
        let short = analyze(&nl, &lib, &TimingOptions::new(period)).expect("analyzes");
        let long = analyze(&nl, &lib, &TimingOptions::new(period * 2.0)).expect("analyzes");
        prop_assert!(long.wns_ps >= short.wns_ps);
        prop_assert!(long.violations <= short.violations);
        // Arrivals are period-independent.
        prop_assert!((long.max_arrival_ps - short.max_arrival_ps).abs() < 1e-9);
        prop_assert!((long.min_period_ps - short.min_period_ps).abs() < 1e-6);
    }

    #[test]
    fn extra_wire_cap_never_speeds_up(nl in random_netlist(), cap in 0.5f64..50.0) {
        let lib = lib();
        // Baseline: zero wire (pin caps only); adding explicit wire cap on
        // every net can then only slow the design down.
        let mut base_opts = TimingOptions::new(1e6);
        base_opts.wire_cap_per_fanout_ff = Some(0.0);
        let base = analyze(&nl, &lib, &base_opts).expect("analyzes");
        let mut opts = TimingOptions::new(1e6);
        opts.wire_cap_per_fanout_ff = Some(0.0);
        for net in nl.nets() {
            opts.net_wire_cap_ff.insert(net.id(), cap);
        }
        let loaded = analyze(&nl, &lib, &opts).expect("analyzes");
        prop_assert!(loaded.max_arrival_ps >= base.max_arrival_ps - 1e-9);
    }

    #[test]
    fn critical_path_arrivals_increase(nl in random_netlist()) {
        let lib = lib();
        let report = analyze(&nl, &lib, &TimingOptions::new(1e6)).expect("analyzes");
        for pair in report.critical_path.windows(2) {
            prop_assert!(pair[1].arrival_ps >= pair[0].arrival_ps);
        }
        if let Some(last) = report.critical_path.last() {
            prop_assert!(last.arrival_ps <= report.max_arrival_ps + 1e-9);
        }
    }

    #[test]
    fn sizing_never_worsens_min_period(nl in random_netlist()) {
        let lib = StdCellLibrary::generate(TechnologyNode::N130, LibraryKind::Commercial);
        let mut netlist = nl;
        let before = analyze(&netlist, &lib, &TimingOptions::new(1.0)).expect("analyzes");
        let outcome = size_cells(&mut netlist, &lib, &TimingOptions::new(1.0), 5).expect("sizes");
        prop_assert!(
            outcome.final_report.min_period_ps <= before.min_period_ps * 1.0001,
            "{} -> {}",
            before.min_period_ps,
            outcome.final_report.min_period_ps
        );
    }

    #[test]
    fn skew_tightens_setup_monotonically(nl in random_netlist(), skew in 0.0f64..200.0) {
        let lib = lib();
        let clean = analyze(&nl, &lib, &TimingOptions::new(5_000.0)).expect("analyzes");
        let skewed = analyze(
            &nl,
            &lib,
            &TimingOptions::new(5_000.0).with_clock_skew_ps(skew),
        )
        .expect("analyzes");
        prop_assert!(skewed.wns_ps <= clean.wns_ps + 1e-9);
    }
}
