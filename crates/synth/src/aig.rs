//! And-inverter graph with structural hashing and constant folding.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Index of an AIG node. Node 0 is the constant-false node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The constant-false node.
    pub const FALSE: NodeId = NodeId(0);

    /// Dense index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a node id from a dense index (for external tools walking
    /// the graph, e.g. the equivalence checker in `chipforge-verify`).
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }
}

/// A literal: a node reference with an optional complement.
///
/// Encoded as `node << 1 | complement`, the classic AIGER convention.
///
/// ```
/// use chipforge_synth::Lit;
/// let a = Lit::FALSE;
/// assert_eq!(!a, Lit::TRUE);
/// assert!(Lit::TRUE.is_complemented());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Lit(u32);

impl Lit {
    /// Constant false.
    pub const FALSE: Lit = Lit(0);
    /// Constant true (complemented false).
    pub const TRUE: Lit = Lit(1);

    /// Creates a literal from a node and complement flag.
    #[must_use]
    pub fn new(node: NodeId, complement: bool) -> Self {
        Lit(node.0 << 1 | u32::from(complement))
    }

    /// The referenced node.
    #[must_use]
    pub fn node(self) -> NodeId {
        NodeId(self.0 >> 1)
    }

    /// Whether the literal is complemented.
    #[must_use]
    pub fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// True if this is the constant-false or constant-true literal.
    #[must_use]
    pub fn is_constant(self) -> bool {
        self.node() == NodeId::FALSE
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_complemented() {
            write!(f, "!{}", self.node().index())
        } else {
            write!(f, "{}", self.node().index())
        }
    }
}

/// Node payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) enum AigNode {
    /// Constant false (node 0 only).
    False,
    /// Primary input or latch output.
    Input,
    /// Two-input AND of two literals (ordered `a <= b` for hashing).
    And(Lit, Lit),
}

/// A latch (D flip-flop): output node `q`, next-state literal `d`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Latch {
    /// Latch output node (appears as an input to combinational logic).
    pub q: NodeId,
    /// Next-state literal.
    pub d: Lit,
    /// Register name, bit-indexed (e.g. `count[3]`).
    pub name: String,
}

/// Statistics of an AIG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AigStats {
    /// Number of AND nodes.
    pub ands: usize,
    /// Number of primary inputs (excluding latch outputs).
    pub inputs: usize,
    /// Number of latches.
    pub latches: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Depth in AND levels of the deepest output/latch cone.
    pub depth: usize,
}

/// An and-inverter graph with named inputs, outputs and latches.
///
/// Construction performs structural hashing and constant folding, so the
/// graph never contains duplicate or trivially simplifiable AND nodes.
///
/// ```
/// use chipforge_synth::Aig;
///
/// let mut aig = Aig::new("xor");
/// let a = aig.add_input("a");
/// let b = aig.add_input("b");
/// let y = aig.xor(a, b);
/// aig.add_output("y", y);
/// assert_eq!(aig.stats().ands, 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Aig {
    name: String,
    pub(crate) nodes: Vec<AigNode>,
    pub(crate) inputs: Vec<(String, NodeId)>,
    pub(crate) latches: Vec<Latch>,
    pub(crate) outputs: Vec<(String, Lit)>,
    #[serde(skip)]
    strash: HashMap<(Lit, Lit), NodeId>,
}

impl Aig {
    /// Creates an empty AIG.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            nodes: vec![AigNode::False],
            inputs: Vec::new(),
            latches: Vec::new(),
            outputs: Vec::new(),
            strash: HashMap::new(),
        }
    }

    /// Graph name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a primary input and returns its (uncomplemented) literal.
    pub fn add_input(&mut self, name: impl Into<String>) -> Lit {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(AigNode::Input);
        self.inputs.push((name.into(), id));
        Lit::new(id, false)
    }

    /// Adds a latch; its output literal can be used immediately, the
    /// next-state function is set later with [`Aig::set_latch_next`].
    pub fn add_latch(&mut self, name: impl Into<String>) -> Lit {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(AigNode::Input);
        self.latches.push(Latch {
            q: id,
            d: Lit::FALSE,
            name: name.into(),
        });
        Lit::new(id, false)
    }

    /// Sets the next-state literal of the latch with output `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not a latch output.
    pub fn set_latch_next(&mut self, q: NodeId, d: Lit) {
        let latch = self
            .latches
            .iter_mut()
            .find(|l| l.q == q)
            .expect("q must be a latch output");
        latch.d = d;
    }

    /// Registers a named output.
    pub fn add_output(&mut self, name: impl Into<String>, lit: Lit) {
        self.outputs.push((name.into(), lit));
    }

    /// Named primary inputs.
    #[must_use]
    pub fn inputs(&self) -> &[(String, NodeId)] {
        &self.inputs
    }

    /// Latches.
    #[must_use]
    pub fn latches(&self) -> &[Latch] {
        &self.latches
    }

    /// Named outputs.
    #[must_use]
    pub fn outputs(&self) -> &[(String, Lit)] {
        &self.outputs
    }

    /// Number of nodes including constants and inputs.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Returns the AND fanins of a node, if it is an AND.
    #[must_use]
    pub fn and_fanins(&self, node: NodeId) -> Option<(Lit, Lit)> {
        match self.nodes[node.index()] {
            AigNode::And(a, b) => Some((a, b)),
            _ => None,
        }
    }

    /// Whether the node is an input or latch output.
    #[must_use]
    pub fn is_input(&self, node: NodeId) -> bool {
        matches!(self.nodes[node.index()], AigNode::Input)
    }

    /// AND with structural hashing and constant folding.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        // Constant folding.
        if a == Lit::FALSE || b == Lit::FALSE {
            return Lit::FALSE;
        }
        if a == Lit::TRUE {
            return b;
        }
        if b == Lit::TRUE {
            return a;
        }
        if a == b {
            return a;
        }
        if a == !b {
            return Lit::FALSE;
        }
        // Canonical order for hashing.
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        if let Some(&node) = self.strash.get(&(a, b)) {
            return Lit::new(node, false);
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(AigNode::And(a, b));
        self.strash.insert((a, b), id);
        Lit::new(id, false)
    }

    /// OR via De Morgan.
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(!a, !b)
    }

    /// XOR (three AND nodes).
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let ab = self.and(a, !b);
        let ba = self.and(!a, b);
        self.or(ab, ba)
    }

    /// Two-way multiplexer: `s ? t : e`.
    pub fn mux(&mut self, s: Lit, t: Lit, e: Lit) -> Lit {
        let st = self.and(s, t);
        let se = self.and(!s, e);
        self.or(st, se)
    }

    /// Conjunction of many literals (balanced tree).
    pub fn and_many(&mut self, lits: &[Lit]) -> Lit {
        match lits {
            [] => Lit::TRUE,
            [single] => *single,
            _ => {
                let mut layer: Vec<Lit> = lits.to_vec();
                while layer.len() > 1 {
                    let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                    for pair in layer.chunks(2) {
                        next.push(match pair {
                            [a, b] => self.and(*a, *b),
                            [a] => *a,
                            _ => unreachable!("chunks(2)"),
                        });
                    }
                    layer = next;
                }
                layer[0]
            }
        }
    }

    /// Disjunction of many literals (balanced tree).
    pub fn or_many(&mut self, lits: &[Lit]) -> Lit {
        let inverted: Vec<Lit> = lits.iter().map(|&l| !l).collect();
        !self.and_many(&inverted)
    }

    /// Statistics (counts and depth).
    #[must_use]
    pub fn stats(&self) -> AigStats {
        let mut level = vec![0usize; self.nodes.len()];
        let mut depth = 0;
        for (i, node) in self.nodes.iter().enumerate() {
            if let AigNode::And(a, b) = node {
                level[i] = 1 + level[a.node().index()].max(level[b.node().index()]);
            }
        }
        for (_, lit) in &self.outputs {
            depth = depth.max(level[lit.node().index()]);
        }
        for latch in &self.latches {
            depth = depth.max(level[latch.d.node().index()]);
        }
        AigStats {
            ands: self
                .nodes
                .iter()
                .filter(|n| matches!(n, AigNode::And(..)))
                .count(),
            inputs: self.inputs.len(),
            latches: self.latches.len(),
            outputs: self.outputs.len(),
            depth,
        }
    }

    /// Simulates one combinational evaluation. `input_values` must match
    /// [`Aig::inputs`] order; `latch_values` matches [`Aig::latches`] order.
    /// Returns the value of every node.
    ///
    /// # Panics
    ///
    /// Panics if the value slices have wrong lengths.
    #[must_use]
    pub fn simulate(&self, input_values: &[bool], latch_values: &[bool]) -> Vec<bool> {
        assert_eq!(input_values.len(), self.inputs.len());
        assert_eq!(latch_values.len(), self.latches.len());
        let mut values = vec![false; self.nodes.len()];
        for ((_, id), &v) in self.inputs.iter().zip(input_values) {
            values[id.index()] = v;
        }
        for (latch, &v) in self.latches.iter().zip(latch_values) {
            values[latch.q.index()] = v;
        }
        // Nodes are created in topological order (fanins precede fanouts).
        for (i, node) in self.nodes.iter().enumerate() {
            if let AigNode::And(a, b) = node {
                let va = values[a.node().index()] ^ a.is_complemented();
                let vb = values[b.node().index()] ^ b.is_complemented();
                values[i] = va && vb;
            }
        }
        values
    }

    /// Reads a literal's value from a [`Aig::simulate`] result.
    #[must_use]
    pub fn lit_value(values: &[bool], lit: Lit) -> bool {
        values[lit.node().index()] ^ lit.is_complemented()
    }

    /// Bit-parallel variant of [`Aig::simulate`]: evaluates 64 input
    /// vectors at once, one per bit lane of the `u64` words. Lane `i` of
    /// every returned word equals the scalar simulation of lane `i` of
    /// the inputs and latches, so one pass over the graph replaces 64.
    ///
    /// # Panics
    ///
    /// Panics if the value slices have wrong lengths.
    #[must_use]
    pub fn simulate64(&self, input_values: &[u64], latch_values: &[u64]) -> Vec<u64> {
        assert_eq!(input_values.len(), self.inputs.len());
        assert_eq!(latch_values.len(), self.latches.len());
        let mut values = vec![0u64; self.nodes.len()];
        for ((_, id), &v) in self.inputs.iter().zip(input_values) {
            values[id.index()] = v;
        }
        for (latch, &v) in self.latches.iter().zip(latch_values) {
            values[latch.q.index()] = v;
        }
        // Nodes are created in topological order (fanins precede fanouts).
        for (i, node) in self.nodes.iter().enumerate() {
            if let AigNode::And(a, b) = node {
                let va = values[a.node().index()] ^ complement_mask(a.is_complemented());
                let vb = values[b.node().index()] ^ complement_mask(b.is_complemented());
                values[i] = va & vb;
            }
        }
        values
    }

    /// Reads a literal's 64-lane value from a [`Aig::simulate64`] result.
    #[must_use]
    pub fn lit_value64(values: &[u64], lit: Lit) -> u64 {
        values[lit.node().index()] ^ complement_mask(lit.is_complemented())
    }

    /// Reference counts: how many times each node is used as a fanin
    /// (including outputs and latch next-states).
    #[must_use]
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut refs = vec![0u32; self.nodes.len()];
        for node in &self.nodes {
            if let AigNode::And(a, b) = node {
                refs[a.node().index()] += 1;
                refs[b.node().index()] += 1;
            }
        }
        for (_, lit) in &self.outputs {
            refs[lit.node().index()] += 1;
        }
        for latch in &self.latches {
            refs[latch.d.node().index()] += 1;
        }
        refs
    }
}

/// All-ones when complemented, so `value ^ mask` inverts every lane.
fn complement_mask(complemented: bool) -> u64 {
    if complemented {
        u64::MAX
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        assert_eq!(aig.and(a, Lit::FALSE), Lit::FALSE);
        assert_eq!(aig.and(a, Lit::TRUE), a);
        assert_eq!(aig.and(a, a), a);
        assert_eq!(aig.and(a, !a), Lit::FALSE);
        assert_eq!(aig.stats().ands, 0, "no AND nodes created");
    }

    #[test]
    fn structural_hashing_dedups() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let x = aig.and(a, b);
        let y = aig.and(b, a);
        assert_eq!(x, y);
        assert_eq!(aig.stats().ands, 1);
    }

    #[test]
    fn xor_truth_table() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let y = aig.xor(a, b);
        aig.add_output("y", y);
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            let values = aig.simulate(&[va, vb], &[]);
            assert_eq!(Aig::lit_value(&values, y), va ^ vb);
        }
    }

    #[test]
    fn mux_selects() {
        let mut aig = Aig::new("t");
        let s = aig.add_input("s");
        let t = aig.add_input("t");
        let e = aig.add_input("e");
        let y = aig.mux(s, t, e);
        for (vs, vt, ve) in [
            (false, true, false),
            (true, true, false),
            (true, false, true),
        ] {
            let values = aig.simulate(&[vs, vt, ve], &[]);
            assert_eq!(Aig::lit_value(&values, y), if vs { vt } else { ve });
        }
    }

    #[test]
    fn and_many_is_balanced() {
        let mut aig = Aig::new("t");
        let lits: Vec<Lit> = (0..8).map(|i| aig.add_input(format!("i{i}"))).collect();
        let y = aig.and_many(&lits);
        aig.add_output("y", y);
        assert_eq!(aig.stats().depth, 3, "8-way AND should be 3 levels");
        let values = aig.simulate(&[true; 8], &[]);
        assert!(Aig::lit_value(&values, y));
        let mut one_false = [true; 8];
        one_false[5] = false;
        let values = aig.simulate(&one_false, &[]);
        assert!(!Aig::lit_value(&values, y));
    }

    #[test]
    fn latch_round_trip() {
        let mut aig = Aig::new("toggle");
        let q = aig.add_latch("q");
        aig.set_latch_next(q.node(), !q);
        aig.add_output("q", q);
        let values = aig.simulate(&[], &[false]);
        let next = Aig::lit_value(&values, aig.latches()[0].d);
        assert!(next, "toggle from 0 goes to 1");
    }

    #[test]
    fn simulate64_matches_scalar_simulation() {
        // A small sequential cone: y = (a ^ b) | q, q' = a & q.
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let q = aig.add_latch("q");
        let x = aig.xor(a, b);
        let y = !aig.and(!x, !q);
        let next = aig.and(a, q);
        aig.set_latch_next(q.node(), next);
        aig.add_output("y", y);

        // Lane i carries input pattern i (3 bits: a, b, q).
        let lane_bit = |pin: u64| {
            let mut w = 0u64;
            for lane in 0..64u64 {
                if (lane >> pin) & 1 == 1 {
                    w |= 1 << lane;
                }
            }
            w
        };
        let wide = aig.simulate64(&[lane_bit(0), lane_bit(1)], &[lane_bit(2)]);
        for lane in 0..64u64 {
            let narrow = aig.simulate(
                &[lane & 1 == 1, (lane >> 1) & 1 == 1],
                &[(lane >> 2) & 1 == 1],
            );
            for (node, &value) in narrow.iter().enumerate() {
                assert_eq!(
                    (wide[node] >> lane) & 1 == 1,
                    value,
                    "lane {lane} node {node}"
                );
            }
            assert_eq!(
                (Aig::lit_value64(&wide, y) >> lane) & 1 == 1,
                Aig::lit_value(&narrow, y),
                "lane {lane} output"
            );
        }
    }

    #[test]
    fn lit_not_involution() {
        let l = Lit::new(NodeId(5), false);
        assert_eq!(!!l, l);
        assert_ne!(!l, l);
        assert_eq!((!l).node(), l.node());
    }

    #[test]
    fn or_many_empty_is_false() {
        let mut aig = Aig::new("t");
        assert_eq!(aig.or_many(&[]), Lit::FALSE);
        assert_eq!(aig.and_many(&[]), Lit::TRUE);
    }

    #[test]
    fn fanout_counts_track_uses() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let x = aig.and(a, b);
        let y = aig.and(x, a);
        aig.add_output("y", y);
        let refs = aig.fanout_counts();
        assert_eq!(refs[a.node().index()], 2);
        assert_eq!(refs[x.node().index()], 1);
        assert_eq!(refs[y.node().index()], 1);
    }
}
