//! Design-for-test: scan-chain insertion.
//!
//! Testability is part of a production-ready enablement flow (academic
//! chips still need bring-up). This pass stitches every flip-flop into a
//! single scan chain: each D input is replaced by a 2:1 mux selecting
//! between functional data and the previous element of the chain, driven
//! by new `scan_en` / `scan_in` ports, with the last flip-flop exported as
//! `scan_out`.

use crate::SynthError;
use chipforge_netlist::{CellFunction, CellId, Netlist};
use chipforge_pdk::{CellClass, StdCellLibrary};
use serde::{Deserialize, Serialize};

/// Report of a scan-insertion pass.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScanReport {
    /// Flip-flops stitched into the chain, in chain order.
    pub chain: Vec<CellId>,
    /// Mux cells added.
    pub muxes_added: usize,
}

impl ScanReport {
    /// Chain length.
    #[must_use]
    pub fn chain_length(&self) -> usize {
        self.chain.len()
    }
}

/// Inserts a scan chain over every flip-flop of `netlist`.
///
/// Because netlists are append-only (cells cannot be rewired in place),
/// the pass rebuilds the netlist with the scan muxes inserted; the
/// returned netlist replaces the input. Flip-flops are chained in id
/// order, which placement-aware flows can re-order later.
///
/// Returns `None` if the design has no flip-flops.
///
/// # Errors
///
/// Returns [`SynthError::MissingLibraryCell`] if the library lacks MUX2.
pub fn insert_scan_chain(
    netlist: &Netlist,
    lib: &StdCellLibrary,
) -> Result<Option<(Netlist, ScanReport)>, SynthError> {
    let ffs: Vec<CellId> = netlist
        .cells()
        .filter(|c| c.is_sequential())
        .map(|c| c.id())
        .collect();
    if ffs.is_empty() {
        return Ok(None);
    }
    let mux_cell = lib
        .smallest(CellClass::Mux2)
        .ok_or_else(|| SynthError::MissingLibraryCell("MUX2".into()))?
        .name()
        .to_string();

    let mut out = Netlist::new(netlist.name());
    // Copy primary inputs, then add the scan ports.
    let mut net_map = vec![None; netlist.net_count()];
    for (port, net) in netlist.inputs() {
        net_map[net.index()] = Some(out.add_input(port.clone()));
    }
    let scan_in = out.add_input("scan_in");
    let scan_en = out.add_input("scan_en");
    // Create all remaining nets up front so cells can connect freely.
    for net in netlist.nets() {
        if net_map[net.id().index()].is_none() {
            net_map[net.id().index()] = Some(out.add_net(net.name().to_string()));
        }
    }
    let resolve = |map: &Vec<Option<chipforge_netlist::NetId>>, id: chipforge_netlist::NetId| {
        map[id.index()].expect("all nets pre-created")
    };

    // Scan stitching: FF i captures mux(scan_en ? prev_chain : D).
    let mut prev_chain = scan_in;
    let mut muxes_added = 0usize;
    for cell in netlist.cells() {
        let inputs: Vec<chipforge_netlist::NetId> = cell
            .inputs()
            .iter()
            .map(|&n| resolve(&net_map, n))
            .collect();
        let output = resolve(&net_map, cell.output());
        if cell.is_sequential() {
            let d = inputs[0];
            let scan_d = out.add_net(format!("scan_d_{}", cell.name()));
            out.add_cell(
                format!("scan_mux_{}", cell.name()),
                CellFunction::Mux2,
                &mux_cell,
                &[d, prev_chain, scan_en],
                scan_d,
            )?;
            muxes_added += 1;
            let mut new_inputs = inputs.clone();
            new_inputs[0] = scan_d;
            out.add_cell(
                cell.name(),
                cell.function(),
                cell.lib_cell(),
                &new_inputs,
                output,
            )?;
            prev_chain = output;
        } else {
            out.add_cell(
                cell.name(),
                cell.function(),
                cell.lib_cell(),
                &inputs,
                output,
            )?;
        }
    }
    // Outputs, plus the chain tail.
    for (port, net) in netlist.outputs() {
        out.mark_output(port.clone(), resolve(&net_map, *net))?;
    }
    out.mark_output("scan_out", prev_chain)?;
    let report = ScanReport {
        chain: out
            .cells()
            .filter(|c| c.is_sequential())
            .map(|c| c.id())
            .collect(),
        muxes_added,
    };
    Ok(Some((out, report)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{synthesize, SynthOptions};
    use chipforge_hdl::designs;
    use chipforge_pdk::{LibraryKind, TechnologyNode};
    use std::collections::HashMap;

    fn scan_netlist(design: chipforge_hdl::designs::Design) -> (Netlist, Netlist, ScanReport) {
        let lib = StdCellLibrary::generate(TechnologyNode::N130, LibraryKind::Open);
        let module = design.elaborate().unwrap();
        let base = synthesize(&module, &lib, &SynthOptions::default())
            .unwrap()
            .netlist;
        let (scanned, report) = insert_scan_chain(&base, &lib).unwrap().unwrap();
        scanned.validate().unwrap();
        (base, scanned, report)
    }

    /// Drives the scanned netlist; `extra` maps the scan port values.
    fn eval(
        nl: &Netlist,
        inputs: &HashMap<&str, u64>,
        state: &HashMap<CellId, bool>,
    ) -> (Vec<bool>, HashMap<CellId, bool>) {
        let bit_values: Vec<bool> = nl
            .inputs()
            .iter()
            .map(|(port, _)| {
                let (base, bit) = match port.rfind('[') {
                    Some(i) => (
                        &port[..i],
                        port[i + 1..port.len() - 1].parse::<u32>().unwrap(),
                    ),
                    None => (port.as_str(), 0),
                };
                (inputs.get(base).copied().unwrap_or(0) >> bit) & 1 == 1
            })
            .collect();
        let values = nl.eval_combinational(&bit_values, state).unwrap();
        let next = nl.next_state(&values, state);
        (values, next)
    }

    #[test]
    fn chain_covers_all_flip_flops() {
        let (base, scanned, report) = scan_netlist(designs::counter(8));
        assert_eq!(report.chain_length(), 8);
        assert_eq!(report.muxes_added, 8);
        assert_eq!(
            scanned.stats().sequential_cells,
            base.stats().sequential_cells
        );
        assert!(scanned.find_net("scan_in").is_some());
        assert!(scanned.outputs().iter().any(|(p, _)| p == "scan_out"));
    }

    #[test]
    fn functional_mode_is_unchanged() {
        // With scan_en = 0 the scanned counter must still count.
        let (_, scanned, _) = scan_netlist(designs::counter(8));
        let mut state = HashMap::new();
        let mut inputs = HashMap::new();
        inputs.insert("rst", 0u64);
        inputs.insert("en", 1);
        inputs.insert("scan_en", 0);
        inputs.insert("scan_in", 0);
        for _ in 0..5 {
            let (_, next) = eval(&scanned, &inputs, &state);
            state = next;
        }
        let (values, _) = eval(&scanned, &inputs, &state);
        // Read back count[] outputs.
        let mut count = 0u64;
        for (port, net) in scanned.outputs() {
            if let Some(rest) = port.strip_prefix("count[") {
                let bit: u32 = rest.trim_end_matches(']').parse().unwrap();
                if values[net.index()] {
                    count |= 1 << bit;
                }
            }
        }
        assert_eq!(count, 5, "counter must still count in functional mode");
    }

    #[test]
    fn shift_mode_propagates_a_pattern() {
        let (_, scanned, report) = scan_netlist(designs::counter(8));
        let n = report.chain_length();
        let mut state = HashMap::new();
        // Shift in an alternating pattern.
        let pattern: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let mut inputs = HashMap::new();
        inputs.insert("rst", 0u64);
        inputs.insert("en", 0);
        inputs.insert("scan_en", 1);
        for &bit in &pattern {
            inputs.insert("scan_in", u64::from(bit));
            let (_, next) = eval(&scanned, &inputs, &state);
            state = next;
        }
        // The chain now holds the pattern; shift it out and compare.
        inputs.insert("scan_in", 0);
        let mut seen = Vec::new();
        for _ in 0..n {
            let (values, next) = eval(&scanned, &inputs, &state);
            let (_, out_net) = scanned
                .outputs()
                .iter()
                .find(|(p, _)| p == "scan_out")
                .unwrap();
            seen.push(values[out_net.index()]);
            state = next;
        }
        // The chain is a FIFO: after exactly `n` shifts the first bit sits
        // at `scan_out`, so bits emerge in insertion order.
        assert_eq!(seen, pattern);
    }

    #[test]
    fn combinational_designs_are_left_alone() {
        let lib = StdCellLibrary::generate(TechnologyNode::N130, LibraryKind::Open);
        let module = designs::gray_encoder(8).elaborate().unwrap();
        let base = synthesize(&module, &lib, &SynthOptions::default())
            .unwrap()
            .netlist;
        assert!(insert_scan_chain(&base, &lib).unwrap().is_none());
    }
}
