//! Simulation-based equivalence checking between RTL and mapped netlists.

use chipforge_hdl::{RtlModule, VectorSimulator};
use chipforge_netlist::Netlist;
use std::collections::HashMap;

/// Checks an RTL module against a mapped netlist by co-simulation with
/// pseudo-random stimulus.
///
/// The netlist must use the bit-blasted port naming produced by the mapper
/// (`sig[i]` per bit). Returns `true` if every output bit matches on every
/// cycle. This is the flow's stand-in for formal equivalence checking.
///
/// Both sides run bit-parallel: each of the `cycles` clock edges drives 64
/// independent random vectors at once (one per bit lane of a `u64` word)
/// through [`VectorSimulator`] and [`Netlist::eval_combinational64`], so a
/// run covers `64 * cycles` stimulus patterns at roughly the cost the
/// scalar co-simulation paid for `cycles`.
#[must_use]
pub fn simulate_equivalent(module: &RtlModule, netlist: &Netlist, cycles: u64, seed: u64) -> bool {
    let mut rtl = VectorSimulator::new(module);
    let mut ff_state: HashMap<_, u64> = HashMap::new();
    let mut rng = seed | 1;

    // Pre-resolve netlist input port order -> (rtl signal, bit).
    let input_map: Vec<(String, u32)> = netlist
        .inputs()
        .iter()
        .map(|(port, _)| split_bit_name(port))
        .collect();
    let output_map: Vec<(String, u32)> = netlist
        .outputs()
        .iter()
        .map(|(port, _)| split_bit_name(port))
        .collect();

    for _ in 0..cycles {
        // One random plane word per input bit: 64 lanes of fresh stimulus.
        let mut rtl_planes: HashMap<String, Vec<u64>> = HashMap::new();
        for signal in module.inputs() {
            let planes: Vec<u64> = (0..signal.width())
                .map(|_| {
                    rng = rng
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    rng
                })
                .collect();
            rtl.set(signal.name(), &planes);
            rtl_planes.insert(signal.name().to_string(), planes);
        }
        let input_words: Vec<u64> = input_map
            .iter()
            .map(|(sig, bit)| {
                rtl_planes
                    .get(sig)
                    .and_then(|planes| planes.get(*bit as usize))
                    .copied()
                    .unwrap_or(0)
            })
            .collect();
        let net_values = match netlist.eval_combinational64(&input_words, &ff_state) {
            Ok(v) => v,
            Err(_) => return false,
        };
        for ((sig, bit), (_, net)) in output_map.iter().zip(netlist.outputs()) {
            let expected = rtl.get(sig).get(*bit as usize).copied().unwrap_or(0);
            // All 64 lanes must agree at once.
            if expected != net_values[net.index()] {
                return false;
            }
        }
        ff_state = netlist.next_state64(&net_values, &ff_state);
        rtl.step();
    }
    true
}

fn split_bit_name(name: &str) -> (String, u32) {
    match name.rfind('[') {
        Some(open) => {
            let bit = name[open + 1..name.len() - 1].parse().unwrap_or(0);
            (name[..open].to_string(), bit)
        }
        None => (name.to_string(), 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipforge_hdl::parse;
    use chipforge_netlist::{CellFunction, Netlist};

    #[test]
    fn detects_equivalence_and_difference() {
        let module = parse("module m() { input a; input b; output y; assign y = a & b; }").unwrap();

        // Correct netlist: one AND.
        let mut good = Netlist::new("m");
        let a = good.add_input("a[0]");
        let b = good.add_input("b[0]");
        let y = good.add_net("y");
        good.add_cell("u0", CellFunction::And2, "AND2_X1", &[a, b], y)
            .unwrap();
        good.mark_output("y[0]", y).unwrap();
        assert!(simulate_equivalent(&module, &good, 16, 1));

        // Wrong netlist: OR instead of AND.
        let mut bad = Netlist::new("m");
        let a = bad.add_input("a[0]");
        let b = bad.add_input("b[0]");
        let y = bad.add_net("y");
        bad.add_cell("u0", CellFunction::Or2, "OR2_X1", &[a, b], y)
            .unwrap();
        bad.mark_output("y[0]", y).unwrap();
        assert!(!simulate_equivalent(&module, &bad, 16, 1));
    }

    #[test]
    fn one_lane_disagreements_are_caught() {
        // y = a on the RTL side; netlist inverts, so every lane differs —
        // but also check a subtle case: netlist AND-ing a with itself is
        // still equivalent (lane agreement must hold, not lane identity).
        let module = parse("module m() { input a; output y; assign y = a; }").unwrap();
        let mut same = Netlist::new("m");
        let a = same.add_input("a[0]");
        let y = same.add_net("y");
        same.add_cell("u0", CellFunction::And2, "AND2_X1", &[a, a], y)
            .unwrap();
        same.mark_output("y[0]", y).unwrap();
        assert!(simulate_equivalent(&module, &same, 8, 7));

        let mut inv = Netlist::new("m");
        let a = inv.add_input("a[0]");
        let y = inv.add_net("y");
        inv.add_cell("u0", CellFunction::Inv, "INV_X1", &[a], y)
            .unwrap();
        inv.mark_output("y[0]", y).unwrap();
        assert!(!simulate_equivalent(&module, &inv, 8, 7));
    }
}
