//! Simulation-based equivalence checking between RTL and mapped netlists.

use chipforge_hdl::{RtlModule, Simulator};
use chipforge_netlist::Netlist;
use std::collections::HashMap;

/// Checks an RTL module against a mapped netlist by co-simulation with
/// pseudo-random stimulus.
///
/// The netlist must use the bit-blasted port naming produced by the mapper
/// (`sig[i]` per bit). Returns `true` if every output bit matches on every
/// cycle. This is the flow's stand-in for formal equivalence checking; with
/// `cycles` in the tens it catches the practically relevant mapping bugs.
#[must_use]
pub fn simulate_equivalent(module: &RtlModule, netlist: &Netlist, cycles: u64, seed: u64) -> bool {
    let mut rtl = Simulator::new(module);
    let mut ff_state = HashMap::new();
    let mut rng = seed | 1;

    // Pre-resolve netlist input port order -> (rtl signal, bit).
    let input_map: Vec<(String, u32)> = netlist
        .inputs()
        .iter()
        .map(|(port, _)| split_bit_name(port))
        .collect();
    let output_map: Vec<(String, u32)> = netlist
        .outputs()
        .iter()
        .map(|(port, _)| split_bit_name(port))
        .collect();

    for _ in 0..cycles {
        let mut rtl_values: HashMap<String, u64> = HashMap::new();
        for signal in module.inputs() {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let value = rng >> 16;
            rtl.set(signal.name(), value);
            rtl_values.insert(signal.name().to_string(), value);
        }
        let input_bits: Vec<bool> = input_map
            .iter()
            .map(|(sig, bit)| (rtl_values.get(sig).copied().unwrap_or(0) >> bit) & 1 == 1)
            .collect();
        let net_values = match netlist.eval_combinational(&input_bits, &ff_state) {
            Ok(v) => v,
            Err(_) => return false,
        };
        for ((sig, bit), (_, net)) in output_map.iter().zip(netlist.outputs()) {
            let expected = (rtl.get(sig) >> bit) & 1 == 1;
            let got = net_values[net.index()];
            if expected != got {
                return false;
            }
        }
        ff_state = netlist.next_state(&net_values, &ff_state);
        rtl.step();
    }
    true
}

fn split_bit_name(name: &str) -> (String, u32) {
    match name.rfind('[') {
        Some(open) => {
            let bit = name[open + 1..name.len() - 1].parse().unwrap_or(0);
            (name[..open].to_string(), bit)
        }
        None => (name.to_string(), 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipforge_hdl::parse;
    use chipforge_netlist::{CellFunction, Netlist};

    #[test]
    fn detects_equivalence_and_difference() {
        let module = parse("module m() { input a; input b; output y; assign y = a & b; }").unwrap();

        // Correct netlist: one AND.
        let mut good = Netlist::new("m");
        let a = good.add_input("a[0]");
        let b = good.add_input("b[0]");
        let y = good.add_net("y");
        good.add_cell("u0", CellFunction::And2, "AND2_X1", &[a, b], y)
            .unwrap();
        good.mark_output("y[0]", y).unwrap();
        assert!(simulate_equivalent(&module, &good, 16, 1));

        // Wrong netlist: OR instead of AND.
        let mut bad = Netlist::new("m");
        let a = bad.add_input("a[0]");
        let b = bad.add_input("b[0]");
        let y = bad.add_net("y");
        bad.add_cell("u0", CellFunction::Or2, "OR2_X1", &[a, b], y)
            .unwrap();
        bad.mark_output("y[0]", y).unwrap();
        assert!(!simulate_equivalent(&module, &bad, 16, 1));
    }
}
