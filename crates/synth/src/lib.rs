//! # chipforge-synth
//!
//! Logic synthesis for the `chipforge` flow: lowers elaborated RTL
//! ([`chipforge_hdl::RtlModule`]) through an and-inverter graph ([`Aig`]) to
//! a mapped gate-level netlist ([`chipforge_netlist::Netlist`]) over a
//! standard-cell library ([`chipforge_pdk::StdCellLibrary`]).
//!
//! Pipeline:
//!
//! 1. **Lowering** ([`lower::lower_to_aig`]) — bit-blasts word-level
//!    expressions into AIG nodes (ripple-carry adders, array multipliers,
//!    barrel shifters, comparator/borrow logic);
//! 2. **Optimization** ([`opt`]) — structural hashing and constant folding
//!    happen on construction; rewriting and AND-tree balancing reduce node
//!    count and depth; sweep removes dead logic;
//! 3. **Technology mapping** ([`map`]) — priority-cut enumeration (k = 3),
//!    truth-table matching against the library's gate functions and
//!    area-flow-based covering.
//!
//! ## Example
//!
//! ```
//! use chipforge_hdl::designs;
//! use chipforge_pdk::{LibraryKind, StdCellLibrary, TechnologyNode};
//! use chipforge_synth::{synthesize, SynthOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let design = designs::counter(8);
//! let module = design.elaborate()?;
//! let lib = StdCellLibrary::generate(TechnologyNode::N130, LibraryKind::Open);
//! let result = synthesize(&module, &lib, &SynthOptions::default())?;
//! assert!(result.netlist.cell_count() > 8, "an 8-bit counter needs gates");
//! assert_eq!(result.netlist.stats().sequential_cells, 8);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aig;
pub mod dft;
mod equiv;
pub mod lower;
pub mod map;
pub mod opt;

pub use aig::{Aig, AigStats, Lit, NodeId};
pub use dft::{insert_scan_chain, ScanReport};
pub use equiv::simulate_equivalent;

use chipforge_hdl::RtlModule;
use chipforge_netlist::{Netlist, NetlistError};
use chipforge_pdk::StdCellLibrary;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Synthesis effort level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SynthEffort {
    /// Lower directly and map (no restructuring).
    Fast,
    /// Balance AND trees before mapping (default).
    #[default]
    Standard,
    /// Balance plus extra rewriting iterations.
    High,
}

/// Options controlling [`synthesize`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SynthOptions {
    /// Effort level.
    pub effort: SynthEffort,
}

/// Result of synthesis: the mapped netlist plus intermediate statistics.
#[derive(Debug, Clone)]
pub struct SynthResult {
    /// The mapped gate-level netlist.
    pub netlist: Netlist,
    /// AIG statistics after optimization (pre-mapping).
    pub aig_stats: AigStats,
}

/// Errors produced by synthesis.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SynthError {
    /// The library is missing a gate class required by mapping.
    MissingLibraryCell(String),
    /// Netlist construction failed (internal invariant violation).
    Netlist(NetlistError),
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::MissingLibraryCell(name) => {
                write!(f, "library has no cell for `{name}`")
            }
            SynthError::Netlist(e) => write!(f, "netlist construction failed: {e}"),
        }
    }
}

impl Error for SynthError {}

impl From<NetlistError> for SynthError {
    fn from(e: NetlistError) -> Self {
        SynthError::Netlist(e)
    }
}

/// Synthesizes an RTL module to a mapped netlist.
///
/// # Errors
///
/// Returns [`SynthError::MissingLibraryCell`] if the library lacks basic
/// gates (never for generated libraries) and propagates netlist
/// construction failures.
pub fn synthesize(
    module: &RtlModule,
    library: &StdCellLibrary,
    options: &SynthOptions,
) -> Result<SynthResult, SynthError> {
    let mut aig = lower::lower_to_aig(module);
    match options.effort {
        SynthEffort::Fast => {}
        SynthEffort::Standard => {
            opt::balance(&mut aig);
            opt::sweep(&mut aig);
        }
        SynthEffort::High => {
            opt::balance(&mut aig);
            opt::simplify(&mut aig);
            opt::balance(&mut aig);
            opt::sweep(&mut aig);
        }
    }
    let aig_stats = aig.stats();
    let netlist = map::map_to_netlist(&aig, library)?;
    Ok(SynthResult { netlist, aig_stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipforge_hdl::designs;
    use chipforge_pdk::{LibraryKind, StdCellLibrary, TechnologyNode};

    #[test]
    fn suite_synthesizes_and_matches_simulation() {
        let lib = StdCellLibrary::generate(TechnologyNode::N130, LibraryKind::Open);
        for design in designs::suite() {
            let module = design.elaborate().unwrap();
            let result = synthesize(&module, &lib, &SynthOptions::default())
                .unwrap_or_else(|e| panic!("{}: {e}", design.name()));
            result.netlist.validate().unwrap();
            assert!(
                simulate_equivalent(&module, &result.netlist, 64, 0xC0FFEE),
                "{} netlist diverges from RTL simulation",
                design.name()
            );
        }
    }

    #[test]
    fn effort_levels_all_remain_equivalent() {
        let lib = StdCellLibrary::generate(TechnologyNode::N130, LibraryKind::Open);
        let module = designs::alu(8).elaborate().unwrap();
        for effort in [SynthEffort::Fast, SynthEffort::Standard, SynthEffort::High] {
            let result = synthesize(&module, &lib, &SynthOptions { effort }).unwrap();
            assert!(
                simulate_equivalent(&module, &result.netlist, 64, 42),
                "{effort:?}"
            );
        }
    }

    #[test]
    fn balancing_reduces_or_keeps_depth() {
        let lib = StdCellLibrary::generate(TechnologyNode::N130, LibraryKind::Open);
        let module = designs::popcount(8).elaborate().unwrap();
        let fast = synthesize(
            &module,
            &lib,
            &SynthOptions {
                effort: SynthEffort::Fast,
            },
        )
        .unwrap();
        let std = synthesize(&module, &lib, &SynthOptions::default()).unwrap();
        assert!(std.aig_stats.depth <= fast.aig_stats.depth);
    }
}
