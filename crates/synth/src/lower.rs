//! RTL-to-AIG lowering (bit blasting).

use crate::aig::{Aig, Lit};
use chipforge_hdl::{BinaryOp, Expr, RtlModule, SignalId, SignalKind, UnaryOp};
use std::collections::HashMap;

/// Lowers an elaborated RTL module to an and-inverter graph.
///
/// Every signal becomes a vector of literals (LSB first); word-level
/// operators expand into ripple-carry adders, array multipliers, barrel
/// shifters, comparators and mux trees.
#[must_use]
pub fn lower_to_aig(module: &RtlModule) -> Aig {
    let mut ctx = Lower {
        aig: Aig::new(module.name()),
        module,
        bits: HashMap::new(),
    };
    // Primary inputs and latch outputs first so all reads resolve.
    for signal in module.signals() {
        match signal.kind() {
            SignalKind::Input => {
                let bits: Vec<Lit> = (0..signal.width())
                    .map(|i| ctx.aig.add_input(format!("{}[{i}]", signal.name())))
                    .collect();
                ctx.bits.insert(signal.id(), bits);
            }
            SignalKind::Reg => {
                let bits: Vec<Lit> = (0..signal.width())
                    .map(|i| ctx.aig.add_latch(format!("{}[{i}]", signal.name())))
                    .collect();
                ctx.bits.insert(signal.id(), bits);
            }
            SignalKind::Wire => {}
        }
    }
    // Continuous assignments are already in topological order.
    for (target, expr) in module.assigns() {
        let width = module.signal(*target).width();
        let value = ctx.lower_expr(expr);
        let value = resize(value, width);
        ctx.bits.insert(*target, value);
    }
    // Register next-state functions.
    for (reg, next) in module.registers() {
        let width = module.signal(*reg).width();
        let value = resize(ctx.lower_expr(next), width);
        let q_bits = ctx.bits[reg].clone();
        for (q, d) in q_bits.iter().zip(value) {
            ctx.aig.set_latch_next(q.node(), d);
        }
    }
    // Outputs.
    for signal in module.outputs() {
        let bits = ctx.bits[&signal.id()].clone();
        for (i, lit) in bits.iter().enumerate() {
            ctx.aig.add_output(format!("{}[{i}]", signal.name()), *lit);
        }
    }
    ctx.aig
}

struct Lower<'m> {
    aig: Aig,
    module: &'m RtlModule,
    bits: HashMap<SignalId, Vec<Lit>>,
}

/// Truncates or zero-extends a bit vector.
fn resize(mut bits: Vec<Lit>, width: u8) -> Vec<Lit> {
    bits.resize(usize::from(width), Lit::FALSE);
    bits
}

impl Lower<'_> {
    fn lower_expr(&mut self, expr: &Expr) -> Vec<Lit> {
        match expr {
            Expr::Const { value, width } => (0..*width)
                .map(|i| {
                    if (value >> i) & 1 == 1 {
                        Lit::TRUE
                    } else {
                        Lit::FALSE
                    }
                })
                .collect(),
            Expr::Signal(id) => self.bits[id].clone(),
            Expr::Slice { signal, msb, lsb } => {
                let bits = &self.bits[signal];
                bits[usize::from(*lsb)..=usize::from(*msb)].to_vec()
            }
            Expr::Unary { op, width, arg } => {
                let a = self.lower_expr(arg);
                let result = match op {
                    UnaryOp::Not => a.iter().map(|&l| !l).collect(),
                    UnaryOp::Negate => self.negate(&a),
                    UnaryOp::LogicalNot => vec![!self.aig.or_many(&a)],
                    UnaryOp::ReduceAnd => vec![self.aig.and_many(&a)],
                    UnaryOp::ReduceOr => vec![self.aig.or_many(&a)],
                    UnaryOp::ReduceXor => vec![self.xor_many(&a)],
                };
                resize(result, *width)
            }
            Expr::Binary {
                op,
                width,
                lhs,
                rhs,
            } => {
                let lw = lhs.width(self.module);
                let rw = rhs.width(self.module);
                let a = self.lower_expr(lhs);
                let b = self.lower_expr(rhs);
                let result = match op {
                    BinaryOp::Add => {
                        let w = lw.max(rw);
                        let (sum, _) = self.adder(&resize(a, w), &resize(b, w), Lit::FALSE, false);
                        sum
                    }
                    BinaryOp::Sub => {
                        let w = lw.max(rw);
                        let (diff, _) = self.subtract(&resize(a, w), &resize(b, w));
                        diff
                    }
                    BinaryOp::Mul => self.multiply(&a, &b, *width),
                    BinaryOp::And => self.bitwise(&a, &b, lw.max(rw), Aig::and),
                    BinaryOp::Or => self.bitwise(&a, &b, lw.max(rw), Aig::or),
                    BinaryOp::Xor => self.bitwise(&a, &b, lw.max(rw), Aig::xor),
                    BinaryOp::LogicalAnd => {
                        let la = self.aig.or_many(&a);
                        let lb = self.aig.or_many(&b);
                        vec![self.aig.and(la, lb)]
                    }
                    BinaryOp::LogicalOr => {
                        let la = self.aig.or_many(&a);
                        let lb = self.aig.or_many(&b);
                        vec![self.aig.or(la, lb)]
                    }
                    BinaryOp::Eq => vec![self.equal(&a, &b, lw.max(rw))],
                    BinaryOp::Ne => vec![!self.equal(&a, &b, lw.max(rw))],
                    BinaryOp::Lt => vec![self.less_than(&a, &b, lw.max(rw))],
                    BinaryOp::Ge => vec![!self.less_than(&a, &b, lw.max(rw))],
                    BinaryOp::Gt => vec![self.less_than(&b, &a, lw.max(rw))],
                    BinaryOp::Le => vec![!self.less_than(&b, &a, lw.max(rw))],
                    BinaryOp::Shl => self.shift(&a, rhs, &b, true),
                    BinaryOp::Shr => self.shift(&a, rhs, &b, false),
                };
                resize(result, *width)
            }
            Expr::Mux {
                width,
                cond,
                then_expr,
                else_expr,
            } => {
                let c_bits = self.lower_expr(cond);
                let c = self.aig.or_many(&c_bits);
                let t = resize(self.lower_expr(then_expr), *width);
                let e = resize(self.lower_expr(else_expr), *width);
                t.iter()
                    .zip(e.iter())
                    .map(|(&tb, &eb)| self.aig.mux(c, tb, eb))
                    .collect()
            }
            Expr::Concat { width, parts } => {
                // Parts are MSB-first; the result vector is LSB-first.
                let mut bits = Vec::new();
                for part in parts.iter().rev() {
                    bits.extend(self.lower_expr(part));
                }
                resize(bits, *width)
            }
        }
    }

    fn bitwise(
        &mut self,
        a: &[Lit],
        b: &[Lit],
        width: u8,
        op: fn(&mut Aig, Lit, Lit) -> Lit,
    ) -> Vec<Lit> {
        let a = resize(a.to_vec(), width);
        let b = resize(b.to_vec(), width);
        a.iter()
            .zip(b.iter())
            .map(|(&x, &y)| op(&mut self.aig, x, y))
            .collect()
    }

    /// Ripple-carry adder; returns (sum, carry_out).
    fn adder(&mut self, a: &[Lit], b: &[Lit], cin: Lit, _signed: bool) -> (Vec<Lit>, Lit) {
        debug_assert_eq!(a.len(), b.len());
        let mut sum = Vec::with_capacity(a.len());
        let mut carry = cin;
        for (&x, &y) in a.iter().zip(b.iter()) {
            let xy = self.aig.xor(x, y);
            let s = self.aig.xor(xy, carry);
            // carry' = (x & y) | (carry & (x ^ y))
            let and_xy = self.aig.and(x, y);
            let and_cx = self.aig.and(carry, xy);
            carry = self.aig.or(and_xy, and_cx);
            sum.push(s);
        }
        (sum, carry)
    }

    /// `a - b`; returns (difference, no_borrow) where `no_borrow` is the
    /// adder carry-out of `a + !b + 1` (set iff `a >= b`).
    fn subtract(&mut self, a: &[Lit], b: &[Lit]) -> (Vec<Lit>, Lit) {
        let nb: Vec<Lit> = b.iter().map(|&l| !l).collect();
        self.adder(a, &nb, Lit::TRUE, false)
    }

    fn negate(&mut self, a: &[Lit]) -> Vec<Lit> {
        let zero = vec![Lit::FALSE; a.len()];
        let (diff, _) = self.subtract(&zero, a);
        diff
    }

    fn equal(&mut self, a: &[Lit], b: &[Lit], width: u8) -> Lit {
        let a = resize(a.to_vec(), width);
        let b = resize(b.to_vec(), width);
        let diffs: Vec<Lit> = a
            .iter()
            .zip(b.iter())
            .map(|(&x, &y)| self.aig.xor(x, y))
            .collect();
        !self.aig.or_many(&diffs)
    }

    /// Unsigned `a < b` via the borrow of `a - b`.
    fn less_than(&mut self, a: &[Lit], b: &[Lit], width: u8) -> Lit {
        let a = resize(a.to_vec(), width);
        let b = resize(b.to_vec(), width);
        let (_, no_borrow) = self.subtract(&a, &b);
        !no_borrow
    }

    /// Array multiplier truncated to `width` bits.
    fn multiply(&mut self, a: &[Lit], b: &[Lit], width: u8) -> Vec<Lit> {
        let w = usize::from(width);
        let mut acc = vec![Lit::FALSE; w];
        for (j, &bj) in b.iter().enumerate() {
            if j >= w {
                break;
            }
            // Partial product row: (a << j) & bj, truncated to w bits.
            let mut row = vec![Lit::FALSE; w];
            for (i, &ai) in a.iter().enumerate() {
                if i + j < w {
                    row[i + j] = self.aig.and(ai, bj);
                }
            }
            let (sum, _) = self.adder(&acc, &row, Lit::FALSE, false);
            acc = sum;
        }
        acc
    }

    /// Shift left/right. Constant shift amounts become pure wiring; variable
    /// amounts build a barrel shifter with an overflow guard.
    fn shift(&mut self, a: &[Lit], rhs_expr: &Expr, b: &[Lit], left: bool) -> Vec<Lit> {
        let w = a.len();
        if let Expr::Const { value, .. } = rhs_expr {
            return shift_const(a, *value as usize, left);
        }
        // Barrel shifter: one mux layer per rhs bit that matters.
        let needed = usize::BITS - (w.max(1) - 1).leading_zeros(); // ceil(log2(w))
        let mut current = a.to_vec();
        for (j, &bj) in b.iter().enumerate().take(needed as usize) {
            let amount = 1usize << j;
            let shifted = shift_const(&current, amount, left);
            current = current
                .iter()
                .zip(shifted.iter())
                .map(|(&keep, &sh)| self.aig.mux(bj, sh, keep))
                .collect();
        }
        // Guard: any rhs bit at or above `needed` zeroes the result if that
        // bit alone already shifts everything out.
        let high_bits: Vec<Lit> = b
            .iter()
            .enumerate()
            .filter(|(j, _)| {
                let amount = 1u128 << j;
                *j >= needed as usize && amount >= w as u128
            })
            .map(|(_, &l)| l)
            .collect();
        if !high_bits.is_empty() {
            let overflow = self.aig.or_many(&high_bits);
            current = current
                .iter()
                .map(|&bit| self.aig.and(bit, !overflow))
                .collect();
        }
        current
    }

    fn xor_many(&mut self, lits: &[Lit]) -> Lit {
        let mut acc = Lit::FALSE;
        for &l in lits {
            acc = self.aig.xor(acc, l);
        }
        acc
    }
}

fn shift_const(a: &[Lit], amount: usize, left: bool) -> Vec<Lit> {
    let w = a.len();
    if amount >= w {
        return vec![Lit::FALSE; w];
    }
    if left {
        let mut out = vec![Lit::FALSE; amount];
        out.extend_from_slice(&a[..w - amount]);
        out
    } else {
        let mut out = a[amount..].to_vec();
        out.extend(std::iter::repeat_n(Lit::FALSE, amount));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipforge_hdl::{designs, parse, Simulator};

    /// Drives the RTL simulator and the AIG side by side with the same
    /// pseudo-random stimulus and compares all outputs every cycle.
    fn check_equivalence(src: &str, cycles: u64, seed: u64) {
        let module = parse(src).unwrap();
        let aig = lower_to_aig(&module);
        let mut rtl = Simulator::new(&module);
        let mut latch_state = vec![false; aig.latches().len()];
        let mut rng = seed | 1;
        for _ in 0..cycles {
            // Random inputs.
            let mut input_values = Vec::new();
            for signal in module.inputs() {
                rng = rng
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let value = rng >> 16;
                rtl.set(signal.name(), value);
                for i in 0..signal.width() {
                    input_values.push((value >> i) & 1 == 1);
                }
            }
            let values = aig.simulate(&input_values, &latch_state);
            // Compare every output bit.
            for (name, lit) in aig.outputs() {
                let (sig, bit) = split_bit_name(name);
                let expected = (rtl.get(sig) >> bit) & 1 == 1;
                assert_eq!(
                    crate::Aig::lit_value(&values, *lit),
                    expected,
                    "output {name} mismatch"
                );
            }
            // Advance both.
            latch_state = aig
                .latches()
                .iter()
                .map(|l| crate::Aig::lit_value(&values, l.d))
                .collect();
            rtl.step();
        }
    }

    fn split_bit_name(name: &str) -> (&str, u32) {
        let open = name.rfind('[').unwrap();
        let bit: u32 = name[open + 1..name.len() - 1].parse().unwrap();
        (&name[..open], bit)
    }

    #[test]
    fn adder_equivalence() {
        check_equivalence(
            "module m() { input [7:0] a; input [7:0] b; output [7:0] y; assign y = a + b; }",
            64,
            1,
        );
    }

    #[test]
    fn subtract_and_compares_equivalence() {
        check_equivalence(
            "module m() { input [6:0] a; input [6:0] b; output [6:0] d; output lt; output le; output gt; output ge; output eq; output ne; \
             assign d = a - b; assign lt = a < b; assign le = a <= b; assign gt = a > b; assign ge = a >= b; assign eq = a == b; assign ne = a != b; }",
            128,
            2,
        );
    }

    #[test]
    fn multiplier_equivalence() {
        check_equivalence(
            "module m() { input [5:0] a; input [5:0] b; output [11:0] p; assign p = a * b; }",
            128,
            3,
        );
    }

    #[test]
    fn variable_shift_equivalence() {
        check_equivalence(
            "module m() { input [7:0] a; input [3:0] s; output [7:0] l; output [7:0] r; assign l = a << s; assign r = a >> s; }",
            256,
            4,
        );
    }

    #[test]
    fn constant_shift_equivalence() {
        check_equivalence(
            "module m() { input [7:0] a; output [7:0] l; output [7:0] r; assign l = a << 3; assign r = a >> 2; }",
            32,
            5,
        );
    }

    #[test]
    fn negate_and_reductions_equivalence() {
        check_equivalence(
            "module m() { input [4:0] a; output [4:0] n; output ra; output ro; output rx; output ln; \
             assign n = -a; assign ra = &a; assign ro = |a; assign rx = ^a; assign ln = !a; }",
            64,
            6,
        );
    }

    #[test]
    fn sequential_counter_equivalence() {
        check_equivalence(
            "module c() { input rst; input en; output [7:0] q; reg [7:0] q; always { if (rst) { q <= 0; } else if (en) { q <= q + 1; } } }",
            128,
            7,
        );
    }

    #[test]
    fn suite_designs_lower_and_match() {
        for design in designs::suite() {
            check_equivalence(design.source(), 48, 0xBEEF);
        }
    }

    #[test]
    fn logical_ops_equivalence() {
        check_equivalence(
            "module m() { input [3:0] a; input [3:0] b; output x; output o; assign x = a && b; assign o = a || b; }",
            64,
            9,
        );
    }

    #[test]
    fn concat_and_slice_equivalence() {
        check_equivalence(
            "module m() { input [7:0] a; output [7:0] y; output [3:0] hi; assign y = {a[3:0], a[7:4]}; assign hi = a[7:4]; }",
            64,
            10,
        );
    }
}
