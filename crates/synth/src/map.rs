//! Technology mapping: covering the AIG with library cells.
//!
//! A classic priority-cut mapper: for every AND node, cuts of up to three
//! leaves are enumerated; each cut's truth table is matched against the
//! library's gate functions; dynamic programming with area flow picks the
//! cheapest cover. Complemented signals are realized with inverters that
//! are cached per node, and a guaranteed NAND/AND+INV fallback keeps the
//! mapper total for any AIG.

use crate::aig::{Aig, Lit, NodeId};
use crate::SynthError;
use chipforge_netlist::{CellFunction, NetId, Netlist};
use chipforge_pdk::{CellClass, StdCellLibrary};
use std::collections::HashMap;

const MAX_CUT_INPUTS: usize = 3;
const MAX_CUTS_PER_NODE: usize = 8;

/// Truth-table projections of the three cut-leaf variables.
const PROJ: [u8; 3] = [0xAA, 0xCC, 0xF0];

/// A single library match: which function implements a truth table and how
/// its pins map onto cut-leaf positions.
#[derive(Debug, Clone)]
struct Match {
    function: CellFunction,
    /// `pins[i]` = index of the cut leaf wired to the cell's pin `i`.
    pins: Vec<usize>,
    area: f64,
}

/// Table from (truth table over 3 vars, support size) to the cheapest match.
struct MatchTable {
    by_tt: HashMap<u8, Match>,
    inv_area: f64,
    and2_area: f64,
}

fn class_for(function: CellFunction) -> CellClass {
    match function {
        CellFunction::Const0 => CellClass::TieLo,
        CellFunction::Const1 => CellClass::TieHi,
        CellFunction::Buf => CellClass::Buf,
        CellFunction::Inv => CellClass::Inv,
        CellFunction::And2 => CellClass::And2,
        CellFunction::Nand2 => CellClass::Nand2,
        CellFunction::Or2 => CellClass::Or2,
        CellFunction::Nor2 => CellClass::Nor2,
        CellFunction::Xor2 => CellClass::Xor2,
        CellFunction::Xnor2 => CellClass::Xnor2,
        CellFunction::And3 => CellClass::And3,
        CellFunction::Nand3 => CellClass::Nand3,
        CellFunction::Or3 => CellClass::Or3,
        CellFunction::Nor3 => CellClass::Nor3,
        CellFunction::Aoi21 => CellClass::Aoi21,
        CellFunction::Oai21 => CellClass::Oai21,
        CellFunction::Mux2 => CellClass::Mux2,
        CellFunction::Maj3 => CellClass::Maj3,
        CellFunction::Xor3 => CellClass::Xor3,
        CellFunction::Dff => CellClass::Dff,
        CellFunction::DffEn => CellClass::DffEn,
    }
}

/// The combinational functions the matcher tries, smallest-area first
/// preference handled by the table construction.
const MAPPABLE: [CellFunction; 17] = [
    CellFunction::Buf,
    CellFunction::Inv,
    CellFunction::And2,
    CellFunction::Nand2,
    CellFunction::Or2,
    CellFunction::Nor2,
    CellFunction::Xor2,
    CellFunction::Xnor2,
    CellFunction::And3,
    CellFunction::Nand3,
    CellFunction::Or3,
    CellFunction::Nor3,
    CellFunction::Aoi21,
    CellFunction::Oai21,
    CellFunction::Mux2,
    CellFunction::Maj3,
    CellFunction::Xor3,
];

impl MatchTable {
    fn build(lib: &StdCellLibrary) -> Result<Self, SynthError> {
        let area_of = |class: CellClass| -> Result<f64, SynthError> {
            lib.smallest(class)
                .map(|c| c.area_um2())
                .ok_or_else(|| SynthError::MissingLibraryCell(class.prefix().to_string()))
        };
        let inv_area = area_of(CellClass::Inv)?;
        let and2_area = area_of(CellClass::And2)?;
        let mut by_tt: HashMap<u8, Match> = HashMap::new();
        for function in MAPPABLE {
            let class = class_for(function);
            let Some(cell) = lib.smallest(class) else {
                continue; // library variant without this gate
            };
            let n = function.input_count();
            // Enumerate injective pin -> leaf-position assignments.
            for assignment in injective_assignments(n, MAX_CUT_INPUTS) {
                let mut tt = 0u8;
                for k in 0..8u8 {
                    let inputs: Vec<bool> =
                        (0..n).map(|pin| (k >> assignment[pin]) & 1 == 1).collect();
                    if function.eval(&inputs) {
                        tt |= 1 << k;
                    }
                }
                let candidate = Match {
                    function,
                    pins: assignment.clone(),
                    area: cell.area_um2(),
                };
                match by_tt.get(&tt) {
                    Some(existing) if existing.area <= candidate.area => {}
                    _ => {
                        by_tt.insert(tt, candidate);
                    }
                }
            }
        }
        Ok(Self {
            by_tt,
            inv_area,
            and2_area,
        })
    }
}

/// All injective maps from `pins` pin indices into `slots` leaf positions.
fn injective_assignments(pins: usize, slots: usize) -> Vec<Vec<usize>> {
    let mut result = Vec::new();
    let mut current = Vec::new();
    fn recurse(pins: usize, slots: usize, current: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if current.len() == pins {
            out.push(current.clone());
            return;
        }
        for slot in 0..slots {
            if !current.contains(&slot) {
                current.push(slot);
                recurse(pins, slots, current, out);
                current.pop();
            }
        }
    }
    recurse(pins, slots, &mut current, &mut result);
    result
}

/// How one polarity of a node's value gets realized.
#[derive(Debug, Clone)]
enum Choice {
    /// Matched library cell over a cut (computes this polarity directly).
    Cell {
        cut: Vec<NodeId>,
        function: CellFunction,
        pins: Vec<usize>,
    },
    /// Structural fallback over the node's two fanin literals: AND2 for the
    /// positive phase, NAND2 for the negative phase.
    Fallback(CellFunction),
    /// Realize the opposite polarity and append an inverter.
    InvertOther,
}

/// Maps an optimized AIG onto a standard-cell library.
///
/// # Errors
///
/// Returns [`SynthError::MissingLibraryCell`] if the library lacks the
/// inverter/AND fallback gates, and propagates netlist construction errors.
pub fn map_to_netlist(aig: &Aig, lib: &StdCellLibrary) -> Result<Netlist, SynthError> {
    let table = MatchTable::build(lib)?;
    let refs = aig.fanout_counts();
    let n = aig.node_count();

    // --- cut enumeration + truth tables + dual-polarity DP (area flow) ---
    let mut cuts: Vec<Vec<Vec<NodeId>>> = vec![Vec::new(); n];
    // cost/choice per polarity: [0] = positive phase, [1] = negative phase.
    let mut cost: Vec<[f64; 2]> = vec![[0.0, 0.0]; n];
    let mut choice: Vec<[Option<Choice>; 2]> = vec![[None, None]; n];
    let nand2_area = lib
        .smallest(CellClass::Nand2)
        .map(|c| c.area_um2())
        .ok_or_else(|| SynthError::MissingLibraryCell("NAND2".into()))?;

    for index in 0..n {
        let node = NodeId(index as u32);
        let Some((fa, fb)) = aig.and_fanins(node) else {
            cuts[index] = vec![vec![node]];
            // Inputs/constants: positive phase is free, negative costs INV.
            cost[index] = [0.0, table.inv_area];
            choice[index] = [None, Some(Choice::InvertOther)];
            continue;
        };
        // Merge fanin cuts.
        let mut node_cuts: Vec<Vec<NodeId>> = vec![vec![node]];
        for ca in &cuts[fa.node().index()] {
            for cb in &cuts[fb.node().index()] {
                if let Some(cut) = merge_cuts(ca, cb) {
                    if !node_cuts.contains(&cut) {
                        node_cuts.push(cut);
                    }
                }
            }
        }
        node_cuts.sort_by_key(|c| c.len());
        node_cuts.truncate(MAX_CUTS_PER_NODE);

        let mut best_cost = [f64::INFINITY, f64::INFINITY];
        let mut best: [Option<Choice>; 2] = [None, None];
        for cut in &node_cuts {
            if cut.len() == 1 && cut[0] == node {
                continue; // trivial cut: not a cover
            }
            let Some(tt) = cone_truth_table(aig, node, cut) else {
                continue;
            };
            // Leaves are used in their positive phase.
            let leaf_cost: f64 = cut
                .iter()
                .map(|l| cost[l.index()][0] / f64::from(refs[l.index()].max(1)))
                .sum();
            for (phase, tt_key) in [(0usize, tt), (1, !tt)] {
                if let Some(m) = table.by_tt.get(&tt_key) {
                    let total = m.area + leaf_cost;
                    if total < best_cost[phase] {
                        best_cost[phase] = total;
                        best[phase] = Some(Choice::Cell {
                            cut: cut.clone(),
                            function: m.function,
                            pins: m.pins.clone(),
                        });
                    }
                }
            }
        }
        // Guaranteed fallbacks over fanin literals: AND2 (pos), NAND2 (neg).
        let fanin_cost: f64 = [fa, fb]
            .iter()
            .map(|fanin| {
                let i = fanin.node().index();
                let phase = usize::from(fanin.is_complemented());
                cost[i][phase] / f64::from(refs[i].max(1))
            })
            .sum();
        for (phase, area, function) in [
            (0usize, table.and2_area, CellFunction::And2),
            (1, nand2_area, CellFunction::Nand2),
        ] {
            let total = area + fanin_cost;
            if total < best_cost[phase] {
                best_cost[phase] = total;
                best[phase] = Some(Choice::Fallback(function));
            }
        }
        // Cross-polarity improvement (at most one side can win).
        if best_cost[1] + table.inv_area < best_cost[0] {
            best_cost[0] = best_cost[1] + table.inv_area;
            best[0] = Some(Choice::InvertOther);
        } else if best_cost[0] + table.inv_area < best_cost[1] {
            best_cost[1] = best_cost[0] + table.inv_area;
            best[1] = Some(Choice::InvertOther);
        }
        cost[index] = best_cost;
        choice[index] = [
            Some(best[0].clone().expect("AND2 fallback always applies")),
            Some(best[1].clone().expect("NAND2 fallback always applies")),
        ];
        cuts[index] = node_cuts;
    }

    // --- extraction ---
    let mut extractor = Extractor {
        aig,
        lib,
        choice: &choice,
        netlist: Netlist::new(aig.name()),
        node_net: HashMap::new(),
        const_nets: [None, None],
        counter: 0,
    };

    // Primary inputs and latch outputs become nets up front.
    for (name, id) in aig.inputs() {
        let net = extractor.netlist.add_input(name.clone());
        extractor.node_net.insert((*id, false), net);
    }
    let mut latch_q_nets = Vec::new();
    for latch in aig.latches() {
        let net = extractor.netlist.add_net(latch.name.clone());
        extractor.node_net.insert((latch.q, false), net);
        latch_q_nets.push(net);
    }
    // Logic cones.
    for (_, lit) in aig.outputs() {
        extractor.lit_net(*lit)?;
    }
    for latch in aig.latches() {
        extractor.lit_net(latch.d)?;
    }
    // Flip-flops.
    for (latch, q_net) in aig.latches().iter().zip(latch_q_nets) {
        let d_net = extractor.lit_net(latch.d)?;
        let cell = extractor.lib_cell_name(CellFunction::Dff)?;
        let name = format!("ff_{}", latch.name.replace(['[', ']'], "_"));
        extractor
            .netlist
            .add_cell(name, CellFunction::Dff, cell, &[d_net], q_net)?;
    }
    // Outputs.
    for (name, lit) in aig.outputs() {
        let net = extractor.lit_net(*lit)?;
        extractor.netlist.mark_output(name.clone(), net)?;
    }
    Ok(extractor.netlist)
}

/// Merges two cuts; `None` if the union exceeds the input limit.
fn merge_cuts(a: &[NodeId], b: &[NodeId]) -> Option<Vec<NodeId>> {
    let mut merged: Vec<NodeId> = a.to_vec();
    for &x in b {
        if !merged.contains(&x) {
            merged.push(x);
        }
    }
    if merged.len() > MAX_CUT_INPUTS {
        return None;
    }
    merged.sort();
    Some(merged)
}

/// Truth table of `node` as a function of the cut leaves (3-variable
/// projections), or `None` if the cone escapes the cut.
fn cone_truth_table(aig: &Aig, node: NodeId, cut: &[NodeId]) -> Option<u8> {
    fn tt_of(
        aig: &Aig,
        node: NodeId,
        cut: &[NodeId],
        memo: &mut HashMap<NodeId, u8>,
    ) -> Option<u8> {
        if let Some(pos) = cut.iter().position(|&l| l == node) {
            return Some(PROJ[pos]);
        }
        if let Some(&tt) = memo.get(&node) {
            return Some(tt);
        }
        let (a, b) = aig.and_fanins(node)?;
        let ta = tt_of(aig, a.node(), cut, memo)?;
        let tb = tt_of(aig, b.node(), cut, memo)?;
        let va = if a.is_complemented() { !ta } else { ta };
        let vb = if b.is_complemented() { !tb } else { tb };
        let tt = va & vb;
        memo.insert(node, tt);
        Some(tt)
    }
    let mut memo = HashMap::new();
    tt_of(aig, node, cut, &mut memo)
}

struct Extractor<'a> {
    aig: &'a Aig,
    lib: &'a StdCellLibrary,
    choice: &'a [[Option<Choice>; 2]],
    netlist: Netlist,
    /// `(node, negated)` -> net carrying that phase of the node's value.
    node_net: HashMap<(NodeId, bool), NetId>,
    const_nets: [Option<NetId>; 2],
    counter: usize,
}

impl Extractor<'_> {
    fn lib_cell_name(&self, function: CellFunction) -> Result<String, SynthError> {
        self.lib
            .smallest(class_for(function))
            .map(|c| c.name().to_string())
            .ok_or_else(|| SynthError::MissingLibraryCell(function.to_string()))
    }

    fn fresh_net(&mut self) -> NetId {
        self.counter += 1;
        self.netlist.add_net(format!("n{}", self.counter))
    }

    fn fresh_cell_name(&mut self) -> String {
        self.counter += 1;
        format!("g{}", self.counter)
    }

    /// Net carrying the requested phase of `node`, instantiating its chosen
    /// cover on first use.
    fn extract(&mut self, node: NodeId, negated: bool) -> Result<NetId, SynthError> {
        if let Some(&net) = self.node_net.get(&(node, negated)) {
            return Ok(net);
        }
        if node == NodeId::FALSE {
            return self.const_net(negated);
        }
        let phase = usize::from(negated);
        let choice = match &self.choice[node.index()][phase] {
            Some(c) => c.clone(),
            // Inputs/latch outputs have no positive choice: net is preset.
            None => {
                return Ok(*self
                    .node_net
                    .get(&(node, false))
                    .expect("input nets are preset"))
            }
        };
        let net = match choice {
            Choice::Cell {
                cut,
                function,
                pins,
            } => {
                let mut leaf_nets = Vec::with_capacity(cut.len());
                for leaf in &cut {
                    leaf_nets.push(self.extract(*leaf, false)?);
                }
                let inputs: Vec<NetId> = pins.iter().map(|&p| leaf_nets[p]).collect();
                let out = self.fresh_net();
                let cell = self.lib_cell_name(function)?;
                let name = self.fresh_cell_name();
                self.netlist.add_cell(name, function, cell, &inputs, out)?;
                out
            }
            Choice::Fallback(function) => {
                let (a, b) = self
                    .aig
                    .and_fanins(node)
                    .expect("fallback only on AND nodes");
                let na = self.lit_net(a)?;
                let nb = self.lit_net(b)?;
                let out = self.fresh_net();
                let cell = self.lib_cell_name(function)?;
                let name = self.fresh_cell_name();
                self.netlist
                    .add_cell(name, function, cell, &[na, nb], out)?;
                out
            }
            Choice::InvertOther => {
                let other = self.extract(node, !negated)?;
                let out = self.fresh_net();
                let cell = self.lib_cell_name(CellFunction::Inv)?;
                let name = self.fresh_cell_name();
                self.netlist
                    .add_cell(name, CellFunction::Inv, cell, &[other], out)?;
                out
            }
        };
        self.node_net.insert((node, negated), net);
        Ok(net)
    }

    /// Net carrying a literal's value.
    fn lit_net(&mut self, lit: Lit) -> Result<NetId, SynthError> {
        self.extract(lit.node(), lit.is_complemented())
    }

    fn const_net(&mut self, value: bool) -> Result<NetId, SynthError> {
        let slot = usize::from(value);
        if let Some(net) = self.const_nets[slot] {
            return Ok(net);
        }
        let function = if value {
            CellFunction::Const1
        } else {
            CellFunction::Const0
        };
        let class = if value {
            CellClass::TieHi
        } else {
            CellClass::TieLo
        };
        let cell = self
            .lib
            .smallest(class)
            .map(|c| c.name().to_string())
            .ok_or_else(|| SynthError::MissingLibraryCell(class.prefix().to_string()))?;
        let net = self.fresh_net();
        let name = self.fresh_cell_name();
        self.netlist.add_cell(name, function, cell, &[], net)?;
        self.const_nets[slot] = Some(net);
        Ok(net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_to_aig;
    use crate::simulate_equivalent;
    use chipforge_hdl::parse;
    use chipforge_pdk::{LibraryKind, TechnologyNode};

    fn lib() -> StdCellLibrary {
        StdCellLibrary::generate(TechnologyNode::N130, LibraryKind::Open)
    }

    fn map_src(src: &str) -> (chipforge_hdl::RtlModule, Netlist) {
        let module = parse(src).unwrap();
        let aig = lower_to_aig(&module);
        let netlist = map_to_netlist(&aig, &lib()).unwrap();
        netlist.validate().unwrap();
        (module, netlist)
    }

    #[test]
    fn xor_maps_to_single_gate() {
        let (module, netlist) =
            map_src("module m() { input a; input b; output y; assign y = a ^ b; }");
        assert!(simulate_equivalent(&module, &netlist, 16, 1));
        // One XOR2 (or XNOR2+INV, but area prefers XOR2).
        assert_eq!(netlist.cell_count(), 1, "{:?}", netlist.stats());
        assert_eq!(
            netlist.cells().next().unwrap().function(),
            CellFunction::Xor2
        );
    }

    #[test]
    fn mux_maps_compactly() {
        let (module, netlist) =
            map_src("module m() { input a; input b; input s; output y; assign y = s ? b : a; }");
        assert!(simulate_equivalent(&module, &netlist, 32, 2));
        assert!(
            netlist.cell_count() <= 2,
            "mux should map to at most MUX2 (+INV), got {}",
            netlist.cell_count()
        );
    }

    #[test]
    fn constants_map_to_tie_cells() {
        let (module, netlist) = map_src(
            "module m() { input a; output y; output z; assign y = 1'd1; assign z = a & 1'd0; }",
        );
        assert!(simulate_equivalent(&module, &netlist, 8, 3));
        let functions: Vec<CellFunction> = netlist.cells().map(|c| c.function()).collect();
        assert!(functions.contains(&CellFunction::Const1));
        assert!(functions.contains(&CellFunction::Const0));
    }

    #[test]
    fn full_adder_uses_complex_gates() {
        let (module, netlist) = map_src(
            "module m() { input a; input b; input c; output [1:0] s; assign s = {1'd0, a} + {1'd0, b} + {1'd0, c}; }",
        );
        assert!(simulate_equivalent(&module, &netlist, 64, 4));
        // XOR3 + MAJ3 (or close): far fewer cells than the ~12 NAND mapping.
        assert!(
            netlist.cell_count() <= 6,
            "full adder mapped to {} cells",
            netlist.cell_count()
        );
    }

    #[test]
    fn sequential_mapping_places_dffs() {
        let (module, netlist) = map_src(
            "module c() { input en; output [3:0] q; reg [3:0] q; always { if (en) { q <= q + 1; } } }",
        );
        assert!(simulate_equivalent(&module, &netlist, 64, 5));
        assert_eq!(netlist.stats().sequential_cells, 4);
    }

    #[test]
    fn inverters_are_shared() {
        let (module, netlist) = map_src(
            "module m() { input a; input b; input c; output x; output y; assign x = (a == 0) & b; assign y = (a == 0) & c; }",
        );
        assert!(simulate_equivalent(&module, &netlist, 32, 6));
        let inv_count = netlist
            .cells()
            .filter(|c| c.function() == CellFunction::Inv)
            .count();
        assert!(
            inv_count <= 1,
            "!a must be shared, found {inv_count} inverters"
        );
    }

    #[test]
    fn match_table_covers_basic_tts() {
        let table = MatchTable::build(&lib()).unwrap();
        // AND of leaves 0,1 -> 0xAA & 0xCC = 0x88.
        assert!(table.by_tt.contains_key(&0x88));
        // XOR -> 0x66.
        assert!(table.by_tt.contains_key(&0x66));
        // NAND -> 0x77.
        assert!(table.by_tt.contains_key(&0x77));
        // Projection (BUF) -> 0xAA.
        assert!(table.by_tt.contains_key(&0xAA));
        // MAJ3 -> 0xE8.
        assert!(table.by_tt.contains_key(&0xE8));
    }

    #[test]
    fn injective_assignments_counts() {
        assert_eq!(injective_assignments(1, 3).len(), 3);
        assert_eq!(injective_assignments(2, 3).len(), 6);
        assert_eq!(injective_assignments(3, 3).len(), 6);
    }
}
