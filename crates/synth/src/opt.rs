//! AIG optimization passes: sweep (dead-node removal), balance (AND-tree
//! depth reduction) and cut-based simplification (local redundancy
//! removal).
//!
//! Constant folding and structural hashing are performed eagerly by
//! [`Aig::and`], so these passes focus on restructuring that spans more
//! than one node.

use crate::aig::{Aig, AigNode, Lit, NodeId};
use std::collections::HashMap;

/// Removes logic not reachable from any output or latch next-state.
///
/// Rebuilds the graph, so node ids change; names and port order are
/// preserved.
pub fn sweep(aig: &mut Aig) {
    let mut reachable = vec![false; aig.nodes.len()];
    let mut stack: Vec<NodeId> = Vec::new();
    for (_, lit) in &aig.outputs {
        stack.push(lit.node());
    }
    for latch in &aig.latches {
        stack.push(latch.d.node());
        stack.push(latch.q);
    }
    while let Some(node) = stack.pop() {
        if reachable[node.index()] {
            continue;
        }
        reachable[node.index()] = true;
        if let Some((a, b)) = aig.and_fanins(node) {
            stack.push(a.node());
            stack.push(b.node());
        }
    }
    rebuild(aig, |old, new, map| {
        for (i, node) in old.nodes.iter().enumerate() {
            if !reachable[i] {
                continue;
            }
            if let AigNode::And(a, b) = node {
                let na = translate(*a, map);
                let nb = translate(*b, map);
                map[i] = Some(new.and(na, nb));
            }
        }
    });
}

/// Rebalances AND trees to reduce depth.
///
/// Fanout-free, uncomplemented chains of AND nodes are flattened into
/// multi-input conjunctions and rebuilt as balanced trees. Equivalence is
/// preserved exactly (AND is associative and commutative).
pub fn balance(aig: &mut Aig) {
    let refs = aig.fanout_counts();
    let n = aig.nodes.len();
    // leaves[i]: flattened conjunction leaves for AND node i.
    let mut leaves: Vec<Option<Vec<Lit>>> = vec![None; n];
    let mut inlined = vec![false; n];
    for i in 0..n {
        let (a, b) = match aig.nodes[i] {
            AigNode::And(a, b) => (a, b),
            _ => continue,
        };
        let mut list = Vec::new();
        for child in [a, b] {
            let ci = child.node().index();
            let inlinable = !child.is_complemented()
                && matches!(aig.nodes[ci], AigNode::And(..))
                && refs[ci] == 1;
            if inlinable {
                let child_leaves = leaves[ci].take().expect("children precede parents");
                inlined[ci] = true;
                list.extend(child_leaves);
            } else {
                list.push(child);
            }
        }
        leaves[i] = Some(list);
    }
    rebuild(aig, |old, new, map| {
        for i in 0..old.nodes.len() {
            if !matches!(old.nodes[i], AigNode::And(..)) || inlined[i] {
                continue;
            }
            let list = leaves[i].take().expect("kept nodes retain their leaves");
            let mapped: Vec<Lit> = list.iter().map(|&l| translate(l, map)).collect();
            map[i] = Some(new.and_many(&mapped));
        }
    });
}

/// Cut-based simplification: redundancies that span several AND nodes.
///
/// For every node, 3-input cuts are enumerated and the node's local truth
/// table computed. When the function collapses — constant, equal to a
/// leaf, or equal to a leaf's complement (classic shapes like
/// `(a & b) | (a & !b) = a`) — the node is replaced by the simpler
/// literal. Structural hashing alone cannot see these because the
/// redundancy only appears at the cut level.
pub fn simplify(aig: &mut Aig) {
    const PROJ: [u8; 3] = [0xAA, 0xCC, 0xF0];
    let n = aig.nodes.len();
    // Per node: up to a handful of cuts (sorted leaf lists).
    let mut cuts: Vec<Vec<Vec<NodeId>>> = vec![Vec::new(); n];
    // Replacement literal per node in the *old* graph, if collapsed.
    let mut replacement: Vec<Option<Lit>> = vec![None; n];

    // Follows replacement chains to a fixpoint (replacements can point at
    // nodes that were themselves replaced later in the pass).
    let resolve = |replacement: &Vec<Option<Lit>>, mut lit: Lit| -> Lit {
        for _ in 0..64 {
            match replacement[lit.node().index()] {
                Some(target) => {
                    lit = if lit.is_complemented() {
                        !target
                    } else {
                        target
                    };
                }
                None => break,
            }
        }
        lit
    };

    for index in 0..n {
        let node = NodeId(index as u32);
        let Some((fa, fb)) = aig.and_fanins(node) else {
            cuts[index] = vec![vec![node]];
            continue;
        };
        let fa = resolve(&replacement, fa);
        let fb = resolve(&replacement, fb);
        let mut node_cuts: Vec<Vec<NodeId>> = vec![vec![node]];
        for ca in cuts[fa.node().index()].clone() {
            for cb in cuts[fb.node().index()].clone() {
                let mut merged = ca.clone();
                for leaf in &cb {
                    if !merged.contains(leaf) {
                        merged.push(*leaf);
                    }
                }
                if merged.len() <= 3 {
                    merged.sort();
                    if !node_cuts.contains(&merged) {
                        node_cuts.push(merged);
                    }
                }
            }
        }
        node_cuts.truncate(8);

        'cuts: for cut in &node_cuts {
            if cut.len() == 1 && cut[0] == node {
                continue;
            }
            let Some(tt) = cut_tt(aig, node, cut, &PROJ, &replacement) else {
                continue;
            };
            let candidates: Vec<(u8, Lit)> = std::iter::once((0x00u8, Lit::FALSE))
                .chain(std::iter::once((0xFF, Lit::TRUE)))
                .chain(cut.iter().enumerate().flat_map(|(i, &leaf)| {
                    [
                        (PROJ[i], Lit::new(leaf, false)),
                        (!PROJ[i], Lit::new(leaf, true)),
                    ]
                }))
                .collect();
            for (pattern, lit) in candidates {
                if tt == pattern {
                    replacement[index] = Some(lit);
                    cuts[index] = cuts[lit.node().index()].clone();
                    break 'cuts;
                }
            }
        }
        if replacement[index].is_none() {
            cuts[index] = node_cuts;
        }
    }

    if replacement.iter().all(Option::is_none) {
        // Nothing collapsed; still clean out dead logic.
        sweep(aig);
        return;
    }
    // Rebuild with replacements applied.
    rebuild(aig, |old, new, map| {
        for i in 0..old.nodes.len() {
            let AigNode::And(a, b) = old.nodes[i] else {
                continue;
            };
            if let Some(target) = replacement[i] {
                // Point at the replacement's new literal.
                let resolved = resolve(&replacement, target);
                let base = map[resolved.node().index()].expect("leaves precede");
                map[i] = Some(if resolved.is_complemented() {
                    !base
                } else {
                    base
                });
            } else {
                let ra = resolve(&replacement, a);
                let rb = resolve(&replacement, b);
                let na = translate(ra, map);
                let nb = translate(rb, map);
                map[i] = Some(new.and(na, nb));
            }
        }
    });
    // Replacements can strand dead logic.
    sweep(aig);
}

/// Truth table of `node` over the cut leaves, following replacements.
fn cut_tt(
    aig: &Aig,
    node: NodeId,
    cut: &[NodeId],
    proj: &[u8; 3],
    replacement: &Vec<Option<Lit>>,
) -> Option<u8> {
    fn go(
        aig: &Aig,
        node: NodeId,
        cut: &[NodeId],
        proj: &[u8; 3],
        replacement: &Vec<Option<Lit>>,
        memo: &mut HashMap<NodeId, u8>,
        depth: usize,
    ) -> Option<u8> {
        if depth > 64 {
            return None;
        }
        if let Some(pos) = cut.iter().position(|&l| l == node) {
            return Some(proj[pos]);
        }
        if let Some(&tt) = memo.get(&node) {
            return Some(tt);
        }
        let (a, b) = aig.and_fanins(node)?;
        let follow = |mut lit: Lit| -> Lit {
            for _ in 0..64 {
                match replacement[lit.node().index()] {
                    Some(t) => lit = if lit.is_complemented() { !t } else { t },
                    None => break,
                }
            }
            lit
        };
        let a = follow(a);
        let b = follow(b);
        let ta = match a.node() {
            n if n == NodeId::FALSE => 0x00,
            n => go(aig, n, cut, proj, replacement, memo, depth + 1)?,
        };
        let tb = match b.node() {
            n if n == NodeId::FALSE => 0x00,
            n => go(aig, n, cut, proj, replacement, memo, depth + 1)?,
        };
        let va = if a.is_complemented() { !ta } else { ta };
        let vb = if b.is_complemented() { !tb } else { tb };
        let tt = va & vb;
        memo.insert(node, tt);
        Some(tt)
    }
    let mut memo = HashMap::new();
    go(aig, node, cut, proj, replacement, &mut memo, 0)
}

fn translate(lit: Lit, map: &[Option<Lit>]) -> Lit {
    let base = map[lit.node().index()].expect("fanins are mapped before fanouts");
    if lit.is_complemented() {
        !base
    } else {
        base
    }
}

/// Shared rebuild scaffolding: copies inputs/latches, lets `body` translate
/// the AND nodes, then reconnects latches and outputs.
fn rebuild(aig: &mut Aig, body: impl FnOnce(&mut Aig, &mut Aig, &mut Vec<Option<Lit>>)) {
    let mut old = std::mem::replace(aig, Aig::new(""));
    let mut new = Aig::new(old.name());
    let mut map: Vec<Option<Lit>> = vec![None; old.nodes.len()];
    map[NodeId::FALSE.index()] = Some(Lit::FALSE);
    for (name, id) in old.inputs.clone() {
        map[id.index()] = Some(new.add_input(name));
    }
    for latch in old.latches.clone() {
        map[latch.q.index()] = Some(new.add_latch(latch.name.clone()));
    }
    body(&mut old, &mut new, &mut map);
    for latch in &old.latches {
        let q = map[latch.q.index()].expect("latch copied").node();
        let d = translate(latch.d, &map);
        new.set_latch_next(q, d);
    }
    for (name, lit) in &old.outputs {
        new.add_output(name.clone(), translate(*lit, &map));
    }
    *aig = new;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_to_aig;
    use chipforge_hdl::{designs, parse};

    /// Exhaustively compares two AIGs on all inputs (inputs + latches must
    /// be few enough to enumerate).
    fn exhaustive_equal(a: &Aig, b: &Aig) {
        assert_eq!(a.inputs().len(), b.inputs().len());
        assert_eq!(a.latches().len(), b.latches().len());
        let n_in = a.inputs().len();
        let n_latch = a.latches().len();
        assert!(n_in + n_latch <= 16, "too many inputs for exhaustive check");
        for pattern in 0u32..(1 << (n_in + n_latch)) {
            let inputs: Vec<bool> = (0..n_in).map(|i| (pattern >> i) & 1 == 1).collect();
            let latches: Vec<bool> = (0..n_latch)
                .map(|i| (pattern >> (n_in + i)) & 1 == 1)
                .collect();
            let va = a.simulate(&inputs, &latches);
            let vb = b.simulate(&inputs, &latches);
            for ((name, la), (_, lb)) in a.outputs().iter().zip(b.outputs()) {
                assert_eq!(
                    Aig::lit_value(&va, *la),
                    Aig::lit_value(&vb, *lb),
                    "output {name} pattern {pattern:#b}"
                );
            }
            for (la, lb) in a.latches().iter().zip(b.latches()) {
                assert_eq!(
                    Aig::lit_value(&va, la.d),
                    Aig::lit_value(&vb, lb.d),
                    "latch {} pattern {pattern:#b}",
                    la.name
                );
            }
        }
    }

    #[test]
    fn sweep_removes_dead_logic() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let used = aig.and(a, b);
        let _dead = aig.and(a, !b);
        aig.add_output("y", used);
        let before = aig.stats().ands;
        assert_eq!(before, 2);
        let reference = aig.clone();
        sweep(&mut aig);
        assert_eq!(aig.stats().ands, 1);
        exhaustive_equal(&reference, &aig);
    }

    #[test]
    fn balance_reduces_chain_depth() {
        // A linear 8-input AND chain: depth 7 -> balanced depth 3.
        let mut aig = Aig::new("chain");
        let inputs: Vec<Lit> = (0..8).map(|i| aig.add_input(format!("i{i}"))).collect();
        let mut acc = inputs[0];
        for &l in &inputs[1..] {
            acc = aig.and(acc, l);
        }
        aig.add_output("y", acc);
        assert_eq!(aig.stats().depth, 7);
        let reference = aig.clone();
        balance(&mut aig);
        assert_eq!(aig.stats().depth, 3);
        exhaustive_equal(&reference, &aig);
    }

    #[test]
    fn balance_preserves_shared_nodes() {
        // A shared AND must not be duplicated into both fanouts.
        let mut aig = Aig::new("shared");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let shared = aig.and(a, b);
        let y1 = aig.and(shared, c);
        let y2 = aig.and(shared, !c);
        aig.add_output("y1", y1);
        aig.add_output("y2", y2);
        let reference = aig.clone();
        balance(&mut aig);
        exhaustive_equal(&reference, &aig);
        assert!(aig.stats().ands <= 3);
    }

    #[test]
    fn passes_preserve_suite_semantics() {
        for design in designs::suite() {
            let module = parse(design.source()).unwrap();
            let aig = lower_to_aig(&module);
            if aig.inputs().len() + aig.latches().len() > 16 {
                continue; // exhaustive check infeasible; covered by lib tests
            }
            let mut optimized = aig.clone();
            balance(&mut optimized);
            sweep(&mut optimized);
            exhaustive_equal(&aig, &optimized);
        }
    }

    #[test]
    fn simplify_collapses_shannon_redundancy() {
        // (a & b) | (a & !b) = a — invisible to structural hashing.
        let mut aig = Aig::new("shannon");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let ab = aig.and(a, b);
        let anb = aig.and(a, !b);
        let y = aig.or(ab, anb);
        aig.add_output("y", y);
        assert_eq!(aig.stats().ands, 3);
        let reference = aig.clone();
        simplify(&mut aig);
        assert_eq!(aig.stats().ands, 0, "must collapse to the input");
        exhaustive_equal(&reference, &aig);
    }

    #[test]
    fn simplify_finds_cut_level_constants() {
        // (a | b) & (!a & !b) = 0 across three nodes.
        let mut aig = Aig::new("const");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let or = aig.or(a, b);
        let nor = aig.and(!a, !b);
        let y = aig.and(or, nor);
        aig.add_output("y", y);
        let reference = aig.clone();
        simplify(&mut aig);
        assert_eq!(aig.stats().ands, 0, "constant false cone must vanish");
        exhaustive_equal(&reference, &aig);
    }

    #[test]
    fn simplify_collapses_mux_with_equal_branches() {
        // s ? a : a = a (three mux nodes).
        let mut aig = Aig::new("mux");
        let s = aig.add_input("s");
        let a = aig.add_input("a");
        let y = aig.mux(s, a, a);
        aig.add_output("y", y);
        let reference = aig.clone();
        simplify(&mut aig);
        assert_eq!(aig.stats().ands, 0);
        exhaustive_equal(&reference, &aig);
    }

    #[test]
    fn simplify_preserves_suite_semantics() {
        for design in designs::suite() {
            let module = parse(design.source()).unwrap();
            let aig = lower_to_aig(&module);
            if aig.inputs().len() + aig.latches().len() > 16 {
                continue;
            }
            let mut optimized = aig.clone();
            simplify(&mut optimized);
            assert!(
                optimized.stats().ands <= aig.stats().ands,
                "{}: simplify must not grow the graph",
                design.name()
            );
            exhaustive_equal(&aig, &optimized);
        }
    }

    #[test]
    fn balance_keeps_latch_structure() {
        let module = parse(
            "module c() { input en; output [3:0] q; reg [3:0] q; always { if (en) { q <= q + 1; } } }",
        )
        .unwrap();
        let aig = lower_to_aig(&module);
        let mut optimized = aig.clone();
        balance(&mut optimized);
        assert_eq!(optimized.latches().len(), 4);
        exhaustive_equal(&aig, &optimized);
    }
}
