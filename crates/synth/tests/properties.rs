//! Property tests: random RTL expressions survive the complete synthesis
//! pipeline (lower → optimize → map) functionally intact.

use chipforge_hdl::parse;
use chipforge_pdk::{LibraryKind, StdCellLibrary, TechnologyNode};
use chipforge_synth::{simulate_equivalent, synthesize, SynthEffort, SynthOptions};
use proptest::prelude::*;

/// Strategy: a random ForgeHDL expression over inputs `a`, `b`, `c`
/// (widths 4, 4, 2) rendered as source text.
fn expr(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("c".to_string()),
        Just("4'd3".to_string()),
        Just("4'd15".to_string()),
        Just("1'd1".to_string()),
        Just("a[3:1]".to_string()),
        Just("b[0]".to_string()),
    ];
    leaf.prop_recursive(depth, 64, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| format!("({l} + {r})")),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| format!("({l} - {r})")),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| format!("({l} & {r})")),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| format!("({l} | {r})")),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| format!("({l} ^ {r})")),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| format!("({l} * {r})")),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| format!("({l} == {r})")),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| format!("({l} < {r})")),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(s, t, e)| format!("({s} ? {t} : {e})")),
            inner.clone().prop_map(|e| format!("(~{e})")),
            inner.clone().prop_map(|e| format!("(-{e})")),
            inner.clone().prop_map(|e| format!("(^{e})")),
            inner.clone().prop_map(|e| format!("({e} << 2)")),
            inner.clone().prop_map(|e| format!("({e} >> c)")),
        ]
    })
    .boxed()
}

fn module_source(body: &str) -> String {
    format!(
        "module rand() {{\n input [3:0] a;\n input [3:0] b;\n input [1:0] c;\n output [5:0] y;\n assign y = {body};\n}}\n"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_expressions_synthesize_equivalently(body in expr(4), seed in any::<u64>()) {
        let src = module_source(&body);
        let module = parse(&src).expect("generated source is valid");
        let lib = StdCellLibrary::generate(TechnologyNode::N130, LibraryKind::Open);
        let result = synthesize(&module, &lib, &SynthOptions::default()).expect("synthesizes");
        result.netlist.validate().expect("valid netlist");
        prop_assert!(
            simulate_equivalent(&module, &result.netlist, 32, seed | 1),
            "netlist diverges for `{body}`"
        );
    }

    #[test]
    fn effort_levels_agree(body in expr(3)) {
        let src = module_source(&body);
        let module = parse(&src).expect("valid");
        let lib = StdCellLibrary::generate(TechnologyNode::N130, LibraryKind::Open);
        for effort in [SynthEffort::Fast, SynthEffort::Standard, SynthEffort::High] {
            let result = synthesize(&module, &lib, &SynthOptions { effort }).expect("synth");
            prop_assert!(
                simulate_equivalent(&module, &result.netlist, 16, 7),
                "{effort:?} diverges for `{body}`"
            );
        }
    }

    #[test]
    fn commercial_library_also_maps_correctly(body in expr(3)) {
        let src = module_source(&body);
        let module = parse(&src).expect("valid");
        let lib = StdCellLibrary::generate(TechnologyNode::N28, LibraryKind::Commercial);
        let result = synthesize(&module, &lib, &SynthOptions::default()).expect("synth");
        prop_assert!(simulate_equivalent(&module, &result.netlist, 16, 13));
    }
}
