//! A reduced ordered binary decision diagram (ROBDD) package.

use std::collections::HashMap;

/// Reference to a BDD node (index into the manager's node table).
///
/// `BddRef(0)` is constant false, `BddRef(1)` constant true.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BddRef(u32);

impl BddRef {
    /// Constant false.
    pub const FALSE: BddRef = BddRef(0);
    /// Constant true.
    pub const TRUE: BddRef = BddRef(1);

    /// Whether this is one of the two terminal nodes.
    #[must_use]
    pub fn is_constant(self) -> bool {
        self.0 <= 1
    }
}

#[derive(Debug, Clone, Copy)]
struct Node {
    var: u32,
    low: BddRef,
    high: BddRef,
}

/// A BDD manager with unique and computed tables and a node budget.
///
/// Variables are identified by dense indices; the variable order is the
/// index order. All operations return `None` once the node budget is
/// exhausted, letting callers degrade gracefully on BDD-hostile functions
/// (e.g. multiplier outputs).
///
/// ```
/// use chipforge_verify::{Bdd, BddRef};
///
/// let mut bdd = Bdd::new(1 << 20);
/// let a = bdd.var(0).unwrap();
/// let b = bdd.var(1).unwrap();
/// let and = bdd.and(a, b).unwrap();
/// let or = bdd.or(a, b).unwrap();
/// assert_ne!(and, or);
/// // De Morgan: !(a & b) == !a | !b — canonical form makes this pointer equality.
/// let na = bdd.not(a).unwrap();
/// let nb = bdd.not(b).unwrap();
/// let lhs = bdd.not(and).unwrap();
/// let rhs = bdd.or(na, nb).unwrap();
/// assert_eq!(lhs, rhs);
/// ```
#[derive(Debug)]
pub struct Bdd {
    nodes: Vec<Node>,
    unique: HashMap<(u32, BddRef, BddRef), BddRef>,
    and_cache: HashMap<(BddRef, BddRef), BddRef>,
    not_cache: HashMap<BddRef, BddRef>,
    budget: usize,
}

impl Bdd {
    /// Creates a manager allowed to allocate up to `budget` nodes.
    #[must_use]
    pub fn new(budget: usize) -> Self {
        Self {
            nodes: vec![
                // Terminal sentinels; var = u32::MAX sorts after all
                // real variables.
                Node {
                    var: u32::MAX,
                    low: BddRef::FALSE,
                    high: BddRef::FALSE,
                },
                Node {
                    var: u32::MAX,
                    low: BddRef::TRUE,
                    high: BddRef::TRUE,
                },
            ],
            unique: HashMap::new(),
            and_cache: HashMap::new(),
            not_cache: HashMap::new(),
            budget,
        }
    }

    /// Number of live nodes (including the two terminals).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn mk(&mut self, var: u32, low: BddRef, high: BddRef) -> Option<BddRef> {
        if low == high {
            return Some(low);
        }
        if let Some(&r) = self.unique.get(&(var, low, high)) {
            return Some(r);
        }
        if self.nodes.len() >= self.budget {
            return None;
        }
        let r = BddRef(self.nodes.len() as u32);
        self.nodes.push(Node { var, low, high });
        self.unique.insert((var, low, high), r);
        Some(r)
    }

    /// The BDD for a single variable.
    ///
    /// Returns `None` if the node budget is exhausted.
    pub fn var(&mut self, index: u32) -> Option<BddRef> {
        self.mk(index, BddRef::FALSE, BddRef::TRUE)
    }

    /// Conjunction. `None` on budget exhaustion.
    pub fn and(&mut self, f: BddRef, g: BddRef) -> Option<BddRef> {
        if f == g {
            return Some(f);
        }
        if f == BddRef::FALSE || g == BddRef::FALSE {
            return Some(BddRef::FALSE);
        }
        if f == BddRef::TRUE {
            return Some(g);
        }
        if g == BddRef::TRUE {
            return Some(f);
        }
        let key = if f <= g { (f, g) } else { (g, f) };
        if let Some(&r) = self.and_cache.get(&key) {
            return Some(r);
        }
        let (nf, ng) = (self.nodes[f.0 as usize], self.nodes[g.0 as usize]);
        let var = nf.var.min(ng.var);
        let (f0, f1) = if nf.var == var {
            (nf.low, nf.high)
        } else {
            (f, f)
        };
        let (g0, g1) = if ng.var == var {
            (ng.low, ng.high)
        } else {
            (g, g)
        };
        let low = self.and(f0, g0)?;
        let high = self.and(f1, g1)?;
        let r = self.mk(var, low, high)?;
        self.and_cache.insert(key, r);
        Some(r)
    }

    /// Negation. `None` on budget exhaustion.
    pub fn not(&mut self, f: BddRef) -> Option<BddRef> {
        if f == BddRef::FALSE {
            return Some(BddRef::TRUE);
        }
        if f == BddRef::TRUE {
            return Some(BddRef::FALSE);
        }
        if let Some(&r) = self.not_cache.get(&f) {
            return Some(r);
        }
        let n = self.nodes[f.0 as usize];
        let low = self.not(n.low)?;
        let high = self.not(n.high)?;
        let r = self.mk(n.var, low, high)?;
        self.not_cache.insert(f, r);
        self.not_cache.insert(r, f);
        Some(r)
    }

    /// Disjunction via De Morgan.
    pub fn or(&mut self, f: BddRef, g: BddRef) -> Option<BddRef> {
        let nf = self.not(f)?;
        let ng = self.not(g)?;
        let n = self.and(nf, ng)?;
        self.not(n)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: BddRef, g: BddRef) -> Option<BddRef> {
        let ng = self.not(g)?;
        let nf = self.not(f)?;
        let a = self.and(f, ng)?;
        let b = self.and(nf, g)?;
        self.or(a, b)
    }

    /// A satisfying assignment of `f` as `(variable, value)` pairs, or
    /// `None` if `f` is constant false.
    #[must_use]
    pub fn satisfying_assignment(&self, f: BddRef) -> Option<Vec<(u32, bool)>> {
        if f == BddRef::FALSE {
            return None;
        }
        let mut assignment = Vec::new();
        let mut current = f;
        while !current.is_constant() {
            let n = self.nodes[current.0 as usize];
            if n.low != BddRef::FALSE {
                assignment.push((n.var, false));
                current = n.low;
            } else {
                assignment.push((n.var, true));
                current = n.high;
            }
        }
        debug_assert_eq!(current, BddRef::TRUE);
        Some(assignment)
    }

    /// Evaluates `f` under a total assignment (missing variables read
    /// false).
    #[must_use]
    pub fn eval(&self, f: BddRef, assignment: &HashMap<u32, bool>) -> bool {
        let mut current = f;
        while !current.is_constant() {
            let n = self.nodes[current.0 as usize];
            current = if assignment.get(&n.var).copied().unwrap_or(false) {
                n.high
            } else {
                n.low
            };
        }
        current == BddRef::TRUE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_behave() {
        let mut bdd = Bdd::new(1000);
        assert_eq!(bdd.and(BddRef::TRUE, BddRef::FALSE), Some(BddRef::FALSE));
        assert_eq!(bdd.or(BddRef::TRUE, BddRef::FALSE), Some(BddRef::TRUE));
        assert_eq!(bdd.not(BddRef::TRUE), Some(BddRef::FALSE));
    }

    #[test]
    fn canonicity_makes_equal_functions_identical() {
        let mut bdd = Bdd::new(10_000);
        let a = bdd.var(0).unwrap();
        let b = bdd.var(1).unwrap();
        let c = bdd.var(2).unwrap();
        // (a & b) | (a & c) == a & (b | c)
        let ab = bdd.and(a, b).unwrap();
        let ac = bdd.and(a, c).unwrap();
        let lhs = bdd.or(ab, ac).unwrap();
        let bc = bdd.or(b, c).unwrap();
        let rhs = bdd.and(a, bc).unwrap();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn xor_is_its_own_inverse() {
        let mut bdd = Bdd::new(10_000);
        let a = bdd.var(0).unwrap();
        let b = bdd.var(1).unwrap();
        let x = bdd.xor(a, b).unwrap();
        let back = bdd.xor(x, b).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn tautology_collapses_to_true() {
        let mut bdd = Bdd::new(10_000);
        let a = bdd.var(0).unwrap();
        let na = bdd.not(a).unwrap();
        assert_eq!(bdd.or(a, na), Some(BddRef::TRUE));
        assert_eq!(bdd.and(a, na), Some(BddRef::FALSE));
    }

    #[test]
    fn budget_exhaustion_returns_none() {
        // A 32-variable parity needs ~65 nodes; a budget of 10 fails.
        let mut bdd = Bdd::new(10);
        let mut acc = bdd.var(0);
        for i in 1..32 {
            acc = match (acc, bdd.var(i)) {
                (Some(a), Some(v)) => bdd.xor(a, v),
                _ => None,
            };
            if acc.is_none() {
                return; // expected
            }
        }
        panic!("budget was never exhausted");
    }

    #[test]
    fn satisfying_assignment_satisfies() {
        let mut bdd = Bdd::new(10_000);
        let a = bdd.var(0).unwrap();
        let b = bdd.var(1).unwrap();
        let nb = bdd.not(b).unwrap();
        let f = bdd.and(a, nb).unwrap();
        let assignment = bdd.satisfying_assignment(f).unwrap();
        let map: HashMap<u32, bool> = assignment.into_iter().collect();
        assert!(bdd.eval(f, &map));
        assert_eq!(map.get(&0), Some(&true));
        assert_eq!(map.get(&1), Some(&false));
        assert!(bdd.satisfying_assignment(BddRef::FALSE).is_none());
    }

    #[test]
    fn eval_agrees_with_construction() {
        let mut bdd = Bdd::new(10_000);
        let a = bdd.var(0).unwrap();
        let b = bdd.var(1).unwrap();
        let c = bdd.var(2).unwrap();
        let ab = bdd.and(a, b).unwrap();
        let f = bdd.xor(ab, c).unwrap();
        for pattern in 0u32..8 {
            let map: HashMap<u32, bool> = (0..3).map(|i| (i, (pattern >> i) & 1 == 1)).collect();
            let expected =
                ((pattern & 1 == 1) && (pattern >> 1 & 1 == 1)) ^ (pattern >> 2 & 1 == 1);
            assert_eq!(bdd.eval(f, &map), expected, "pattern {pattern:#b}");
        }
    }
}
