//! Mapped-netlist → AIG semantic conversion.

use chipforge_netlist::{CellFunction, NetDriver, Netlist, NetlistError};
use chipforge_synth::{Aig, Lit};

/// Converts a mapped gate-level netlist into an and-inverter graph using
/// the semantic definition of each [`CellFunction`].
///
/// Primary inputs keep their (bit-blasted) port names; flip-flops become
/// AIG latches named after their output nets, matching the naming the
/// RTL lowering in `chipforge-synth` produces — which is what makes
/// output-by-name equivalence checking possible.
///
/// # Errors
///
/// Returns [`NetlistError`] if the netlist has undriven nets or
/// combinational loops.
pub fn netlist_to_aig(netlist: &Netlist) -> Result<Aig, NetlistError> {
    netlist.validate()?;
    let mut aig = Aig::new(netlist.name());
    let mut net_lit: Vec<Option<Lit>> = vec![None; netlist.net_count()];

    for (name, net) in netlist.inputs() {
        net_lit[net.index()] = Some(aig.add_input(name.clone()));
    }
    // Latch outputs first so combinational logic can read them.
    let mut latch_cells = Vec::new();
    for cell in netlist.cells() {
        if cell.is_sequential() {
            let q_name = netlist.net(cell.output()).name().to_string();
            net_lit[cell.output().index()] = Some(aig.add_latch(q_name));
            latch_cells.push(cell.id());
        }
    }
    // Combinational cells in topological order.
    for id in netlist.combinational_order()? {
        let cell = netlist.cell(id);
        let inputs: Vec<Lit> = cell
            .inputs()
            .iter()
            .map(|n| net_lit[n.index()].expect("topological order resolves inputs"))
            .collect();
        let out = eval_function(&mut aig, cell.function(), &inputs);
        net_lit[cell.output().index()] = Some(out);
    }
    // Latch next-state functions.
    for id in latch_cells {
        let cell = netlist.cell(id);
        let q = net_lit[cell.output().index()]
            .expect("latch output allocated")
            .node();
        let d = net_lit[cell.inputs()[0].index()].expect("D net resolved");
        let next = match cell.function() {
            CellFunction::Dff => d,
            CellFunction::DffEn => {
                let en = net_lit[cell.inputs()[1].index()].expect("EN net resolved");
                let hold = Lit::new(q, false);
                aig.mux(en, d, hold)
            }
            _ => unreachable!("only flops are sequential"),
        };
        aig.set_latch_next(q, next);
    }
    // Outputs by port name.
    for (port, net) in netlist.outputs() {
        let lit = match netlist.net(*net).driver() {
            Some(NetDriver::Cell(_) | NetDriver::Input(_)) => {
                net_lit[net.index()].expect("driven net resolved")
            }
            None => unreachable!("validated netlists have no undriven nets"),
        };
        aig.add_output(port.clone(), lit);
    }
    Ok(aig)
}

fn eval_function(aig: &mut Aig, function: CellFunction, inputs: &[Lit]) -> Lit {
    match function {
        CellFunction::Const0 => Lit::FALSE,
        CellFunction::Const1 => Lit::TRUE,
        CellFunction::Buf => inputs[0],
        CellFunction::Inv => !inputs[0],
        CellFunction::And2 => aig.and(inputs[0], inputs[1]),
        CellFunction::Nand2 => !aig.and(inputs[0], inputs[1]),
        CellFunction::Or2 => aig.or(inputs[0], inputs[1]),
        CellFunction::Nor2 => !aig.or(inputs[0], inputs[1]),
        CellFunction::Xor2 => aig.xor(inputs[0], inputs[1]),
        CellFunction::Xnor2 => !aig.xor(inputs[0], inputs[1]),
        CellFunction::And3 => {
            let ab = aig.and(inputs[0], inputs[1]);
            aig.and(ab, inputs[2])
        }
        CellFunction::Nand3 => {
            let ab = aig.and(inputs[0], inputs[1]);
            !aig.and(ab, inputs[2])
        }
        CellFunction::Or3 => {
            let ab = aig.or(inputs[0], inputs[1]);
            aig.or(ab, inputs[2])
        }
        CellFunction::Nor3 => {
            let ab = aig.or(inputs[0], inputs[1]);
            !aig.or(ab, inputs[2])
        }
        CellFunction::Aoi21 => {
            let ab = aig.and(inputs[0], inputs[1]);
            !aig.or(ab, inputs[2])
        }
        CellFunction::Oai21 => {
            let ab = aig.or(inputs[0], inputs[1]);
            !aig.and(ab, inputs[2])
        }
        CellFunction::Mux2 => aig.mux(inputs[2], inputs[1], inputs[0]),
        CellFunction::Maj3 => {
            let ab = aig.and(inputs[0], inputs[1]);
            let ac = aig.and(inputs[0], inputs[2]);
            let bc = aig.and(inputs[1], inputs[2]);
            let or1 = aig.or(ab, ac);
            aig.or(or1, bc)
        }
        CellFunction::Xor3 => {
            let ab = aig.xor(inputs[0], inputs[1]);
            aig.xor(ab, inputs[2])
        }
        CellFunction::Dff | CellFunction::DffEn => {
            unreachable!("sequential cells handled separately")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipforge_netlist::Netlist;

    #[test]
    fn converts_combinational_gates_faithfully() {
        // y = MAJ3(a, b, c) — check all 8 patterns.
        let mut nl = Netlist::new("maj");
        let a = nl.add_input("a[0]");
        let b = nl.add_input("b[0]");
        let c = nl.add_input("c[0]");
        let y = nl.add_net("y");
        nl.add_cell("u", CellFunction::Maj3, "MAJ3_X1", &[a, b, c], y)
            .unwrap();
        nl.mark_output("y[0]", y).unwrap();
        let aig = netlist_to_aig(&nl).unwrap();
        for pattern in 0u32..8 {
            let inputs: Vec<bool> = (0..3).map(|i| (pattern >> i) & 1 == 1).collect();
            let values = aig.simulate(&inputs, &[]);
            let expected = inputs.iter().filter(|&&b| b).count() >= 2;
            assert_eq!(
                Aig::lit_value(&values, aig.outputs()[0].1),
                expected,
                "pattern {pattern:#b}"
            );
        }
    }

    #[test]
    fn latches_carry_names_and_nextstate() {
        let mut nl = Netlist::new("ff");
        let d = nl.add_input("d[0]");
        let q = nl.add_net("q[0]");
        nl.add_cell("ff0", CellFunction::Dff, "DFF_X1", &[d], q)
            .unwrap();
        nl.mark_output("q[0]", q).unwrap();
        let aig = netlist_to_aig(&nl).unwrap();
        assert_eq!(aig.latches().len(), 1);
        assert_eq!(aig.latches()[0].name, "q[0]");
    }

    #[test]
    fn invalid_netlists_are_rejected() {
        let mut nl = Netlist::new("bad");
        let floating = nl.add_net("w");
        let y = nl.add_net("y");
        nl.add_cell("u", CellFunction::Inv, "INV_X1", &[floating], y)
            .unwrap();
        assert!(netlist_to_aig(&nl).is_err());
    }
}
