//! Formal equivalence between RTL and mapped netlists.

use crate::bdd::{Bdd, BddRef};
use crate::convert::netlist_to_aig;
use chipforge_hdl::RtlModule;
use chipforge_netlist::Netlist;
use chipforge_synth::{lower, Aig, Lit};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A concrete input/state assignment distinguishing the two designs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counterexample {
    /// The output or next-state function that differs.
    pub signal: String,
    /// `(input/state-bit name, value)` pairs; unlisted bits are false.
    pub assignment: Vec<(String, bool)>,
}

/// Outcome of an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// All outputs and next-state functions proven equal.
    Equivalent,
    /// A difference was proven; see the counterexample.
    Inequivalent(Counterexample),
    /// The designs have different interfaces (missing output/state bit).
    InterfaceMismatch(String),
    /// The BDD node budget was exhausted before a proof completed.
    Aborted,
}

/// Result of [`check_equivalence`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EquivalenceResult {
    /// The verdict.
    pub verdict: Verdict,
    /// Functions proven equal before finishing/aborting.
    pub proven: usize,
    /// Total functions to prove (outputs + next-state bits).
    pub total: usize,
    /// BDD nodes allocated.
    pub bdd_nodes: usize,
}

/// Formally checks a mapped netlist against its RTL module.
///
/// Both designs are converted to AIGs; primary inputs and state bits are
/// matched by their bit-blasted names; every primary output and every
/// latch next-state function is compared as a canonical BDD. Because the
/// flow preserves the state encoding one-to-one, this is complete
/// sequential equivalence, not a bounded check.
///
/// `node_budget` caps BDD size; on exhaustion the verdict is
/// [`Verdict::Aborted`] (multiplier-style functions are BDD-hostile — use
/// the simulation-based check in `chipforge-synth` as a fallback there).
#[must_use]
pub fn check_equivalence(
    module: &RtlModule,
    netlist: &Netlist,
    node_budget: usize,
) -> EquivalenceResult {
    let golden = lower::lower_to_aig(module);
    let dut = match netlist_to_aig(netlist) {
        Ok(aig) => aig,
        Err(e) => {
            return EquivalenceResult {
                verdict: Verdict::InterfaceMismatch(format!("invalid netlist: {e}")),
                proven: 0,
                total: 0,
                bdd_nodes: 0,
            }
        }
    };
    check_aig_equivalence(&golden, &dut, node_budget)
}

/// Checks two AIGs with name-matched interfaces for equivalence.
#[must_use]
pub fn check_aig_equivalence(golden: &Aig, dut: &Aig, node_budget: usize) -> EquivalenceResult {
    // --- variable order: interleave bits across buses ---
    let mut names: Vec<String> = golden
        .inputs()
        .iter()
        .map(|(n, _)| n.clone())
        .chain(golden.latches().iter().map(|l| l.name.clone()))
        .collect();
    // DUT-only inputs (e.g. scan ports) still need variables.
    for (n, _) in dut.inputs() {
        if !names.contains(n) {
            names.push(n.clone());
        }
    }
    for l in dut.latches() {
        if !names.contains(&l.name) {
            names.push(l.name.clone());
        }
    }
    names.sort_by_key(|n| {
        let (base, bit) = split_bit(n);
        (bit, base.to_string())
    });
    let var_of: HashMap<&str, u32> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i as u32))
        .collect();
    let var_name: Vec<&str> = names.iter().map(String::as_str).collect();

    let mut bdd = Bdd::new(node_budget);
    let total = golden.outputs().len() + golden.latches().len();
    let abort = |bdd: &Bdd, proven: usize| EquivalenceResult {
        verdict: Verdict::Aborted,
        proven,
        total,
        bdd_nodes: bdd.node_count(),
    };

    // Build per-node BDDs for one AIG.
    fn build(aig: &Aig, bdd: &mut Bdd, var_of: &HashMap<&str, u32>) -> Option<Vec<Option<BddRef>>> {
        let mut table: Vec<Option<BddRef>> = vec![None; aig.node_count()];
        table[0] = Some(BddRef::FALSE);
        for (name, id) in aig.inputs() {
            let var = *var_of.get(name.as_str())?;
            table[id.index()] = Some(bdd.var(var)?);
        }
        for latch in aig.latches() {
            let var = *var_of.get(latch.name.as_str())?;
            table[latch.q.index()] = Some(bdd.var(var)?);
        }
        for index in 0..aig.node_count() {
            if table[index].is_some() {
                continue;
            }
            let node = chipforge_synth::NodeId::from_index(index);
            let Some((a, b)) = aig.and_fanins(node) else {
                continue; // unreferenced input already handled or dead
            };
            let fa = lit_bdd(&table, bdd, a)?;
            let fb = lit_bdd(&table, bdd, b)?;
            table[index] = Some(bdd.and(fa, fb)?);
        }
        Some(table)
    }

    fn lit_bdd(table: &[Option<BddRef>], bdd: &mut Bdd, lit: Lit) -> Option<BddRef> {
        let base = table[lit.node().index()]?;
        if lit.is_complemented() {
            bdd.not(base)
        } else {
            Some(base)
        }
    }

    let Some(golden_table) = build(golden, &mut bdd, &var_of) else {
        return abort(&bdd, 0);
    };
    let Some(dut_table) = build(dut, &mut bdd, &var_of) else {
        return abort(&bdd, 0);
    };

    // Collect the functions to compare: outputs and next-states by name.
    let dut_outputs: HashMap<&str, Lit> = dut
        .outputs()
        .iter()
        .map(|(n, l)| (n.as_str(), *l))
        .collect();
    let dut_next: HashMap<&str, Lit> = dut
        .latches()
        .iter()
        .map(|l| (l.name.as_str(), l.d))
        .collect();
    let mut to_check: Vec<(String, Lit, Lit)> = Vec::new();
    for (name, lit) in golden.outputs() {
        match dut_outputs.get(name.as_str()) {
            Some(&d) => to_check.push((name.clone(), *lit, d)),
            None => {
                return EquivalenceResult {
                    verdict: Verdict::InterfaceMismatch(format!("output `{name}` missing")),
                    proven: 0,
                    total,
                    bdd_nodes: bdd.node_count(),
                }
            }
        }
    }
    for latch in golden.latches() {
        match dut_next.get(latch.name.as_str()) {
            Some(&d) => to_check.push((format!("next({})", latch.name), latch.d, d)),
            None => {
                return EquivalenceResult {
                    verdict: Verdict::InterfaceMismatch(format!(
                        "state bit `{}` missing",
                        latch.name
                    )),
                    proven: 0,
                    total,
                    bdd_nodes: bdd.node_count(),
                }
            }
        }
    }

    let mut proven = 0usize;
    for (name, g_lit, d_lit) in to_check {
        let Some(g) = lit_bdd(&golden_table, &mut bdd, g_lit) else {
            return abort(&bdd, proven);
        };
        let Some(d) = lit_bdd(&dut_table, &mut bdd, d_lit) else {
            return abort(&bdd, proven);
        };
        let Some(diff) = bdd.xor(g, d) else {
            return abort(&bdd, proven);
        };
        if diff != BddRef::FALSE {
            let assignment = bdd
                .satisfying_assignment(diff)
                .expect("non-false BDD is satisfiable")
                .into_iter()
                .map(|(var, value)| (var_name[var as usize].to_string(), value))
                .collect();
            return EquivalenceResult {
                verdict: Verdict::Inequivalent(Counterexample {
                    signal: name,
                    assignment,
                }),
                proven,
                total,
                bdd_nodes: bdd.node_count(),
            };
        }
        proven += 1;
    }
    EquivalenceResult {
        verdict: Verdict::Equivalent,
        proven,
        total,
        bdd_nodes: bdd.node_count(),
    }
}

fn split_bit(name: &str) -> (&str, u32) {
    match name.rfind('[') {
        Some(open) => {
            let bit = name[open + 1..name.len() - 1].parse().unwrap_or(0);
            (&name[..open], bit)
        }
        None => (name, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipforge_hdl::{designs, parse};
    use chipforge_netlist::CellFunction;
    use chipforge_pdk::{LibraryKind, StdCellLibrary, TechnologyNode};
    use chipforge_synth::{synthesize, SynthOptions};

    fn lib() -> StdCellLibrary {
        StdCellLibrary::generate(TechnologyNode::N130, LibraryKind::Open)
    }

    #[test]
    fn synthesized_suite_is_formally_equivalent() {
        let lib = lib();
        for design in designs::suite() {
            let module = design.elaborate().unwrap();
            let netlist = synthesize(&module, &lib, &SynthOptions::default())
                .unwrap()
                .netlist;
            let result = check_equivalence(&module, &netlist, 2_000_000);
            match result.verdict {
                Verdict::Equivalent => {
                    assert_eq!(result.proven, result.total, "{}", design.name());
                }
                // Multipliers are BDD-hostile; abort is acceptable there.
                Verdict::Aborted => {
                    assert!(
                        design.name().starts_with("mul") || design.name().starts_with("fir"),
                        "{} aborted unexpectedly",
                        design.name()
                    );
                }
                other => panic!("{}: {other:?}", design.name()),
            }
        }
    }

    #[test]
    fn detects_a_wrong_gate_with_counterexample() {
        let module = parse("module m() { input a; input b; output y; assign y = a & b; }").unwrap();
        let mut bad = Netlist::new("m");
        let a = bad.add_input("a[0]");
        let b = bad.add_input("b[0]");
        let y = bad.add_net("y");
        bad.add_cell("u", CellFunction::Or2, "OR2_X1", &[a, b], y)
            .unwrap();
        bad.mark_output("y[0]", y).unwrap();
        let result = check_equivalence(&module, &bad, 100_000);
        match result.verdict {
            Verdict::Inequivalent(cex) => {
                assert_eq!(cex.signal, "y[0]");
                // AND and OR differ exactly when inputs differ: the
                // counterexample must set exactly one of a/b.
                let ones = cex.assignment.iter().filter(|(_, v)| *v).count();
                assert_eq!(ones, 1, "{:?}", cex.assignment);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn interface_mismatch_is_reported() {
        let module = parse("module m() { input a; output y; assign y = a; }").unwrap();
        let mut incomplete = Netlist::new("m");
        let a = incomplete.add_input("a[0]");
        let w = incomplete.add_net("w");
        incomplete
            .add_cell("u", CellFunction::Buf, "BUF_X1", &[a], w)
            .unwrap();
        incomplete.mark_output("z[0]", w).unwrap();
        let result = check_equivalence(&module, &incomplete, 100_000);
        assert!(matches!(result.verdict, Verdict::InterfaceMismatch(_)));
    }

    #[test]
    fn tiny_budget_aborts_gracefully() {
        let module = designs::alu(8).elaborate().unwrap();
        let lib = lib();
        let netlist = synthesize(&module, &lib, &SynthOptions::default())
            .unwrap()
            .netlist;
        let result = check_equivalence(&module, &netlist, 50);
        assert_eq!(result.verdict, Verdict::Aborted);
        assert!(result.bdd_nodes <= 50);
    }

    #[test]
    fn sequential_equivalence_covers_next_state() {
        // A counter with a deliberately broken next-state: off by an
        // enable inversion.
        let good = designs::counter(4).elaborate().unwrap();
        let lib = lib();
        let netlist = synthesize(&good, &lib, &SynthOptions::default())
            .unwrap()
            .netlist;
        let ok = check_equivalence(&good, &netlist, 500_000);
        assert_eq!(ok.verdict, Verdict::Equivalent);
        assert_eq!(ok.total, 4 /* outputs */ + 4 /* states */);

        let broken = parse(
            "module counter4() { input rst; input en; output [3:0] count; reg [3:0] count; \
             always { if (rst) { count <= 0; } else if (!en) { count <= count + 1; } } }",
        )
        .unwrap();
        let bad = check_equivalence(&broken, &netlist, 500_000);
        assert!(matches!(bad.verdict, Verdict::Inequivalent(_)));
    }
}
