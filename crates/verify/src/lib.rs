//! # chipforge-verify
//!
//! BDD-based formal equivalence checking.
//!
//! The paper's cost model (experiment E4) shows verification consuming
//! 50–60% of a modern design budget — so an enablement platform without a
//! verification substrate would miss the largest slice of the work. This
//! crate provides:
//!
//! * [`Bdd`] — a reduced ordered binary decision diagram package with
//!   unique and computed tables and a node budget (graceful `Aborted`
//!   instead of memory blow-up on BDD-hostile functions like multipliers);
//! * [`netlist_to_aig`] — semantic conversion of a mapped gate-level
//!   netlist back into an and-inverter graph;
//! * [`check_equivalence`] — complete combinational + next-state
//!   equivalence between an elaborated RTL module and a mapped netlist,
//!   with counterexample extraction on mismatch.
//!
//! Sequential designs are checked as their combinational unrollings: the
//! flow preserves the state encoding (one latch per RTL register bit, same
//! names), so proving every primary output *and* every next-state function
//! equivalent is a complete proof, not a bounded one.
//!
//! ## Example
//!
//! ```
//! use chipforge_hdl::designs;
//! use chipforge_pdk::{LibraryKind, StdCellLibrary, TechnologyNode};
//! use chipforge_synth::{synthesize, SynthOptions};
//! use chipforge_verify::{check_equivalence, Verdict};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let module = designs::counter(8).elaborate()?;
//! let lib = StdCellLibrary::generate(TechnologyNode::N130, LibraryKind::Open);
//! let netlist = synthesize(&module, &lib, &SynthOptions::default())?.netlist;
//! let result = check_equivalence(&module, &netlist, 100_000);
//! assert!(matches!(result.verdict, Verdict::Equivalent));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bdd;
mod convert;
mod equiv;

pub use bdd::{Bdd, BddRef};
pub use convert::netlist_to_aig;
pub use equiv::{check_equivalence, Counterexample, EquivalenceResult, Verdict};
