//! Technology-node selection for a research project: PPA vs. cost vs.
//! access barriers (Sec. III-C).
//!
//! Runs the same FIR filter through the flow at several nodes and joins
//! the silicon results with the economic models, reproducing the trade-off
//! a university group faces when picking a technology.
//!
//! Run with `cargo run --example node_selection --release`.

use chipforge::econ::cost::DesignCostModel;
use chipforge::econ::mpw::MpwPricing;
use chipforge::flow::{run_flow, FlowConfig, OptimizationProfile};
use chipforge::hdl::designs;
use chipforge::pdk::{Pdk, TechnologyNode};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let design = designs::fir4(8);
    let costs = DesignCostModel::reference();
    let mpw = MpwPricing::reference();

    println!(
        "{:<7} {:>9} {:>10} {:>9} {:>10} {:>12} {:>10} {:>9}",
        "node", "area um2", "fmax MHz", "power uW", "seat EUR", "design M$", "admin wk", "open?"
    );
    for node in [
        TechnologyNode::N180,
        TechnologyNode::N130,
        TechnologyNode::N65,
        TechnologyNode::N28,
        TechnologyNode::N16,
        TechnologyNode::N7,
    ] {
        let profile = if node.has_open_pdk() {
            OptimizationProfile::open()
        } else {
            OptimizationProfile::commercial()
        };
        let config = FlowConfig::new(node, profile).with_clock_mhz(100.0);
        let outcome = run_flow(design.source(), &config)?;
        let pdk = if node.has_open_pdk() {
            Pdk::open(node)
        } else {
            Pdk::commercial(node)
        };
        println!(
            "{:<7} {:>9.1} {:>10.1} {:>9.2} {:>10.0} {:>12.0} {:>10.1} {:>9}",
            node.to_string(),
            outcome.report.ppa.cell_area_um2,
            outcome.report.ppa.fmax_mhz,
            outcome.report.ppa.power_uw,
            mpw.seat_cost_eur(node, 2.0),
            costs.total_musd(node),
            pdk.access_lead_time_weeks(),
            if node.has_open_pdk() { "yes" } else { "no" },
        );
    }
    println!(
        "\nReading: silicon improves monotonically with the node, but seat cost,\n\
         full design cost and administrative lead time explode — the reason the\n\
         paper recommends open nodes for education and enablement services for\n\
         advanced research (Recommendation 8)."
    );
    Ok(())
}
