//! The prototype-first workflow the paper recommends for education:
//! FPGA in the morning, formally-verified ASIC netlist in the afternoon.
//!
//! 1. Map the design onto an iCE40-class education board (minutes, €49);
//! 2. run the full ASIC flow at 130 nm;
//! 3. formally prove the mapped netlist equivalent to the RTL with the
//!    BDD engine — the verification step that dominates real design cost.
//!
//! Run with `cargo run --example prototype_first --release`.

use chipforge::flow::{run_flow, FlowConfig, OptimizationProfile};
use chipforge::fpga::{map_to_luts, FpgaDevice};
use chipforge::hdl::designs;
use chipforge::pdk::TechnologyNode;
use chipforge::synth::lower::lower_to_aig;
use chipforge::verify::{check_equivalence, Verdict};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let design = designs::uart_tx();
    let module = design.elaborate()?;

    // --- morning: FPGA prototype ---
    let mapping = map_to_luts(&lower_to_aig(&module), 4);
    let board = FpgaDevice::education_board();
    let proto = board.prototype(&mapping);
    println!("== FPGA prototype ({}) ==", proto.device);
    println!(
        "  {} LUTs ({:.1}% of device), {} FFs, depth {}",
        proto.luts_used,
        proto.lut_utilization * 100.0,
        proto.ffs_used,
        mapping.depth()
    );
    println!(
        "  est. fmax {:.0} MHz, board {:.0} EUR, hardware in {:.1} h",
        proto.fmax_mhz, proto.board_cost_eur, proto.time_to_hardware_hours
    );

    // --- afternoon: ASIC implementation ---
    let config =
        FlowConfig::new(TechnologyNode::N130, OptimizationProfile::open()).with_clock_mhz(100.0);
    let asic = run_flow(design.source(), &config)?;
    println!("\n== ASIC implementation ==");
    print!("{}", asic.report);

    // --- formal signoff: BDD equivalence RTL vs mapped netlist ---
    let ec = check_equivalence(&module, &asic.netlist, 1_000_000);
    println!("\n== formal equivalence ==");
    match &ec.verdict {
        Verdict::Equivalent => println!(
            "  PROVEN: {}/{} output and next-state functions equal ({} BDD nodes)",
            ec.proven, ec.total, ec.bdd_nodes
        ),
        other => println!("  verdict: {other:?} ({}/{} proven)", ec.proven, ec.total),
    }
    println!(
        "\nSame RTL, three guarantees: hardware today (FPGA), silicon-ready\n\
         GDSII ({} bytes), and a formal proof they implement the same design.",
        asic.gds.len()
    );
    Ok(())
}
