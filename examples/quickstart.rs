//! Quickstart: take an 8-bit counter from ForgeHDL source to GDSII.
//!
//! Run with `cargo run --example quickstart`.

use chipforge::flow::{run_flow, FlowConfig, OptimizationProfile};
use chipforge::hdl::{parse, Simulator};
use chipforge::pdk::TechnologyNode;
use std::error::Error;

const COUNTER: &str = "
module counter() {
    input rst;
    input en;
    output [7:0] count;
    reg [7:0] count;
    always {
        if (rst) { count <= 0; }
        else if (en) { count <= count + 1; }
    }
}";

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Parse and simulate the RTL.
    let module = parse(COUNTER)?;
    let mut sim = Simulator::new(&module);
    sim.set("rst", 0);
    sim.set("en", 1);
    sim.run(10);
    println!(
        "RTL simulation: count = {} after 10 cycles",
        sim.get("count")
    );

    // 2. Run the full RTL-to-GDSII flow on the open 130 nm PDK.
    let config =
        FlowConfig::new(TechnologyNode::N130, OptimizationProfile::open()).with_clock_mhz(50.0);
    let outcome = run_flow(COUNTER, &config)?;

    // 3. Inspect the report.
    println!("\n{}", outcome.report);
    println!(
        "gates per RTL line: {:.1} (the paper's Sec. III-B quotes 5-20)",
        outcome.report.gates_per_rtl_line()
    );
    println!("GDSII stream: {} bytes", outcome.gds.len());

    // 4. Write the GDSII next to the binary if desired.
    std::fs::write("counter.gds", &outcome.gds)?;
    println!("wrote counter.gds");
    Ok(())
}
