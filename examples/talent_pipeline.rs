//! The European chip-design talent funnel and the effect of the paper's
//! Recommendations 1-3 (Sec. III-A).
//!
//! Run with `cargo run --example talent_pipeline`.

use chipforge::econ::workforce::{cumulative_gap, simulate, Interventions, PipelineConfig};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let config = PipelineConfig::europe_baseline();
    let years = 12;
    let seed = 7;

    let scenarios: Vec<(&str, Interventions)> = vec![
        ("baseline (status quo)", Interventions::none()),
        (
            "R1 school programs",
            Interventions {
                low_barrier_programs: true,
                ..Interventions::none()
            },
        ),
        (
            "R2 info campaigns",
            Interventions {
                information_campaigns: true,
                ..Interventions::none()
            },
        ),
        (
            "R3 coordinated funding",
            Interventions {
                coordinated_funding: true,
                ..Interventions::none()
            },
        ),
        ("R1+R2+R3 combined", Interventions::all()),
    ];

    println!("graduates entering the European chip industry per year:");
    print!("{:<24}", "scenario");
    for year in [0, 3, 6, 9, 11] {
        print!("  y{year:<6}");
    }
    println!("  cum. gap");
    for (name, levers) in &scenarios {
        let outcomes = simulate(&config, *levers, years, seed);
        print!("{name:<24}");
        for year in [0usize, 3, 6, 9, 11] {
            print!("  {:<7.0}", outcomes[year].graduates);
        }
        println!("  {:>8.0}", cumulative_gap(&outcomes));
    }

    let base = simulate(&config, Interventions::none(), years, seed);
    let all = simulate(&config, Interventions::all(), years, seed);
    println!(
        "\ndemand grows {:.0}% per year; the baseline leaves {:.0} positions unfilled\n\
         over {} years, the combined interventions {:.0} ({:.0}% of the gap closed).",
        config.demand_growth * 100.0,
        cumulative_gap(&base),
        years,
        cumulative_gap(&all),
        (1.0 - cumulative_gap(&all) / cumulative_gap(&base)) * 100.0
    );
    Ok(())
}
