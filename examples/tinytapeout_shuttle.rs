//! A TinyTapeout-style community shuttle: many tiny student designs share
//! one 130 nm MPW run.
//!
//! Demonstrates the beginner tier (Recommendation 8), the shuttle cost
//! amortization of Sec. III-C, and that every submitted design really goes
//! through the full flow to DRC-checked GDSII.
//!
//! Run with `cargo run --example tinytapeout_shuttle`.

use chipforge::cloud::ShuttleSchedule;
use chipforge::econ::mpw::MpwPricing;
use chipforge::hdl::designs;
use chipforge::pdk::TechnologyNode;
use chipforge::{EnablementHub, Tier};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let hub = EnablementHub::new();

    // Eight student projects of the kind TinyTapeout attracts.
    let submissions = vec![
        designs::counter(8),
        designs::pwm(8),
        designs::lfsr(8),
        designs::gray_encoder(8),
        designs::traffic_light(),
        designs::shift_register(16),
        designs::popcount(8),
        designs::alu(8),
    ];

    println!(
        "== running {} designs through the beginner flow ==",
        submissions.len()
    );
    let mut total_area_um2 = 0.0;
    for design in &submissions {
        let report = hub.run(design.source(), Tier::Beginner)?;
        total_area_um2 += report.flow.ppa.core_area_um2;
        println!(
            "  {:<12} {:>5} cells  {:>9.1} um2  fmax {:>7.1} MHz  DRC {}",
            design.name(),
            report.flow.ppa.cells,
            report.flow.ppa.core_area_um2,
            report.flow.ppa.fmax_mhz,
            report.flow.ppa.drc_violations
        );
    }

    // Shuttle economics: quarterly departures, 16 seats, 130 nm masks.
    let pricing = MpwPricing::reference();
    let node = TechnologyNode::N130;
    let shuttle = ShuttleSchedule::new(13.0, 16, 26.0, pricing.mask_set_eur(node));
    // Students submit over the first ten weeks of a semester.
    let submit_weeks: Vec<f64> = (0..submissions.len()).map(|i| i as f64 * 1.3).collect();
    let outcome = shuttle.run(&submit_weeks, total_area_um2 * 1e-6);

    println!("\n== shuttle economics ({node}) ==");
    println!("  shuttle runs used:      {}", outcome.runs_used);
    println!(
        "  mean cost per design:   {:>10.0} EUR",
        outcome.mean_cost_per_seat()
    );
    println!(
        "  dedicated mask set:     {:>10.0} EUR",
        pricing.mask_set_eur(node)
    );
    println!(
        "  amortization factor:    {:>10.1}x",
        pricing.mask_set_eur(node) / outcome.mean_cost_per_seat()
    );
    println!(
        "  mean time to silicon:   {:>10.1} weeks (a 12-week course ends first: {:.0}% of designs late)",
        outcome.mean_latency_weeks(),
        outcome.fraction_exceeding(12.0) * 100.0
    );
    Ok(())
}
