//! Centralized cloud enablement hub vs. per-university tool setups
//! (Recommendation 7).
//!
//! Simulates twelve university groups submitting flow jobs over a year,
//! served either by their own locally-maintained EDA installations or by a
//! shared cloud hub, and prints the turnaround/setup comparison.
//!
//! Run with `cargo run --example university_cloud`.

use chipforge::cloud::WorkloadSpec;
use chipforge::pdk::TechnologyNode;
use chipforge::EnablementHub;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let hub = EnablementHub::new();

    // First: what does it even cost to become able to run a flow?
    println!("== availability vs. enablement (Sec. III-D) ==");
    for node in [
        TechnologyNode::N130,
        TechnologyNode::N28,
        TechnologyNode::N7,
    ] {
        let cmp = hub.enablement_comparison(node);
        println!(
            "  {:>5}: admin {:>4.0} wk | from scratch {:>5.0} h ({} items) | template {:>4.0} h ({} items) | {:.1}x less effort",
            node.to_string(),
            cmp.from_scratch.availability_weeks,
            cmp.from_scratch.hours,
            cmp.from_scratch.items,
            cmp.with_template.hours,
            cmp.with_template.items,
            cmp.effort_reduction()
        );
    }

    // Then: queueing behaviour of local vs central operation.
    println!("\n== 12 universities, 40 jobs each, one year ==");
    let spec = WorkloadSpec::new(12, 40, 24.0 * 9.0, 2_025);
    for servers in [6, 12, 24] {
        let (local, central) = hub.adoption_scenarios(&spec, servers);
        println!("  hub with {servers:>2} servers:");
        println!(
            "    local : mean turnaround {:>7.1} h, p95 {:>7.1} h, setup {:>7.0} h total",
            local.mean_turnaround_h, local.p95_turnaround_h, local.setup_hours_total
        );
        println!(
            "    hub   : mean turnaround {:>7.1} h, p95 {:>7.1} h, setup {:>7.0} h total, {:.0}% utilized",
            central.mean_turnaround_h,
            central.p95_turnaround_h,
            central.setup_hours_total,
            central.utilization * 100.0
        );
    }
    println!(
        "\nOne shared enablement effort replaces {} local ones — the paper's\nRecommendation 7 in numbers.",
        spec.universities
    );
    Ok(())
}
