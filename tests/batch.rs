//! End-to-end batch execution: a classroom-sized job queue on a real
//! worker pool, with fault isolation, resubmission caching and the JSON
//! execution report.

use chipforge::exec::{BatchEngine, EngineConfig, Fault, JobSpec, JobStatus};
use chipforge::flow::OptimizationProfile;
use chipforge::hdl::designs;
use chipforge::pdk::TechnologyNode;
use std::path::PathBuf;
use std::process::Command;
use std::time::Duration;

fn classroom_jobs() -> Vec<JobSpec> {
    [
        designs::counter(8),
        designs::counter(16),
        designs::gray_encoder(8),
        designs::popcount(8),
        designs::lfsr(8),
        designs::pwm(8),
        designs::traffic_light(),
        designs::shift_register(16),
    ]
    .into_iter()
    .enumerate()
    .map(|(i, design)| {
        JobSpec::new(
            design.name(),
            design.source(),
            TechnologyNode::N130,
            OptimizationProfile::quick(),
        )
        .with_seed(i as u64 + 1)
    })
    .collect()
}

#[test]
fn eight_jobs_across_four_workers_all_succeed() {
    let engine = BatchEngine::new(EngineConfig::with_workers(4));
    let batch = engine.run_batch(classroom_jobs());
    assert_eq!(batch.results.len(), 8);
    assert!(batch.results.iter().all(|r| r.status.is_success()));
    assert_eq!(batch.report.totals.succeeded, 8);
    // Every worker reported in; ids are 0..4.
    assert_eq!(batch.report.workers.len(), 4);
    assert!(batch.report.workers.iter().any(|w| w.jobs_run > 0));
}

#[test]
fn resubmitting_the_same_batch_is_mostly_cache_hits() {
    let engine = BatchEngine::new(EngineConfig::with_workers(4));
    let first = engine.run_batch(classroom_jobs());
    assert!(first.results.iter().all(|r| !r.cache_hit));
    let second = engine.run_batch(classroom_jobs());
    assert!(second.results.iter().all(|r| r.cache_hit));
    let stats = engine.cache().stats();
    // 8 misses (first run) + 8 hits (second run) = 50% lifetime rate;
    // the resubmitted batch itself is 100% > 90% hits.
    let resubmission_hit_rate =
        second.results.iter().filter(|r| r.cache_hit).count() as f64 / second.results.len() as f64;
    assert!(resubmission_hit_rate > 0.9);
    assert_eq!(stats.hits, 8);
    assert_eq!(stats.misses, 8);
    // Identical artifacts either way.
    assert_eq!(first.deterministic_digest(), second.deterministic_digest());
}

#[test]
fn faulty_jobs_are_isolated_from_the_rest_of_the_batch() {
    let engine = BatchEngine::new(EngineConfig {
        workers: 4,
        job_timeout: Duration::from_millis(250),
        max_retries: 1,
        retry_backoff: Duration::from_millis(1),
        ..EngineConfig::default()
    });
    let mut jobs = classroom_jobs();
    jobs[2] = jobs[2].clone().with_fault(Fault::Panic);
    jobs[5] = jobs[5].clone().with_fault(Fault::Hang(10_000));
    let batch = engine.run_batch(jobs);
    assert_eq!(batch.results[2].status, JobStatus::Failed);
    assert_eq!(batch.results[2].attempts, 2, "one retry after the panic");
    assert_eq!(batch.results[5].status, JobStatus::TimedOut);
    for (i, result) in batch.results.iter().enumerate() {
        if i != 2 && i != 5 {
            assert!(result.status.is_success(), "job {i} must be unaffected");
        }
    }
    assert_eq!(batch.report.totals.failed, 1);
    assert_eq!(batch.report.totals.timed_out, 1);
    assert_eq!(batch.report.totals.succeeded, 6);
}

#[test]
fn lru_evictions_surface_in_the_json_report() {
    // A 2-artifact cache over 8 distinct jobs must evict 6 times; the
    // count is part of the serialized execution report.
    let engine = BatchEngine::new(EngineConfig {
        workers: 1,
        cache_capacity: 2,
        ..EngineConfig::default()
    });
    let batch = engine.run_batch(classroom_jobs());
    assert_eq!(batch.report.cache.evictions, 6);
    assert_eq!(batch.report.cache.entries, 2);
    let parsed = serde::json::parse(&batch.report.to_json()).expect("report is valid JSON");
    let evictions = parsed
        .get("cache")
        .get("evictions")
        .as_u64()
        .expect("evictions field present in JSON");
    assert_eq!(evictions, batch.report.cache.evictions);
}

#[test]
fn json_report_carries_stage_times_and_worker_utilization() {
    let engine = BatchEngine::new(EngineConfig::with_workers(2));
    let batch = engine.run_batch(classroom_jobs());
    let json = batch.report.to_json();
    let parsed = serde::json::parse(&json).expect("report is valid JSON");
    let jobs = parsed.get("jobs").seq().expect("jobs array");
    assert_eq!(jobs.len(), 8);
    let stages = jobs[0].get("stages").seq().expect("stage array");
    assert!(!stages.is_empty(), "computed jobs carry stage timings");
    let steps: Vec<&str> = stages
        .iter()
        .filter_map(|s| s.get("step").as_str())
        .collect();
    assert!(steps.contains(&"synthesize"), "steps: {steps:?}");
    assert!(stages.iter().all(|s| s.get("wall_ms").as_f64().is_some()));
    let workers = parsed.get("workers").seq().expect("workers array");
    assert_eq!(workers.len(), 2);
    for worker in workers {
        let utilization = worker.get("utilization").as_f64().expect("utilization");
        assert!((0.0..=1.0).contains(&utilization));
    }
    assert!(parsed.get("totals").get("makespan_ms").as_f64().is_some());
    assert!(parsed.get("cache").get("hits").as_u64().is_some());
}

// ---------------------------------------------------------------------------
// CLI exit-code contract: 0 success, 1 job failures under --strict,
// 2 config/manifest error, 3 batch cut short (failure budget / breaker).
// ---------------------------------------------------------------------------

fn forge() -> Command {
    Command::new(env!("CARGO_BIN_EXE_forge"))
}

fn temp_file(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("chipforge-batch-{}-{name}", std::process::id()));
    std::fs::write(&path, contents).expect("write temp file");
    path
}

#[test]
fn clean_batch_exits_zero() {
    let manifest = temp_file(
        "ok.json",
        r#"{"jobs": [{"design": "counter8", "profile": "quick"}]}"#,
    );
    let output = forge()
        .args(["batch", manifest.to_str().unwrap(), "--workers", "1"])
        .output()
        .expect("forge batch executes");
    std::fs::remove_file(&manifest).ok();
    assert_eq!(
        output.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
}

#[test]
fn strict_job_failure_exits_one() {
    let manifest = temp_file(
        "strict.json",
        r#"{"jobs": [
            {"design": "counter8", "profile": "quick"},
            {"design": "gray8", "profile": "quick", "fault": "panic"}
        ]}"#,
    );
    let output = forge()
        .args([
            "batch",
            manifest.to_str().unwrap(),
            "--workers",
            "1",
            "--retries",
            "0",
            "--strict",
        ])
        .output()
        .expect("forge batch executes");
    std::fs::remove_file(&manifest).ok();
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("did not succeed"),
        "stderr names the failing jobs: {stderr}"
    );
}

#[test]
fn config_errors_exit_two() {
    // Manifest without a top-level `jobs` array.
    let manifest = temp_file("bad.json", r#"{"not_jobs": []}"#);
    let output = forge()
        .args(["batch", manifest.to_str().unwrap()])
        .output()
        .expect("forge batch executes");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("jobs"),
        "stderr explains the shape: {stderr}"
    );

    // Unknown flag.
    let output = forge()
        .args(["batch", manifest.to_str().unwrap(), "--no-such-flag"])
        .output()
        .expect("forge batch executes");
    assert_eq!(output.status.code(), Some(2));

    // Invalid admission knob.
    let output = forge()
        .args([
            "batch",
            manifest.to_str().unwrap(),
            "--breaker-threshold",
            "0",
        ])
        .output()
        .expect("forge batch executes");
    std::fs::remove_file(&manifest).ok();
    assert_eq!(output.status.code(), Some(2));
}

#[test]
fn missing_or_garbage_manifests_exit_two() {
    // Nonexistent manifest path: a clean config error, not a panic.
    let output = forge()
        .args(["batch", "/nonexistent/chipforge-missing.json"])
        .output()
        .expect("forge batch executes");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("cannot read"),
        "stderr names the unreadable file: {stderr}"
    );

    // Unparseable JSON.
    let garbage = temp_file("garbage.json", "this is not json {{{");
    let output = forge()
        .args(["batch", garbage.to_str().unwrap()])
        .output()
        .expect("forge batch executes");
    std::fs::remove_file(&garbage).ok();
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("bad manifest"),
        "stderr names the parse failure: {stderr}"
    );
}

#[test]
fn unknown_design_in_manifest_exits_two_at_parse_time() {
    // The typo is in job 2: resolution must happen while the manifest
    // is parsed, so job 1 never runs and the exit is a config error
    // naming the unknown design — not a late job failure.
    let manifest = temp_file(
        "typo.json",
        r#"{"jobs": [
            {"design": "counter8", "profile": "quick"},
            {"design": "countr8", "profile": "quick"}
        ]}"#,
    );
    let output = forge()
        .args(["batch", manifest.to_str().unwrap(), "--workers", "1"])
        .output()
        .expect("forge batch executes");
    std::fs::remove_file(&manifest).ok();
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("unknown design `countr8`"),
        "stderr names the typo: {stderr}"
    );
    assert!(
        stderr.contains("job 2"),
        "stderr names the offending entry: {stderr}"
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        !stdout.contains("counter8"),
        "no job may run before the manifest validates: {stdout}"
    );

    // A malformed `gen:` spec is the same parse-time config error.
    let manifest = temp_file(
        "badspec.json",
        r#"{"jobs": [{"design": "gen:dsp/fir?width=999", "profile": "quick"}]}"#,
    );
    let output = forge()
        .args(["batch", manifest.to_str().unwrap()])
        .output()
        .expect("forge batch executes");
    std::fs::remove_file(&manifest).ok();
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("width"), "stderr names the knob: {stderr}");
}

#[test]
fn gen_specs_run_in_manifests_like_builtin_names() {
    let manifest = temp_file(
        "gen.json",
        r#"{"jobs": [
            {"design": "gen:cpu/ctrl?width=8&depth=2&seed=5", "profile": "quick"},
            {"design": "gen:crypto/round?width=8&rounds=2&seed=5", "profile": "quick", "clock_mhz": 200}
        ]}"#,
    );
    let output = forge()
        .args([
            "batch",
            manifest.to_str().unwrap(),
            "--workers",
            "1",
            "--strict",
        ])
        .output()
        .expect("forge batch executes");
    std::fs::remove_file(&manifest).ok();
    assert_eq!(
        output.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("gen_cpu_ctrl_w8_d2_u1_s5"),
        "generated module name appears in the report: {stdout}"
    );
}

#[test]
fn wrong_typed_manifest_fields_exit_two() {
    // A mistyped field must be a named error, never silently dropped
    // in favour of the default value.
    for (name, body) in [
        (
            "clock_mhz",
            r#"{"jobs": [{"design": "counter8", "clock_mhz": "fast"}]}"#,
        ),
        ("node", r#"{"jobs": [{"design": "counter8", "node": "x"}]}"#),
        ("seed", r#"{"jobs": [{"design": "counter8", "seed": [1]}]}"#),
        ("design", r#"{"jobs": [{"design": 42}]}"#),
    ] {
        let manifest = temp_file(&format!("typed-{name}.json"), body);
        let output = forge()
            .args(["batch", manifest.to_str().unwrap()])
            .output()
            .expect("forge batch executes");
        std::fs::remove_file(&manifest).ok();
        assert_eq!(output.status.code(), Some(2), "field `{name}`");
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains(name),
            "stderr names the offending field `{name}`: {stderr}"
        );
    }
}

#[test]
fn breaker_fast_fail_exits_three() {
    // One transient failure trips a threshold-1 breaker; the remaining
    // jobs fast-fail, which cuts the batch short (exit 3).
    let manifest = temp_file(
        "breaker.json",
        r#"{"jobs": [
            {"design": "counter8", "profile": "quick", "fault": "transient"},
            {"design": "gray8", "profile": "quick"},
            {"design": "lfsr8", "profile": "quick"}
        ]}"#,
    );
    let output = forge()
        .args([
            "batch",
            manifest.to_str().unwrap(),
            "--workers",
            "1",
            "--retries",
            "0",
            "--breaker-threshold",
            "1",
        ])
        .output()
        .expect("forge batch executes");
    std::fs::remove_file(&manifest).ok();
    assert_eq!(
        output.status.code(),
        Some(3),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("cut short"),
        "stderr explains the fast-fail: {stderr}"
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("circuit breaker open"),
        "per-job lines name the open breaker: {stdout}"
    );
}

#[test]
fn rejected_jobs_are_journaled_and_resume_composes_with_admission() {
    // Queue window = workers + max_queue = 1, so two of three jobs are
    // rejected at admission. A resumed run restores all three outcomes
    // from the journal instead of re-admitting (0 newly admitted).
    let manifest = temp_file(
        "resume.json",
        r#"{"jobs": [
            {"design": "counter8", "profile": "quick", "tier": "beginner"},
            {"design": "gray8", "profile": "quick"},
            {"design": "lfsr8", "profile": "quick"}
        ]}"#,
    );
    let journal = std::env::temp_dir().join(format!(
        "chipforge-batch-journal-{}.jsonl",
        std::process::id()
    ));
    let args = |journal_flag: &str| {
        vec![
            "batch".to_string(),
            manifest.to_str().unwrap().to_string(),
            "--workers".to_string(),
            "1".to_string(),
            "--max-queue".to_string(),
            "0".to_string(),
            journal_flag.to_string(),
            journal.to_str().unwrap().to_string(),
        ]
    };
    let first = forge()
        .args(args("--journal"))
        .output()
        .expect("forge batch executes");
    assert_eq!(
        first.status.code(),
        Some(0),
        "rejections alone are not strict failures: {}",
        String::from_utf8_lossy(&first.stderr)
    );
    let stdout = String::from_utf8_lossy(&first.stdout);
    assert!(
        stdout.contains("admit:  1 admitted, 2 rejected"),
        "admission summary line: {stdout}"
    );

    let second = forge()
        .args(args("--resume"))
        .output()
        .expect("forge batch executes");
    std::fs::remove_file(&manifest).ok();
    std::fs::remove_file(&journal).ok();
    assert_eq!(second.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&second.stdout);
    assert!(
        stdout.contains("admit:  0 admitted, 2 rejected"),
        "resume restores rejections instead of re-admitting: {stdout}"
    );
    assert!(
        stdout.contains("(resumed)"),
        "restored jobs tagged: {stdout}"
    );
}
