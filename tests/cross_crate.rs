//! Cross-crate consistency: the engines must agree with each other where
//! their models overlap.

use chipforge::flow::{run_flow, FlowConfig, OptimizationProfile};
use chipforge::hdl::designs;
use chipforge::pdk::{LibraryKind, Pdk, StdCellLibrary, TechnologyNode};
use chipforge::place::{place, PlacementOptions};
use chipforge::power::{estimate, PowerOptions};
use chipforge::route::{route, RouteOptions};
use chipforge::sta::{analyze, TimingOptions};
use chipforge::synth::{synthesize, SynthOptions};

fn open_lib() -> StdCellLibrary {
    StdCellLibrary::generate(TechnologyNode::N130, LibraryKind::Open)
}

#[test]
fn post_route_timing_is_never_faster_than_pre_route() {
    let lib = open_lib();
    for design in [designs::alu(8), designs::fir4(8)] {
        let module = design.elaborate().unwrap();
        let netlist = synthesize(&module, &lib, &SynthOptions::default())
            .unwrap()
            .netlist;
        let placement = place(&netlist, &lib, &PlacementOptions::default()).unwrap();
        let routing = route(&netlist, &placement, &lib, &RouteOptions::default()).unwrap();

        let pre = analyze(&netlist, &lib, &TimingOptions::new(1e6)).unwrap();
        let mut post_opts = TimingOptions::new(1e6);
        post_opts.net_wire_cap_ff = routing.wire_caps_ff(&lib);
        // Zero out the wireload fallback comparison by keeping defaults on
        // the pre-route side: pre-route uses a fanout wireload, post-route
        // real wire caps. Post-route with real (larger) caps must not be
        // optimistically faster than an analysis with *no* wire at all.
        let mut no_wire = TimingOptions::new(1e6);
        no_wire.wire_cap_per_fanout_ff = Some(0.0);
        let ideal = analyze(&netlist, &lib, &no_wire).unwrap();
        let post = analyze(&netlist, &lib, &post_opts).unwrap();
        assert!(
            post.min_period_ps >= ideal.min_period_ps,
            "{}: post-route {} ps faster than ideal {} ps",
            design.name(),
            post.min_period_ps,
            ideal.min_period_ps
        );
        let _ = pre;
    }
}

#[test]
fn flow_report_matches_direct_engine_results() {
    // The orchestrated flow must report the same cell count and flip-flop
    // count a manual pipeline produces.
    let design = designs::counter(8);
    let lib = open_lib();
    let module = design.elaborate().unwrap();
    let manual = synthesize(&module, &lib, &SynthOptions::default())
        .unwrap()
        .netlist;
    let config = FlowConfig::new(TechnologyNode::N130, OptimizationProfile::open());
    let outcome = run_flow(design.source(), &config).unwrap();
    assert_eq!(outcome.report.ppa.cells, manual.cell_count());
    assert_eq!(
        outcome.report.ppa.flip_flops,
        manual.stats().sequential_cells
    );
}

#[test]
fn power_grows_with_back_annotated_wires() {
    let lib = open_lib();
    let module = designs::alu(8).elaborate().unwrap();
    let netlist = synthesize(&module, &lib, &SynthOptions::default())
        .unwrap()
        .netlist;
    let placement = place(&netlist, &lib, &PlacementOptions::default()).unwrap();
    let routing = route(&netlist, &placement, &lib, &RouteOptions::default()).unwrap();
    let base = estimate(&netlist, &lib, &PowerOptions::new(100.0)).unwrap();
    let mut opts = PowerOptions::new(100.0);
    opts.net_wire_cap_ff = routing.wire_caps_ff(&lib);
    let routed = estimate(&netlist, &lib, &opts).unwrap();
    assert!(routed.switching_uw > base.switching_uw);
}

#[test]
fn commercial_library_dominates_open_cell_for_cell() {
    // Every class present in both libraries must be at least as good in
    // the commercial variant (area and delay at equal load).
    let pdk = Pdk::commercial(TechnologyNode::N28);
    let open = pdk.library(LibraryKind::Open);
    let comm = pdk.library(LibraryKind::Commercial);
    for cell in open.cells() {
        let Some(counterpart) = comm.cell(cell.name()) else {
            continue;
        };
        assert!(
            counterpart.area_um2() <= cell.area_um2() + 1e-12,
            "{}",
            cell.name()
        );
        assert!(
            counterpart.delay_ps(4.0) <= cell.delay_ps(4.0) + 1e-12,
            "{}",
            cell.name()
        );
    }
}

#[test]
fn area_reported_by_flow_matches_library_sum() {
    let lib = open_lib();
    let design = designs::pwm(8);
    let config = FlowConfig::new(TechnologyNode::N130, OptimizationProfile::open());
    let outcome = run_flow(design.source(), &config).unwrap();
    let manual: f64 = outcome
        .netlist
        .cells()
        .map(|c| lib.cell(c.lib_cell()).expect("known cell").area_um2())
        .sum();
    assert!((outcome.report.ppa.cell_area_um2 - manual).abs() < 1e-6);
}

#[test]
fn utilization_consistent_between_place_and_flow_report() {
    let design = designs::fir4(8);
    let config = FlowConfig::new(TechnologyNode::N130, OptimizationProfile::open());
    let outcome = run_flow(design.source(), &config).unwrap();
    let u = outcome.placement.utilization();
    // The flow's core area and cell area must reproduce the same ratio.
    let ratio = outcome.report.ppa.cell_area_um2 / outcome.report.ppa.core_area_um2;
    assert!((u - ratio).abs() < 1e-9);
}
