//! Reproducibility: identical seeds must give bit-identical results across
//! the whole platform — a requirement for reproducible benchmarking, which
//! the paper names as a key benefit of open infrastructure.

use chipforge::cloud::{simulate_hub, WorkloadSpec};
use chipforge::econ::workforce::{simulate, Interventions, PipelineConfig};
use chipforge::exec::{BatchEngine, EngineConfig, JobSpec};
use chipforge::flow::{run_flow, FlowConfig, OptimizationProfile};
use chipforge::hdl::designs;
use chipforge::layout::gds;
use chipforge::pdk::TechnologyNode;

#[test]
fn full_flow_is_bit_reproducible() {
    let design = designs::alu(8);
    let config = FlowConfig::new(TechnologyNode::N130, OptimizationProfile::open()).with_seed(42);
    let a = run_flow(design.source(), &config).unwrap();
    let b = run_flow(design.source(), &config).unwrap();
    assert_eq!(a.gds, b.gds, "GDSII streams must be byte-identical");
    assert_eq!(a.report.ppa, b.report.ppa);
    assert_eq!(a.placement, b.placement);
    assert_eq!(a.routing, b.routing);
}

#[test]
fn gds_output_has_no_timestamps() {
    // Regenerating the layout must not embed wall-clock time.
    let design = designs::counter(8);
    let config = FlowConfig::new(TechnologyNode::N130, OptimizationProfile::quick());
    let a = run_flow(design.source(), &config).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(20));
    let b = run_flow(design.source(), &config).unwrap();
    assert_eq!(a.gds, b.gds);
    // And the stream parses.
    gds::read_gds(&a.gds).unwrap();
}

#[test]
fn seed_changes_propagate_but_stay_functional() {
    let design = designs::counter(8);
    let base = FlowConfig::new(TechnologyNode::N130, OptimizationProfile::open());
    let a = run_flow(design.source(), &base).unwrap();
    let b = run_flow(design.source(), &base.clone().with_seed(1234)).unwrap();
    assert_ne!(a.placement, b.placement, "seed must alter placement");
    assert_eq!(
        a.report.ppa.cells, b.report.ppa.cells,
        "logic is unaffected"
    );
    assert_eq!(a.report.ppa.drc_violations, 0);
    assert_eq!(b.report.ppa.drc_violations, 0);
}

#[test]
fn simulations_are_seed_deterministic() {
    let spec = WorkloadSpec::new(5, 20, 24.0, 77);
    assert_eq!(
        simulate_hub(&spec, 4, 10.0, 1.0),
        simulate_hub(&spec, 4, 10.0, 1.0)
    );

    let config = PipelineConfig::europe_baseline();
    assert_eq!(
        simulate(&config, Interventions::all(), 8, 3),
        simulate(&config, Interventions::all(), 8, 3)
    );
}

#[test]
fn batch_results_are_identical_across_worker_counts() {
    // Scheduling order must never leak into artifacts: the same job list
    // gives byte-identical GDS and PPA whether it runs on 1, 2 or 8
    // workers, and whether artifacts are computed or served from cache.
    let jobs = || -> Vec<JobSpec> {
        [
            (designs::counter(8), 1u64),
            (designs::gray_encoder(8), 2),
            (designs::popcount(8), 3),
            (designs::counter(8), 4),
            (designs::lfsr(8), 5),
            (designs::counter(8), 1), // duplicate of job 0: cache hit
        ]
        .into_iter()
        .map(|(design, seed)| {
            JobSpec::new(
                design.name(),
                design.source(),
                TechnologyNode::N130,
                OptimizationProfile::quick(),
            )
            .with_seed(seed)
        })
        .collect()
    };
    let mut digests = Vec::new();
    let mut gds_streams = Vec::new();
    for workers in [1usize, 2, 8] {
        let engine = BatchEngine::new(EngineConfig::with_workers(workers));
        let batch = engine.run_batch(jobs());
        assert!(batch.results.iter().all(|r| r.status.is_success()));
        digests.push(batch.deterministic_digest());
        gds_streams.push(
            batch
                .results
                .iter()
                .map(|r| r.outcome.as_ref().expect("succeeded").gds.clone())
                .collect::<Vec<_>>(),
        );
        // A warm re-run of the same engine must not change outcomes.
        let warm = engine.run_batch(jobs());
        assert_eq!(warm.deterministic_digest(), digests[0], "warm cache run");
    }
    assert_eq!(digests[0], digests[1], "1 vs 2 workers");
    assert_eq!(digests[0], digests[2], "1 vs 8 workers");
    assert_eq!(gds_streams[0], gds_streams[1], "GDS bytes, 1 vs 2 workers");
    assert_eq!(gds_streams[0], gds_streams[2], "GDS bytes, 1 vs 8 workers");
}

#[test]
fn batch_results_are_identical_across_shard_counts() {
    // The sharded fabric must be invisible in the artifacts: the same
    // job list gives byte-identical canonical reports and GDS streams
    // across 1, 2 and 8 shards, for several workers-per-shard widths —
    // partitioning by cache key and work-stealing never leak into
    // outcomes.
    let jobs = || -> Vec<JobSpec> {
        [
            (designs::counter(8), 1u64),
            (designs::gray_encoder(8), 2),
            (designs::popcount(8), 3),
            (designs::counter(8), 4),
            (designs::lfsr(8), 5),
            (designs::counter(8), 1), // duplicate of job 0: cache hit
        ]
        .into_iter()
        .map(|(design, seed)| {
            JobSpec::new(
                design.name(),
                design.source(),
                TechnologyNode::N130,
                OptimizationProfile::quick(),
            )
            .with_seed(seed)
        })
        .collect()
    };
    let reference = BatchEngine::new(EngineConfig::with_shards(1, 1)).run_batch(jobs());
    assert!(reference.results.iter().all(|r| r.status.is_success()));
    let reference_gds: Vec<_> = reference
        .results
        .iter()
        .map(|r| r.outcome.as_ref().expect("succeeded").gds.clone())
        .collect();
    for (shards, workers) in [(1usize, 2usize), (1, 8), (2, 1), (2, 2), (8, 1), (8, 2)] {
        let engine = BatchEngine::new(EngineConfig::with_shards(shards, workers));
        let batch = engine.run_batch(jobs());
        assert!(batch.results.iter().all(|r| r.status.is_success()));
        assert_eq!(
            reference.canonical_report(),
            batch.canonical_report(),
            "canonical report diverged at {shards} shards x {workers} workers"
        );
        assert_eq!(
            reference.deterministic_digest(),
            batch.deterministic_digest(),
            "digest diverged at {shards} shards x {workers} workers"
        );
        let gds: Vec<_> = batch
            .results
            .iter()
            .map(|r| r.outcome.as_ref().expect("succeeded").gds.clone())
            .collect();
        assert_eq!(
            reference_gds, gds,
            "GDS bytes diverged at {shards} shards x {workers} workers"
        );
    }
}

#[test]
fn experiment_tables_are_stable() {
    // The harness output is part of the reproduction record; rendering the
    // pure-model experiments twice must give identical text.
    for id in ["e1", "e4", "e5", "e7", "e8", "e10", "e16", "e18"] {
        let a = chipforge_bench::run_experiment(id).unwrap();
        let b = chipforge_bench::run_experiment(id).unwrap();
        assert_eq!(a, b, "{id} not stable");
    }
}

#[test]
fn semester_smoke_is_bit_reproducible() {
    // E19 at smoke scale: a 10^3-student semester compiled to an
    // arrival trace and pushed through the admission DES twice with
    // the same seed must agree event-for-event — populations, per-tier
    // admission stats and turnaround percentiles included. The full
    // 10^5/10^6 tables run in CI release mode; this guards the same
    // determinism property on every `cargo test`.
    use chipforge::gen::semester::SemesterSpec;
    let run = || {
        let spec = SemesterSpec::tiered(1_000, 19);
        let servers = spec.recommended_servers(0.8);
        let trace = spec.arrival_trace();
        let result = spec.simulate(servers).expect("semester policy validates");
        (servers, trace, result)
    };
    let (servers_a, trace_a, result_a) = run();
    let (servers_b, trace_b, result_b) = run();
    assert_eq!(servers_a, servers_b);
    assert_eq!(trace_a, trace_b, "population compilation not stable");
    assert_eq!(result_a, result_b, "DES result not stable");
    // A different seed must actually move the population.
    let other = SemesterSpec::tiered(1_000, 20).arrival_trace();
    assert_ne!(trace_a, other, "seed does not propagate");
}
