//! End-to-end integration: every suite design through the complete
//! platform, with functional equivalence, GDSII round-trip and DRC checks.

use chipforge::flow::{run_flow, FlowConfig, OptimizationProfile};
use chipforge::hdl::designs;
use chipforge::layout::{drc, gds};
use chipforge::netlist::verilog;
use chipforge::pdk::{DesignRules, TechnologyNode};
use chipforge::synth::simulate_equivalent;
use chipforge::{EnablementHub, Tier};

#[test]
fn whole_suite_flows_to_clean_gds_at_130nm() {
    let config =
        FlowConfig::new(TechnologyNode::N130, OptimizationProfile::open()).with_clock_mhz(50.0);
    let rules = DesignRules::for_node(TechnologyNode::N130);
    for design in designs::suite() {
        let outcome =
            run_flow(design.source(), &config).unwrap_or_else(|e| panic!("{}: {e}", design.name()));
        // Functional equivalence RTL vs mapped netlist.
        let module = design.elaborate().expect("elaborates");
        assert!(
            simulate_equivalent(&module, &outcome.netlist, 48, 0xF00D),
            "{}: netlist diverges from RTL",
            design.name()
        );
        // Physical sanity.
        assert!(outcome.placement.is_legal(), "{}", design.name());
        assert_eq!(
            outcome.routing.overflowed_edges(),
            0,
            "{}: routing overflow",
            design.name()
        );
        // Layout round-trips through GDSII.
        let parsed = gds::read_gds(&outcome.gds).expect("GDS parses");
        assert_eq!(parsed.shape_count(), outcome.layout.shape_count());
        // DRC clean.
        let report = drc::check(&outcome.layout, &rules);
        assert!(
            report.is_clean(),
            "{}: {} DRC violations (first: {:?})",
            design.name(),
            report.violations.len(),
            report.violations.first()
        );
    }
}

#[test]
fn netlist_survives_verilog_round_trip_after_synthesis() {
    let config = FlowConfig::new(TechnologyNode::N130, OptimizationProfile::open());
    for design in [designs::alu(8), designs::fir4(8)] {
        let outcome = run_flow(design.source(), &config).expect("flows");
        let text = verilog::write_verilog(&outcome.netlist);
        let parsed = verilog::parse_verilog(&text).expect("parses back");
        parsed.validate().expect("valid");
        // Equivalent against the original RTL too.
        let module = design.elaborate().expect("elaborates");
        assert!(
            simulate_equivalent(&module, &parsed, 32, 99),
            "{}: verilog round trip broke equivalence",
            design.name()
        );
    }
}

#[test]
fn hub_serves_every_tier_with_consistent_envelopes() {
    let hub = EnablementHub::new();
    let design = designs::traffic_light();
    let mut last_onboarding = 0.0;
    for tier in Tier::ALL {
        let report = hub.run(design.source(), tier).expect("hub runs");
        assert!(report.onboarding_hours >= last_onboarding, "{tier}");
        last_onboarding = report.onboarding_hours;
        assert!(report.flow.ppa.drc_violations == 0, "{tier}: DRC dirty");
        assert!(report.flow.ppa.overflowed_edges == 0, "{tier}: overflow");
        assert!(!report.gds.is_empty());
    }
}

#[test]
fn flow_scales_to_a_bigger_design() {
    // A 16-bit ALU plus FIR is the biggest single block in the suite;
    // make sure the flow handles a wider multiplier too.
    let design = designs::multiplier(12);
    let config = FlowConfig::new(TechnologyNode::N130, OptimizationProfile::open());
    let outcome = run_flow(design.source(), &config).expect("flows");
    assert!(outcome.report.ppa.cells > 700, "12x12 multiplier is big");
    let module = design.elaborate().expect("elaborates");
    assert!(simulate_equivalent(&module, &outcome.netlist, 24, 5));
}

#[test]
fn layouts_are_drc_clean_at_every_node() {
    let design = designs::counter(8);
    for node in TechnologyNode::ALL {
        let profile = if node.has_open_pdk() {
            OptimizationProfile::quick()
        } else {
            OptimizationProfile::commercial()
        };
        let config = FlowConfig::new(node, profile);
        let outcome = run_flow(design.source(), &config).unwrap_or_else(|e| panic!("{node}: {e}"));
        assert_eq!(
            outcome.report.ppa.drc_violations, 0,
            "{node}: DRC violations in generated layout"
        );
    }
}

#[test]
fn cross_node_trends_hold_end_to_end() {
    // Scaling trends must survive the full flow, not just the models:
    // newer node -> smaller, faster, leakier (vs 130nm open).
    let design = designs::counter(16);
    let old = run_flow(
        design.source(),
        &FlowConfig::new(TechnologyNode::N130, OptimizationProfile::open()),
    )
    .expect("flows");
    let new = run_flow(
        design.source(),
        &FlowConfig::new(TechnologyNode::N7, OptimizationProfile::commercial()),
    )
    .expect("flows");
    assert!(new.report.ppa.cell_area_um2 < old.report.ppa.cell_area_um2 / 20.0);
    assert!(new.report.ppa.fmax_mhz > 2.0 * old.report.ppa.fmax_mhz);
    assert!(new.report.ppa.leakage_uw > old.report.ppa.leakage_uw);
}
