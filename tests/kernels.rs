//! End-to-end kernel selection through the `forge` binary: `--placer` /
//! `--router` flags on `forge run`, `placer`/`router` manifest fields on
//! `forge batch`, exit-2 diagnostics for unknown kernel names, and
//! per-stage observability spans naming the kernel that actually ran.

use chipforge::obs;
use std::path::PathBuf;
use std::process::Command;

fn forge() -> Command {
    Command::new(env!("CARGO_BIN_EXE_forge"))
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("chipforge-kernels-{}-{name}", std::process::id()))
}

/// Runs `forge run counter8` with the given kernel flags and returns the
/// (place, route) span details from the emitted trace.
fn traced_run(extra: &[&str]) -> (String, String) {
    let out = temp_path(&format!("run-{}.json", extra.join("-").replace("--", "")));
    let output = forge()
        .args(["run", "counter8", "--profile", "quick", "--trace"])
        .arg(&out)
        .args(extra)
        .output()
        .expect("forge run executes");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let text = std::fs::read_to_string(&out).expect("trace file written");
    std::fs::remove_file(&out).ok();
    let trace = obs::parse_chrome_json(&text).expect("valid Chrome trace JSON");
    let detail = |name: &str| {
        trace
            .spans
            .iter()
            .find(|s| s.category == "flow" && s.name == name)
            .unwrap_or_else(|| panic!("missing flow span `{name}`"))
            .detail
            .clone()
    };
    (detail("place"), detail("route"))
}

#[test]
fn run_spans_name_the_selected_kernels() {
    let (place, route) = traced_run(&["--placer", "analytic", "--router", "steiner"]);
    assert!(place.contains("analytic kernel"), "place detail: {place}");
    assert!(route.contains("steiner kernel"), "route detail: {route}");

    let (place, route) = traced_run(&[]);
    assert!(place.contains("anneal kernel"), "place detail: {place}");
    assert!(route.contains("maze kernel"), "route detail: {route}");
}

#[test]
fn unknown_kernel_names_exit_two_naming_the_flag() {
    let output = forge()
        .args(["run", "counter8", "--placer", "teleport"])
        .output()
        .expect("forge run executes");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("--placer"),
        "stderr names the flag: {stderr}"
    );
    assert!(
        stderr.contains("unknown placer `teleport`"),
        "stderr names the bad kernel: {stderr}"
    );
    assert!(
        stderr.contains("anneal") && stderr.contains("analytic"),
        "stderr lists the valid kernels: {stderr}"
    );

    let output = forge()
        .args(["run", "counter8", "--router", "carrier-pigeon"])
        .output()
        .expect("forge run executes");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("--router"),
        "stderr names the flag: {stderr}"
    );
    assert!(
        stderr.contains("maze") && stderr.contains("steiner"),
        "stderr lists the valid kernels: {stderr}"
    );
}

#[test]
fn manifest_kernel_fields_flow_through_batch() {
    let manifest = temp_path("kernels.json");
    std::fs::write(
        &manifest,
        r#"{"jobs": [
            {"design": "counter8", "profile": "quick",
             "placer": "analytic", "router": "steiner"},
            {"design": "gray8", "profile": "quick"}
        ]}"#,
    )
    .expect("write manifest");
    let output = forge()
        .args(["batch", manifest.to_str().unwrap(), "--workers", "1"])
        .output()
        .expect("forge batch executes");
    std::fs::remove_file(&manifest).ok();
    assert_eq!(
        output.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
}

#[test]
fn mixed_kernel_jobs_never_share_the_artifact_cache() {
    let manifest = temp_path("kernels-cache.json");
    std::fs::write(
        &manifest,
        r#"{"jobs": [
            {"design": "counter8", "profile": "quick",
             "placer": "analytic", "router": "steiner"},
            {"design": "counter8", "profile": "quick"}
        ]}"#,
    )
    .expect("write manifest");
    let output = forge()
        .args(["batch", manifest.to_str().unwrap(), "--workers", "1"])
        .output()
        .expect("forge batch executes");
    std::fs::remove_file(&manifest).ok();
    assert_eq!(
        output.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    // Same source, different kernels: the whole-flow artifact cache
    // must treat them as distinct work — a hit here would hand one
    // kernel's GDS to the other kernel's job.
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("0 hits / 2 misses"),
        "mixed-kernel jobs aliased in the artifact cache: {stdout}"
    );
}

#[test]
fn manifest_unknown_kernel_exits_two_at_parse_time() {
    // The bad kernel is in job 2: validation must reject the manifest
    // before any job runs, naming the entry and the field.
    let manifest = temp_path("bad-kernel.json");
    std::fs::write(
        &manifest,
        r#"{"jobs": [
            {"design": "counter8", "profile": "quick"},
            {"design": "gray8", "profile": "quick", "router": "teleport"}
        ]}"#,
    )
    .expect("write manifest");
    let output = forge()
        .args(["batch", manifest.to_str().unwrap(), "--workers", "1"])
        .output()
        .expect("forge batch executes");
    std::fs::remove_file(&manifest).ok();
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("job 2"), "stderr names the entry: {stderr}");
    assert!(
        stderr.contains("`router`") && stderr.contains("unknown router `teleport`"),
        "stderr names the field and value: {stderr}"
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        !stdout.contains("counter8"),
        "no job may run before the manifest validates: {stdout}"
    );

    // Wrong JSON type is the same parse-time config error.
    let manifest = temp_path("typed-kernel.json");
    std::fs::write(
        &manifest,
        r#"{"jobs": [{"design": "counter8", "placer": 7}]}"#,
    )
    .expect("write manifest");
    let output = forge()
        .args(["batch", manifest.to_str().unwrap()])
        .output()
        .expect("forge batch executes");
    std::fs::remove_file(&manifest).ok();
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("`placer` must be a string"),
        "stderr explains the type: {stderr}"
    );
}
