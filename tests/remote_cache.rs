//! The remote stage-cache tier end to end, over real sockets: a live
//! hub, seeded flaky proxies, a mid-batch blackhole and a dead port.
//! The invariant under test everywhere: a remote tier — however broken
//! — may cost time and counters, but never job outcomes. Canonical
//! reports must stay byte-identical to a run that never had a remote.

use chipforge::exec::{BatchEngine, EngineConfig, JobSpec, RemoteCacheConfig, StageCacheMode};
use chipforge::flow::OptimizationProfile;
use chipforge::hdl::designs;
use chipforge::pdk::TechnologyNode;
use chipforge::resil::{Backoff, FlakyProxy, NetFaultPlan};
use chipforge::serve::{Client, Hub, HubConfig, KeyRegistry, Server};
use std::time::Duration;

/// A small sweep sharing a front end: one design, two clocks per
/// profile, so the stage cache has real prefix reuse to offer.
fn sweep() -> Vec<JobSpec> {
    let design = designs::counter(8);
    let mut jobs = Vec::new();
    for profile in [OptimizationProfile::quick(), OptimizationProfile::open()] {
        for clock in [50.0, 100.0] {
            jobs.push(
                JobSpec::new(
                    format!("{}-{}-{clock}", design.name(), profile.name),
                    design.source(),
                    TechnologyNode::N130,
                    profile.clone(),
                )
                .with_clock_mhz(clock)
                .with_seed(7),
            );
        }
    }
    jobs
}

/// Remote config tuned for tests: tight timeout, zero backoff, so
/// fault paths are exercised without sleeping through real delays.
fn fast_remote(url: String) -> RemoteCacheConfig {
    RemoteCacheConfig {
        timeout: Duration::from_millis(250),
        backoff: Backoff {
            base: Duration::ZERO,
            max: Duration::ZERO,
            seed: 0,
        },
        ..RemoteCacheConfig::new(url)
    }
}

fn engine(remote: Option<RemoteCacheConfig>) -> BatchEngine {
    BatchEngine::new(EngineConfig {
        stage_cache: StageCacheMode::Memory,
        remote_cache: remote,
        ..EngineConfig::with_workers(1)
    })
}

fn start_hub() -> Server {
    let hub = Hub::new(HubConfig {
        workers: 1,
        ..HubConfig::default()
    })
    .expect("hub starts");
    Server::start(hub, KeyRegistry::demo(), "127.0.0.1:0").expect("server binds")
}

#[test]
fn blackholed_remote_mid_batch_never_fails_a_job() {
    let truth = engine(None).run_batch(sweep()).canonical_report();

    let server = start_hub();
    // First 4 connections relay cleanly, then the network goes dark
    // mid-batch: every later request hangs until the client timeout.
    let proxy = FlakyProxy::start(
        server.addr(),
        NetFaultPlan::disabled().with_blackhole_after(4),
    )
    .expect("proxy binds");
    let batch = engine(Some(fast_remote(format!("http://{}", proxy.addr())))).run_batch(sweep());
    drop(proxy);
    server.shutdown();

    assert_eq!(batch.report.totals.failed, 0, "no job may fail");
    assert_eq!(batch.report.totals.timed_out, 0, "no job may time out");
    assert_eq!(
        batch.canonical_report(),
        truth,
        "blackholed remote changed job outcomes"
    );
    let remote = batch.report.remote_cache.expect("remote tier recorded");
    assert!(remote.timeouts > 0, "blackhole must surface as timeouts");
    assert!(remote.trips >= 1, "the breaker must trip open");
    assert!(
        remote.breaker_open > 0,
        "later operations must fast-fail instead of waiting out timeouts"
    );
}

#[test]
fn dead_port_and_fully_corrupting_network_change_nothing() {
    let truth = engine(None).run_batch(sweep()).canonical_report();

    // A remote that refuses every connection: instant failures, breaker
    // trips, batch completes locally.
    let batch = engine(Some(fast_remote("http://127.0.0.1:1".into()))).run_batch(sweep());
    assert_eq!(batch.report.totals.failed, 0);
    assert_eq!(
        batch.canonical_report(),
        truth,
        "dead remote changed outcomes"
    );
    let remote = batch.report.remote_cache.expect("remote tier recorded");
    assert!(remote.hits == 0 && remote.stores == 0);
    assert!(
        remote.trips >= 1,
        "refused connections must trip the breaker"
    );

    // A hub warmed over a clean network, then fetched through a proxy
    // corrupting 100% of relayed bodies: every fetch fails its
    // checksum and is treated as a miss — never deserialized.
    let server = start_hub();
    let _ = engine(Some(fast_remote(format!("http://{}", server.addr())))).run_batch(sweep());
    let proxy = FlakyProxy::start(
        server.addr(),
        NetFaultPlan::disabled().with_corrupt_rate(1.0),
    )
    .expect("proxy binds");
    let batch = engine(Some(fast_remote(format!("http://{}", proxy.addr())))).run_batch(sweep());
    drop(proxy);
    server.shutdown();

    assert_eq!(batch.report.totals.failed, 0);
    assert_eq!(
        batch.canonical_report(),
        truth,
        "corrupted remote changed outcomes"
    );
    let remote = batch.report.remote_cache.expect("remote tier recorded");
    assert!(remote.corrupt > 0, "tampered bodies must be counted");
    assert_eq!(remote.hits, 0, "no tampered body may verify");
}

#[test]
fn a_second_engine_restores_the_sweep_from_the_hub() {
    let server = start_hub();
    let url = format!("http://{}", server.addr());

    let first = engine(Some(fast_remote(url.clone()))).run_batch(sweep());
    let first_remote = first.report.remote_cache.expect("remote recorded");
    assert!(first_remote.stores > 0, "cold engine must publish");

    // A fresh engine with empty local tiers: everything it restores
    // comes over the wire, checksum-verified, and outcomes match.
    let second = engine(Some(fast_remote(url))).run_batch(sweep());
    server.shutdown();
    let second_remote = second.report.remote_cache.expect("remote recorded");
    assert!(
        second_remote.hits > 0,
        "warm engine must fetch from the hub"
    );
    assert_eq!(second_remote.corrupt, 0);
    assert_eq!(first.canonical_report(), second.canonical_report());
    let stages = second.report.stage_cache.expect("stage cache recorded");
    assert!(
        stages.full_restores > 0,
        "at least some jobs must be fully restored from remote snapshots"
    );
}

#[test]
fn client_retries_and_names_the_unreachable_hub() {
    // Nothing listens on port 1: every attempt fails at connect. The
    // named error is what `forge client` maps to exit code 2.
    let client = Client::new("127.0.0.1:1", "demo-beginner").with_retries(2, 0);
    let error = client
        .request("GET", "/healthz", None)
        .expect_err("nothing listens");
    assert!(
        error.starts_with("hub unreachable: 127.0.0.1:1 after 3 attempt(s)"),
        "named error names the hub and the attempts: {error}"
    );

    // The retry wrapper changes nothing for a healthy hub.
    let server = start_hub();
    let ok = Client::new(server.addr().to_string(), "demo-beginner")
        .with_retries(3, 1)
        .request("GET", "/healthz", None)
        .expect("healthy hub answers");
    assert_eq!(ok.status, 200);
    server.shutdown();
}
