//! Cross-crate resilience guarantees: checkpoint/resume determinism
//! under interruption, fault-plan behavior on a classroom-sized batch,
//! journal and cache-corruption robustness (property-based), and the
//! failure-containment policies.

use chipforge::exec::{BatchEngine, EngineConfig, JobSpec, JobStatus, ResilienceOptions};
use chipforge::flow::OptimizationProfile;
use chipforge::hdl::designs;
use chipforge::pdk::TechnologyNode;
use chipforge::resil::{
    FaultPlan, Journal, JournalRecord, JournalWriter, ResiliencePolicy, ShardFaultPlan,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::time::Duration;

/// 24 distinct quick-profile jobs over the built-in design suite.
fn chaos_jobs() -> Vec<JobSpec> {
    let suite = designs::suite();
    (0..24usize)
        .map(|i| {
            let design = &suite[i % suite.len()];
            JobSpec::new(
                format!("{}-{i:02}", design.name()),
                design.source(),
                TechnologyNode::N130,
                OptimizationProfile::quick(),
            )
            .with_seed(500 + i as u64)
        })
        .collect()
}

fn fast_config(workers: usize) -> EngineConfig {
    EngineConfig {
        workers,
        retry_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(5),
        ..EngineConfig::default()
    }
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "chipforge-resilience-{}-{tag}.jsonl",
        std::process::id()
    ))
}

/// A 20% transient plan with quarantine + degradation — the reference
/// chaos configuration from the E15 experiment.
fn chaos_options(
    journal: Option<JournalWriter>,
    resume: Option<Journal>,
    halt_after: Option<usize>,
) -> ResilienceOptions {
    ResilienceOptions {
        plan: FaultPlan::transient(42, 0.2),
        policy: ResiliencePolicy::resilient(2),
        journal,
        resume,
        halt_after,
        ..ResilienceOptions::default()
    }
}

/// The tentpole guarantee: a run killed after `k` journaled jobs and
/// resumed from its journal reproduces the uninterrupted run's
/// canonical report byte-for-byte — for k = 0 (nothing saved), a
/// mid-batch kill, and k = all (everything restored).
#[test]
fn resume_after_interruption_is_byte_identical() {
    let clean = BatchEngine::new(fast_config(2))
        .run_batch_resilient(chaos_jobs(), chaos_options(None, None, None));
    assert!(!clean.halted);
    assert_eq!(clean.results.len(), 24);

    for (tag, kill_after) in [("k0", 0usize), ("kmid", 12), ("kall", 24)] {
        let path = temp_path(tag);
        let writer = JournalWriter::create(&path).expect("create journal");
        let halted = BatchEngine::new(fast_config(2)).run_batch_resilient(
            chaos_jobs(),
            chaos_options(Some(writer), None, Some(kill_after)),
        );
        if kill_after < 24 {
            assert!(halted.halted, "kill at {kill_after} halts the run");
        }
        let journal = Journal::load(&path).expect("load journal");
        assert!(
            journal.records.len() >= kill_after,
            "at least {kill_after} records on disk (got {})",
            journal.records.len()
        );
        let resumed = BatchEngine::new(fast_config(2))
            .run_batch_resilient(chaos_jobs(), chaos_options(None, Some(journal), None));
        assert_eq!(
            clean.canonical_report(),
            resumed.canonical_report(),
            "resume after kill-at-{kill_after} diverged from the clean run"
        );
        if kill_after == 24 {
            assert!(
                resumed.results.iter().all(|r| r.resumed),
                "a complete journal restores every job"
            );
        }
        let _ = std::fs::remove_file(&path);
    }
}

/// Shard-kill chaos on top of the transient-fault chaos plan: killing
/// every shard of a 4-shard fabric mid-batch loses no job, duplicates
/// no job, and leaves the canonical report byte-identical to a clean
/// unsharded run — the supervisor's restart + re-dispatch is exercised
/// under the same workload as E15.
#[test]
fn shard_kills_lose_nothing_and_keep_reports_identical() {
    let clean = BatchEngine::new(fast_config(2))
        .run_batch_resilient(chaos_jobs(), chaos_options(None, None, None));
    assert_eq!(clean.results.len(), 24);

    let sharded = EngineConfig {
        shards: 4,
        ..fast_config(2)
    };
    let killed = BatchEngine::new(sharded).run_batch_resilient(
        chaos_jobs(),
        ResilienceOptions {
            shard_plan: ShardFaultPlan::kill(7, 1.0).with_after_jobs(1),
            ..chaos_options(None, None, None)
        },
    );
    assert_eq!(killed.results.len(), 24, "no job was lost");
    let mut indices: Vec<usize> = killed.results.iter().map(|r| r.index).collect();
    indices.sort_unstable();
    indices.dedup();
    assert_eq!(indices.len(), 24, "no job ran twice");
    let restarts: u64 = killed.report.shards.iter().map(|s| s.restarts).sum();
    let quarantines: u64 = killed.report.shards.iter().map(|s| s.quarantines).sum();
    assert!(restarts >= 1, "at least one shard was restarted");
    assert_eq!(quarantines, restarts, "every quarantine led to a restart");
    assert_eq!(
        clean.canonical_report(),
        killed.canonical_report(),
        "shard kills leaked into the canonical report"
    );
}

/// A 20% transient plan over 24 jobs loses nothing: every job reaches a
/// terminal state, and only jobs whose planned faults outlast the
/// attempt limit are quarantined — exactly the ones the plan predicts.
#[test]
fn chaos_batch_loses_no_jobs_and_quarantines_predictably() {
    let plan = FaultPlan::transient(42, 0.2);
    let policy = ResiliencePolicy::resilient(2).without_degrade();
    let batch = BatchEngine::new(fast_config(4)).run_batch_resilient(
        chaos_jobs(),
        ResilienceOptions {
            plan,
            policy,
            ..ResilienceOptions::default()
        },
    );
    assert_eq!(batch.results.len(), 24, "no job was lost");

    // Predict per-job outcomes straight from the plan: a job is
    // quarantined iff both allowed attempts draw a transient fault.
    for (result, spec) in batch.results.iter().zip(chaos_jobs()) {
        let key = chipforge::exec::CacheKey::of(&spec).to_string();
        let doomed =
            (1..=2).all(|attempt| plan.disruption(&key, attempt).transient_stage.is_some());
        let expected = if doomed {
            JobStatus::Quarantined
        } else {
            JobStatus::Succeeded
        };
        assert_eq!(
            result.status, expected,
            "job {} diverged from the plan's prediction",
            result.name
        );
    }
}

/// Degraded retries surface in the per-job results and the report
/// totals, and carry the relaxed profile's fingerprint (an artifact is
/// still produced).
#[test]
fn degraded_jobs_are_reported_as_such() {
    use chipforge::exec::Fault;
    let batch = BatchEngine::new(fast_config(1)).run_batch_resilient(
        vec![chaos_jobs().remove(0).with_fault(Fault::Transient(3))],
        ResilienceOptions {
            policy: ResiliencePolicy::resilient(2),
            ..ResilienceOptions::default()
        },
    );
    let job = &batch.results[0];
    assert_eq!(job.status, JobStatus::Succeeded);
    assert!(job.degraded, "the relaxed retry is flagged");
    assert!(job.outcome.is_some(), "a degraded job still ships a GDS");
    assert_eq!(batch.report.totals.degraded, 1);
    let canonical = batch.canonical_report();
    assert!(
        canonical.contains("\"degraded\": true"),
        "degradation is part of the canonical report: {canonical}"
    );
}

/// The failure budget fail-fasts: once exceeded, jobs not yet started
/// are cancelled rather than executed.
#[test]
fn failure_budget_fail_fasts_the_batch() {
    use chipforge::exec::Fault;
    let mut jobs = chaos_jobs();
    jobs.truncate(4);
    jobs[0] = jobs[0].clone().with_fault(Fault::Transient(9));
    let batch = BatchEngine::new(fast_config(1)).run_batch_resilient(
        jobs,
        ResilienceOptions {
            policy: ResiliencePolicy::resilient(1)
                .without_degrade()
                .with_failure_budget(0),
            ..ResilienceOptions::default()
        },
    );
    assert_eq!(batch.results[0].status, JobStatus::Quarantined);
    assert!(
        batch.results[1..]
            .iter()
            .all(|r| r.status == JobStatus::Cancelled),
        "everything after the blown budget is cancelled"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Journal round-trip: any record survives write + parse exactly,
    /// and truncating the file after k records yields exactly the first
    /// k records back (the append-only, fsync-per-record contract).
    #[test]
    fn journal_round_trips_any_prefix(
        statuses in proptest::collection::vec(0u8..4, 1..12),
        k in 0usize..12,
    ) {
        let path = temp_path(&format!("prop-{}-{k}", statuses.len()));
        let mut writer = JournalWriter::create(&path).expect("create");
        let records: Vec<JournalRecord> = statuses.iter().enumerate().map(|(i, s)| JournalRecord {
            seq: i as u64,
            index: i,
            key: format!("{i:032x}"),
            name: format!("job-{i}"),
            status: ["succeeded", "failed", "timed-out", "quarantined"][*s as usize].to_string(),
            attempts: u32::from(*s) + 1,
            degraded: *s == 0,
            error: if *s == 0 { None } else { Some(format!("err {s}")) },
            ppa: None,
            gds_fnv: Some(u64::from(*s) * 17),
        }).collect();
        for record in &records {
            writer.append(record).expect("append");
        }
        drop(writer);

        // Full read-back.
        let full = Journal::load(&path).expect("load");
        prop_assert_eq!(&full.records, &records);
        prop_assert_eq!(full.skipped_lines, 0);

        // Truncate to the first k lines: exactly k records survive.
        let text = std::fs::read_to_string(&path).expect("read");
        let k = k.min(records.len());
        let prefix: String = text.lines().take(k).map(|l| format!("{l}\n")).collect();
        let truncated = Journal::parse(&prefix);
        prop_assert_eq!(&truncated.records[..], &records[..k]);
        let _ = std::fs::remove_file(&path);
    }

    /// Every single-byte flip in a journal line is caught by the CRC:
    /// the record is skipped, never silently misparsed.
    #[test]
    fn journal_detects_any_single_byte_flip(flip_pos in 0usize..200, xor in 1u8..=255) {
        let path = temp_path(&format!("flip-{flip_pos}-{xor}"));
        let mut writer = JournalWriter::create(&path).expect("create");
        writer.append(&JournalRecord {
            seq: 0,
            index: 0,
            key: "k".repeat(32),
            name: "victim".into(),
            status: "succeeded".into(),
            attempts: 1,
            degraded: false,
            error: None,
            ppa: None,
            gds_fnv: Some(99),
        }).expect("append");
        drop(writer);
        let mut bytes = std::fs::read(&path).expect("read");
        prop_assert!(bytes.len() > 1, "journal file has content");
        let pos = flip_pos % (bytes.len() - 1); // keep the trailing newline
        bytes[pos] ^= xor;
        let corrupted = Journal::parse(&String::from_utf8_lossy(&bytes));
        // FNV-1a's per-step bijectivity means a single flipped byte
        // always changes the line CRC, so the record can never survive
        // verification (a flip that injects a newline may split the
        // line in two — both halves must still be rejected).
        prop_assert!(
            corrupted.records.is_empty(),
            "flipped byte at {} went undetected",
            pos
        );
        prop_assert!(corrupted.skipped_lines >= 1);
        let _ = std::fs::remove_file(&path);
    }
}
