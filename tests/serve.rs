//! Live hub integration: every test here talks to a real `Server` over
//! real TCP sockets — submit, poll, `/metrics`, journal recovery across
//! a restart, and a malformed-input storm that must never take down the
//! accept loop.

use chipforge::flow::{FlowStep, StageArtifact, StageSnapshot};
use chipforge::resil::frame_checksummed;
use chipforge::serve::{Client, Hub, HubConfig, KeyRegistry, Server};
use proptest::prelude::*;
use serde::Value;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(120);

fn temp_path(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("chipforge-serve-{}-{name}", std::process::id()));
    std::fs::remove_file(&path).ok();
    path
}

fn start_hub(config: HubConfig) -> Server {
    let hub = Hub::new(config).expect("hub starts");
    Server::start(hub, KeyRegistry::demo(), "127.0.0.1:0").expect("server binds")
}

fn quick_job(design: &str, seed: u64) -> String {
    format!(r#"{{"design": "{design}", "profile": "quick", "seed": {seed}}}"#)
}

/// Writes raw bytes to the server and returns whatever comes back.
/// Shutting down the write half signals EOF, so truncated requests
/// terminate instead of waiting out the read timeout.
fn raw_send(addr: &str, bytes: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("socket");
    let _ = stream.write_all(bytes);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut response = Vec::new();
    let _ = stream.read_to_end(&mut response);
    response
}

fn metrics_u64(metrics: &Value, group: &str, field: &str) -> u64 {
    metrics
        .get(group)
        .get(field)
        .as_u64()
        .unwrap_or_else(|| panic!("metrics has {group}.{field}: {metrics:?}"))
}

#[test]
fn submit_poll_and_metrics_over_real_sockets() {
    let server = start_hub(HubConfig::default());
    let addr = server.addr().to_string();
    let client = Client::new(&addr, "demo-beginner");

    let designs = ["counter8", "gray8", "popcount8", "lfsr8"];
    let ids: Vec<u64> = designs
        .iter()
        .enumerate()
        .map(|(i, design)| {
            client
                .submit(&quick_job(design, 100 + i as u64))
                .expect("transport")
                .expect("admitted")
        })
        .collect();
    for (&id, design) in ids.iter().zip(&designs) {
        let status = client.wait(id, WAIT).expect("finishes");
        assert_eq!(status.get("state").as_str(), Some("succeeded"), "{design}");
        assert_eq!(status.get("name").as_str(), Some(*design));
        // Progress streaming: the finished flow-stage spans are
        // reported back, in flow order.
        let stages = status.get("stages").seq().expect("stages seq");
        let names: Vec<&str> = stages
            .iter()
            .filter_map(|s| s.get("stage").as_str())
            .collect();
        assert!(names.contains(&"synthesize"), "stages: {names:?}");
        assert!(names.contains(&"export"), "stages: {names:?}");
        assert!(status
            .get("ppa")
            .get("cells")
            .as_u64()
            .is_some_and(|c| c > 0));
    }

    // Live gauges: job counters, admission queue depths and the shared
    // stage cache all surface in /metrics.
    let metrics = client.metrics().expect("metrics");
    assert_eq!(metrics_u64(&metrics, "jobs", "succeeded"), 4);
    assert_eq!(metrics_u64(&metrics, "jobs", "completed"), 4);
    assert_eq!(metrics_u64(&metrics, "jobs", "queued"), 0);
    let depths = metrics
        .get("admission")
        .get("queue_depth")
        .seq()
        .expect("depths");
    assert_eq!(depths.len(), 3);
    assert!(depths.iter().all(|d| d.as_u64() == Some(0)));
    assert!(metrics_u64(&metrics, "stage_cache", "misses") > 0);
    assert_eq!(metrics_u64(&metrics, "artifact_cache", "entries"), 4);
    // Execution-fabric gauges: no timed-out attempt threads are
    // dangling, and the (default single) hub shard ran every job.
    assert_eq!(metrics_u64(&metrics, "exec", "detached_threads"), 0);
    let shards = metrics.get("exec").get("shards").seq().expect("shards");
    assert_eq!(shards.len(), 1, "default hub has one shard");
    assert!(shards[0].get("jobs_run").as_u64().is_some_and(|j| j >= 4));

    // Resubmitting an identical job is an artifact-cache hit, visible
    // both on the job and in the gauges.
    let id = client
        .submit(&quick_job("counter8", 100))
        .expect("transport")
        .expect("admitted");
    let status = client.wait(id, WAIT).expect("finishes");
    assert_eq!(status.get("state").as_str(), Some("succeeded"));
    assert_eq!(status.get("cache_hit"), &Value::Bool(true));
    let metrics = client.metrics().expect("metrics");
    assert!(metrics_u64(&metrics, "artifact_cache", "hits") >= 1);

    server.shutdown();
}

/// Timed-out jobs leave their attempt thread behind; the hub-wide
/// detached-threads gauge and the per-shard failure counters must both
/// surface in `/metrics`. Driven against the hub directly because the
/// wire format cannot inject a hanging fault.
#[test]
fn detached_threads_and_shard_gauges_surface_in_metrics() {
    use chipforge::cloud::AccessTier;
    use chipforge::exec::{Fault, JobSpec};
    use chipforge::hdl::designs;
    use chipforge::serve::Identity;

    let hub = Hub::new(HubConfig {
        workers: 2,
        shards: 2,
        job_timeout: Duration::from_millis(150),
        ..HubConfig::default()
    })
    .expect("hub starts");
    let who = Identity {
        university: "metrics-uni".into(),
        tier: AccessTier::Beginner,
    };
    let design = designs::counter(8);
    let hung = JobSpec::new(
        design.name(),
        design.source(),
        chipforge::pdk::TechnologyNode::N130,
        chipforge::flow::OptimizationProfile::quick(),
    )
    .with_seed(71)
    .with_fault(Fault::Hang(8_000));
    let ok = JobSpec::new(
        design.name(),
        design.source(),
        chipforge::pdk::TechnologyNode::N130,
        chipforge::flow::OptimizationProfile::quick(),
    )
    .with_seed(72);
    let ids: Vec<u64> = [hung, ok]
        .into_iter()
        .map(|spec| match hub.submit(&who, spec) {
            chipforge::serve::SubmitOutcome::Accepted(id) => id,
            other => panic!("admitted, got {other:?}"),
        })
        .collect();
    let deadline = std::time::Instant::now() + WAIT;
    for id in &ids {
        loop {
            let status = hub.job_status(&who, *id).expect("job exists");
            let state = status.get("state").as_str().expect("state").to_string();
            if state != "queued" && state != "running" {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "job {id} stuck");
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    let metrics = hub.metrics();
    // The hung job's attempt thread outlives its timed-out job and is
    // still sleeping right now, so the gauge reads at least 1.
    assert!(
        metrics_u64(&metrics, "exec", "detached_threads") >= 1,
        "hung attempt thread not gauged: {metrics:?}"
    );
    let shards = metrics.get("exec").get("shards").seq().expect("shards");
    assert_eq!(shards.len(), 2, "one entry per hub shard");
    let total = |field: &str| -> u64 { shards.iter().filter_map(|s| s.get(field).as_u64()).sum() };
    assert_eq!(total("jobs_run"), 2, "both jobs counted: {metrics:?}");
    assert!(total("failed") >= 1, "the timed-out job counted as failed");
    hub.shutdown();
}

#[test]
fn unknown_api_keys_and_foreign_tenants_get_nothing() {
    let server = start_hub(HubConfig::default());
    let addr = server.addr().to_string();

    // Wrong key: 401 on every authenticated endpoint.
    let intruder = Client::new(&addr, "stolen-key");
    let refusal = intruder
        .submit(&quick_job("counter8", 1))
        .expect("transport")
        .expect_err("refused");
    assert_eq!(refusal.status, 401);
    let response = intruder
        .request("GET", "/api/v1/jobs", None)
        .expect("transport");
    assert_eq!(response.status, 401);

    // Missing key header entirely.
    let response = raw_send(&addr, b"GET /api/v1/jobs HTTP/1.1\r\n\r\n");
    assert!(String::from_utf8_lossy(&response).starts_with("HTTP/1.1 401"));

    // A valid key still cannot see another tenant's job.
    let owner = Client::new(&addr, "demo-beginner");
    let id = owner
        .submit(&quick_job("counter8", 2))
        .expect("transport")
        .expect("admitted");
    owner.wait(id, WAIT).expect("finishes");
    let peer = Client::new(&addr, "demo-advanced");
    let response = peer
        .request("GET", &format!("/api/v1/jobs/{id}"), None)
        .expect("transport");
    assert_eq!(
        response.status, 404,
        "foreign job indistinguishable from absent"
    );

    server.shutdown();
}

#[test]
fn journal_survives_a_server_restart() {
    let journal = temp_path("restart.jsonl");
    let config = HubConfig {
        journal: Some(journal.clone()),
        ..HubConfig::default()
    };

    let server = start_hub(config.clone());
    let addr = server.addr().to_string();
    let client = Client::new(&addr, "demo-intermediate");
    for seed in [31, 32] {
        let id = client
            .submit(&quick_job("counter8", seed))
            .expect("transport")
            .expect("admitted");
        let status = client.wait(id, WAIT).expect("finishes");
        assert_eq!(status.get("state").as_str(), Some("succeeded"));
    }
    server.shutdown();

    // A fresh server on the same journal re-lists both completed jobs
    // — no duplicates, no losses — and fresh ids never collide.
    let server = start_hub(config);
    let addr = server.addr().to_string();
    let client = Client::new(&addr, "demo-intermediate");
    let listing = client.list().expect("list");
    let jobs = listing.get("jobs").seq().expect("jobs seq");
    assert_eq!(jobs.len(), 2, "exactly the completed jobs: {listing:?}");
    let mut recovered_ids = Vec::new();
    for job in jobs {
        assert_eq!(job.get("state").as_str(), Some("succeeded"));
        assert_eq!(job.get("recovered"), &Value::Bool(true));
        assert!(job.get("ppa").get("cells").as_u64().is_some_and(|c| c > 0));
        recovered_ids.push(job.get("id").as_u64().expect("id"));
    }
    let metrics = client.metrics().expect("metrics");
    assert_eq!(metrics_u64(&metrics, "jobs", "recovered"), 2);
    let fresh = client
        .submit(&quick_job("gray8", 33))
        .expect("transport")
        .expect("admitted");
    assert!(
        !recovered_ids.contains(&fresh),
        "fresh id {fresh} collides with recovered {recovered_ids:?}"
    );
    client.wait(fresh, WAIT).expect("finishes");

    server.shutdown();
    std::fs::remove_file(&journal).ok();
}

/// One framed `/cache/stage` body: an Export snapshot, checksummed the
/// way `RemoteCache::publish` frames it.
fn framed_snapshot() -> String {
    let snapshot = StageSnapshot {
        step: FlowStep::Export,
        detail: "integration test artifact".to_string(),
        artifact: StageArtifact::Export { gds: vec![1, 2, 3] },
    };
    frame_checksummed(&serde::json::to_string(&snapshot))
}

fn put_cache(addr: &str, key: &str, body: &str) -> String {
    let raw = format!(
        "PUT /cache/stage/{key} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    );
    String::from_utf8_lossy(&raw_send(addr, raw.as_bytes())).into_owned()
}

fn status_of(response: &str) -> u16 {
    response
        .split(' ')
        .nth(1)
        .and_then(|code| code.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response {response:?}"))
}

#[test]
fn cache_protocol_round_trips_and_rejects_bad_entries() {
    let server = start_hub(HubConfig::default());
    let addr = server.addr().to_string();
    let key = "00000000000000000000000000000abc";
    let framed = framed_snapshot();

    // Probe/fetch before the entry exists: clean 404s.
    let probe = raw_send(
        &addr,
        format!("HEAD /cache/stage/{key} HTTP/1.1\r\n\r\n").as_bytes(),
    );
    assert_eq!(status_of(&String::from_utf8_lossy(&probe)), 404);
    let fetch = raw_send(
        &addr,
        format!("GET /cache/stage/{key} HTTP/1.1\r\n\r\n").as_bytes(),
    );
    assert_eq!(status_of(&String::from_utf8_lossy(&fetch)), 404);

    // Store, then read the exact framed bytes back.
    assert_eq!(status_of(&put_cache(&addr, key, &framed)), 200);
    let fetch = String::from_utf8_lossy(&raw_send(
        &addr,
        format!("GET /cache/stage/{key} HTTP/1.1\r\n\r\n").as_bytes(),
    ))
    .into_owned();
    assert_eq!(status_of(&fetch), 200);
    let body = fetch.split("\r\n\r\n").nth(1).expect("body");
    assert_eq!(body, framed, "served body must be the framed snapshot");
    let probe = raw_send(
        &addr,
        format!("HEAD /cache/stage/{key} HTTP/1.1\r\n\r\n").as_bytes(),
    );
    assert_eq!(status_of(&String::from_utf8_lossy(&probe)), 200);

    // Rejections: tampered digest, unframed JSON, empty body, non-hex
    // key, unsupported method.
    let mut tampered = framed.clone();
    tampered.replace_range(0..1, "X");
    assert_eq!(status_of(&put_cache(&addr, key, &tampered)), 400);
    assert_eq!(
        status_of(&put_cache(&addr, key, "{\"step\":\"export\"}")),
        400
    );
    assert_eq!(
        status_of(&put_cache(&addr, key, "")),
        400,
        "zero content-length"
    );
    assert_eq!(status_of(&put_cache(&addr, "not-hex", &framed)), 404);
    let posted = raw_send(
        &addr,
        format!("POST /cache/stage/{key} HTTP/1.1\r\n\r\n").as_bytes(),
    );
    assert_eq!(status_of(&String::from_utf8_lossy(&posted)), 405);

    // Protocol counters surface in /metrics.
    let metrics = Client::new(&addr, "demo-beginner")
        .metrics()
        .expect("metrics");
    assert_eq!(metrics_u64(&metrics, "cache_protocol", "puts"), 4);
    assert_eq!(metrics_u64(&metrics, "cache_protocol", "put_rejects"), 3);
    assert_eq!(metrics_u64(&metrics, "cache_protocol", "gets"), 2);
    assert_eq!(metrics_u64(&metrics, "cache_protocol", "get_hits"), 1);
    assert_eq!(metrics_u64(&metrics, "cache_protocol", "heads"), 2);
    assert_eq!(metrics_u64(&metrics, "cache_protocol", "head_hits"), 1);

    server.shutdown();
}

#[test]
fn cache_protocol_is_a_409_without_a_stage_cache() {
    let server = start_hub(HubConfig {
        stage_cache: false,
        ..HubConfig::default()
    });
    let addr = server.addr().to_string();
    for request in [
        "GET /cache/stage/0 HTTP/1.1\r\n\r\n".to_string(),
        "HEAD /cache/stage/0 HTTP/1.1\r\n\r\n".to_string(),
    ] {
        let response = String::from_utf8_lossy(&raw_send(&addr, request.as_bytes())).into_owned();
        assert_eq!(status_of(&response), 409, "{request:?}");
    }
    assert_eq!(status_of(&put_cache(&addr, "0", &framed_snapshot())), 409);
    server.shutdown();
}

#[test]
fn malformed_requests_never_take_down_the_accept_loop() {
    let server = start_hub(HubConfig::default());
    let addr = server.addr().to_string();
    let health = Client::new(&addr, "demo-beginner");

    let oversized_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(9000));
    let header_bomb = format!(
        "GET /healthz HTTP/1.1\r\n{}\r\n",
        "x-filler: y\r\n".repeat(100)
    );
    let attacks: Vec<Vec<u8>> = vec![
        b"".to_vec(),
        b"GARBAGE".to_vec(),
        b"GET /healthz".to_vec(), // truncated request line
        b"GET  HTTP/1.1\r\n\r\n".to_vec(),
        b"GET /healthz SMTP/1.0\r\n\r\n".to_vec(),
        oversized_line.into_bytes(),
        header_bomb.into_bytes(),
        b"POST /api/v1/jobs HTTP/1.1\r\ncontent-length: abc\r\n\r\n".to_vec(),
        b"POST /api/v1/jobs HTTP/1.1\r\ncontent-length: -5\r\n\r\n".to_vec(),
        b"POST /api/v1/jobs HTTP/1.1\r\ncontent-length: 9999999\r\n\r\n".to_vec(),
        b"POST /api/v1/jobs HTTP/1.1\r\nx-api-key: demo-beginner\r\ncontent-length: 7\r\n\r\nnot json".to_vec(),
        vec![0xff; 64],
        b"GET /healthz HTTP/1.1\r\nbad header\r\n\r\n".to_vec(),
        // The /cache/stage PUT path gets the same storm treatment.
        b"PUT /cache/stage/abc HTTP/1.1\r\ncontent-length: 0\r\n\r\n".to_vec(),
        b"PUT /cache/stage/abc HTTP/1.1\r\ncontent-length: 9999999\r\n\r\n".to_vec(),
        b"PUT /cache/stage/abc HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n"
            .to_vec(),
        b"PUT /cache/stage/abc HTTP/1.1\r\ncontent-length: 12\r\n\r\ngarbage body".to_vec(),
        b"PUT /cache/stage/zzz-not-hex HTTP/1.1\r\ncontent-length: 2\r\n\r\n{}".to_vec(),
        b"PUT /cache/stage/ffffffffffffffffffffffffffffffffff HTTP/1.1\r\ncontent-length: 2\r\n\r\n{}"
            .to_vec(),
    ];
    for (i, attack) in attacks.iter().enumerate() {
        let response = String::from_utf8_lossy(&raw_send(&addr, attack)).into_owned();
        if !response.is_empty() {
            let status: u16 = response
                .split(' ')
                .nth(1)
                .and_then(|code| code.parse().ok())
                .unwrap_or_else(|| panic!("attack {i}: unparseable response {response:?}"));
            assert!(
                (400..500).contains(&status),
                "attack {i} got HTTP {status}: {response:?}"
            );
        }
        // The accept loop is still alive after every attack.
        let alive = health.request("GET", "/healthz", None).expect("healthz");
        assert_eq!(alive.status, 200, "server died after attack {i}");
    }
    server.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary byte storms: whatever a client writes, the server
    /// answers with a clean 4xx (or closes the connection) and keeps
    /// serving — the accept loop never panics.
    #[test]
    fn arbitrary_bytes_never_panic_the_server(
        bytes in proptest::collection::vec(0u8..=255, 0..600),
    ) {
        // One shared server across all cases would hide a crash behind
        // reconnect noise; binding per case keeps the check airtight
        // and is still cheap at 48 cases.
        let server = start_hub(HubConfig { workers: 1, ..HubConfig::default() });
        let addr = server.addr().to_string();
        let _ = raw_send(&addr, &bytes);
        let alive = Client::new(&addr, "demo-beginner")
            .request("GET", "/healthz", None)
            .expect("healthz after storm");
        assert_eq!(alive.status, 200);
        server.shutdown();
    }

    /// Arbitrary PUT bodies to the cache protocol: anything that is
    /// not a correctly framed snapshot is a 4xx, never a stored entry
    /// and never a panic.
    #[test]
    fn arbitrary_cache_put_bodies_never_corrupt_the_hub(
        body in proptest::collection::vec(0u8..=255, 0..400),
        key in "[0-9a-f]{1,32}",
    ) {
        let server = start_hub(HubConfig { workers: 1, ..HubConfig::default() });
        let addr = server.addr().to_string();
        let mut raw = format!(
            "PUT /cache/stage/{key} HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        raw.extend_from_slice(&body);
        let response = String::from_utf8_lossy(&raw_send(&addr, &raw)).into_owned();
        if !response.is_empty() {
            let status = status_of(&response);
            prop_assert!(
                (400..500).contains(&status),
                "random body must be refused, got {status}"
            );
        }
        // The key must not have been stored, and the hub still serves.
        let fetch = String::from_utf8_lossy(&raw_send(
            &addr,
            format!("GET /cache/stage/{key} HTTP/1.1\r\n\r\n").as_bytes(),
        ))
        .into_owned();
        prop_assert_eq!(status_of(&fetch), 404);
        server.shutdown();
    }
}
