//! End-to-end tracing through the `forge` binary: `run --trace` and
//! `batch --trace` must emit Chrome trace-event JSON that round-trips
//! through the vendored serde parser, and `forge report` must summarize
//! it with per-stage percentiles.

use chipforge::obs;
use std::path::PathBuf;
use std::process::Command;

fn forge() -> Command {
    Command::new(env!("CARGO_BIN_EXE_forge"))
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("chipforge-trace-{}-{name}", std::process::id()))
}

const STAGES: [&str; 8] = [
    "elaborate",
    "synthesize",
    "size",
    "place",
    "cts",
    "route",
    "signoff",
    "export",
];

#[test]
fn run_trace_emits_chrome_json_with_every_stage() {
    let out = temp_path("run.json");
    let output = forge()
        .args(["run", "counter8", "--profile", "quick", "--trace"])
        .arg(&out)
        .output()
        .expect("forge run executes");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let text = std::fs::read_to_string(&out).expect("trace file written");
    std::fs::remove_file(&out).ok();

    let trace = obs::parse_chrome_json(&text).expect("valid Chrome trace JSON");
    for stage in STAGES {
        assert!(
            trace
                .spans
                .iter()
                .any(|s| s.category == "flow" && s.name == stage),
            "missing flow span `{stage}`"
        );
    }
    let root = trace
        .spans
        .iter()
        .find(|s| s.category == "flow" && s.name == "flow")
        .expect("flow root span");
    for stage in trace.spans.iter().filter(|s| s.name != "flow") {
        assert_eq!(
            stage.parent, root.id,
            "{} parented to flow root",
            stage.name
        );
        assert!(stage.dur_us >= 0.0);
    }
    // The metrics snapshot rides along in the same document.
    let doc = serde::json::parse(&text).expect("parses as a JSON document");
    let histograms = doc
        .get("metrics")
        .get("histograms")
        .seq()
        .expect("metrics histograms");
    assert!(
        histograms
            .iter()
            .any(|h| h.get("name").as_str() == Some("flow.stage_ms.synthesize")),
        "stage histogram exported"
    );
}

#[test]
fn batch_trace_and_report_round_trip() {
    let manifest = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/manifests/classroom.json"
    );
    let out = temp_path("batch.json");
    let output = forge()
        .args(["batch", manifest, "--workers", "2", "--trace"])
        .arg(&out)
        .output()
        .expect("forge batch executes");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let text = std::fs::read_to_string(&out).expect("trace file written");

    let trace = obs::parse_chrome_json(&text).expect("valid Chrome trace JSON");
    assert!(
        trace
            .spans
            .iter()
            .any(|s| s.category == "exec" && s.name == "batch"),
        "batch root span"
    );
    assert!(
        trace.spans.iter().filter(|s| s.category == "job").count() >= 9,
        "one span per job"
    );
    for stage in STAGES {
        assert!(
            trace
                .spans
                .iter()
                .any(|s| s.category == "flow" && s.name == stage),
            "missing flow span `{stage}`"
        );
    }
    // The classroom manifest resubmits counter8, so the trace must show
    // the cache serving it.
    assert!(
        trace.instants.iter().any(|i| i.name == "cache-hit"),
        "cache-hit instants present"
    );
    assert!(trace.instants.iter().any(|i| i.name == "enqueue"));

    let report = forge()
        .arg("report")
        .arg(&out)
        .output()
        .expect("forge report executes");
    std::fs::remove_file(&out).ok();
    assert!(
        report.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&report.stderr)
    );
    let stdout = String::from_utf8_lossy(&report.stdout);
    for needle in [
        "flow stages",
        "p50 ms",
        "p90 ms",
        "p99 ms",
        "synthesize",
        "cache-hit",
    ] {
        assert!(
            stdout.contains(needle),
            "report missing `{needle}`:\n{stdout}"
        );
    }
}

#[test]
fn report_rejects_traces_without_spans() {
    let out = temp_path("empty.json");
    std::fs::write(&out, r#"{"traceEvents": []}"#).expect("write empty trace");
    let output = forge()
        .arg("report")
        .arg(&out)
        .output()
        .expect("forge report executes");
    std::fs::remove_file(&out).ok();
    assert!(!output.status.success(), "empty traces must be rejected");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("no span events"),
        "unexpected error: {stderr}"
    );
}

#[test]
fn report_rejects_unparseable_input() {
    let out = temp_path("garbage.json");
    std::fs::write(&out, "not json at all").expect("write garbage");
    let output = forge()
        .arg("report")
        .arg(&out)
        .output()
        .expect("forge report executes");
    std::fs::remove_file(&out).ok();
    assert!(!output.status.success());
}
