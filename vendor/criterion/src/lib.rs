//! Offline stand-in for `criterion`: a minimal wall-clock benchmark
//! harness with the `Criterion` / `BenchmarkGroup` / `Bencher` API shape
//! the workspace's benches use.
//!
//! Each benchmark warms up briefly, then runs timed iterations inside a
//! per-benchmark time budget and reports the mean, minimum and maximum
//! iteration time. No statistics beyond that — the point is tracked,
//! comparable numbers without the crates.io dependency tree.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of the standard black box, like upstream criterion's.
pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 60;
const TIME_BUDGET: Duration = Duration::from_millis(1500);

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            prefix: name.to_string(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named group; benchmarks inside share configuration.
pub struct BenchmarkGroup<'a> {
    prefix: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.prefix, name);
        run_benchmark(&full, self.sample_size, &mut f);
        self
    }

    /// Ends the group (upstream renders summaries here; nothing to do).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` runs and times the workload.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, once per sample, within the global time budget.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up: one untimed call (fills caches, faults pages).
        black_box(f());
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
            if budget_start.elapsed() > TIME_BUDGET {
                break;
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().expect("nonempty");
    let max = bencher.samples.iter().max().expect("nonempty");
    println!(
        "{name:<40} mean {:>12} min {:>12} max {:>12} ({} samples)",
        format_duration(mean),
        format_duration(*min),
        format_duration(*max),
        bencher.samples.len()
    );
    record_json(name, mean, *min, *max, bencher.samples.len());
}

/// Appends one benchmark record to the JSON-lines file named by
/// `CHIPFORGE_BENCH_JSON`, so successive runs build a perf trajectory
/// (one `{"name", "mean_ns", "min_ns", "max_ns", "samples"}` object per
/// line). Off unless the variable is set; write errors are ignored —
/// a broken trajectory file must never fail the benchmark itself.
fn record_json(name: &str, mean: Duration, min: Duration, max: Duration, samples: usize) {
    let Some(path) = std::env::var_os("CHIPFORGE_BENCH_JSON") else {
        return;
    };
    let record = format!(
        "{{\"name\": \"{name}\", \"mean_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"samples\": {samples}}}\n",
        mean.as_nanos(),
        min.as_nanos(),
        max.as_nanos(),
    );
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        use std::io::Write;
        let _ = file.write_all(record.as_bytes());
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} us", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group function, like upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, like upstream criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmarks_run_and_record() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(5);
        group.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.finish();
        c.bench_function("tiny", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn json_records_append_to_the_named_file() {
        let path = std::env::temp_dir().join(format!("criterion-json-{}", std::process::id()));
        std::fs::remove_file(&path).ok();
        std::env::set_var("CHIPFORGE_BENCH_JSON", &path);
        let mut c = Criterion::default();
        c.bench_function("json_probe", |b| b.iter(|| black_box(2 + 2)));
        std::env::remove_var("CHIPFORGE_BENCH_JSON");
        let text = std::fs::read_to_string(&path).expect("trajectory file written");
        std::fs::remove_file(&path).ok();
        let line = text
            .lines()
            .find(|l| l.contains("\"json_probe\""))
            .expect("probe record present");
        for field in [
            "\"name\"",
            "\"mean_ns\"",
            "\"min_ns\"",
            "\"max_ns\"",
            "\"samples\"",
        ] {
            assert!(line.contains(field), "missing {field} in {line}");
        }
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(format_duration(Duration::from_micros(1500)), "1.50 ms");
        assert!(format_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
