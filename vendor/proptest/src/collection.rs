//! Collection strategies (`proptest::collection::vec`).

use crate::{Strategy, TestRng};
use std::ops::Range;

/// A length specification: fixed or uniformly drawn from a range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange {
            min: len,
            max: len + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        SizeRange {
            min: range.start,
            max: range.end,
        }
    }
}

/// Strategy producing `Vec`s of values drawn from `element`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Vectors with lengths in `size` and elements from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.max - self.size.min;
        let len = if span <= 1 {
            self.size.min
        } else {
            use rand::Rng as _;
            let offset: usize = rng.gen_range(0..span);
            self.size.min + offset
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
