//! Offline stand-in for `proptest`.
//!
//! Provides the strategy combinators and the `proptest!` macro surface
//! this workspace uses, backed by the vendored `rand` crate. Two
//! deliberate simplifications versus upstream:
//!
//! - **No shrinking.** A failing case panics with the plain assertion
//!   message; inputs are deterministic per test, so failures reproduce
//!   exactly on re-run.
//! - **Deterministic seeding.** Each generated test derives its RNG seed
//!   from the test function's name, so runs are stable across machines
//!   and repeat runs — reproducibility is a core requirement of this
//!   repository (see `tests/determinism.rs`).
//!
//! `*.proptest-regressions` files from upstream proptest are ignored.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::ops::Range;
use std::sync::Arc;

pub mod collection;
pub mod sample;

/// The commonly-imported surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 48 keeps the heavier flow properties
        // fast while still exploring a meaningful input set.
        ProptestConfig { cases: 48 }
    }
}

/// The RNG handed to strategies. Seeded per test from the test name.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates the deterministic RNG for a named test.
    #[must_use]
    pub fn for_test(test_name: &str) -> Self {
        // FNV-1a over the name gives every test its own stable stream.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(hash))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn unit_f64(&mut self) -> f64 {
        self.0.gen::<f64>()
    }

    fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        self.0.gen_range(0..bound)
    }
}

impl rand::RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds recursive strategies: `expand` receives the strategy for
    /// depth *n* and returns the strategy for depth *n + 1*; generation
    /// picks a random depth up to `depth`.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        expand: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut levels: Vec<BoxedStrategy<Self::Value>> = vec![self.boxed()];
        for _ in 0..depth {
            let deeper = expand(levels.last().expect("nonempty").clone());
            levels.push(deeper.boxed());
        }
        Recursive { levels }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    levels: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for Recursive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let level = rng.below(self.levels.len());
        self.levels[level].generate(rng)
    }
}

/// Uniform choice between strategies (the `prop_oneof!` backend).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Builds from pre-boxed options.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one case");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.options.len());
        self.options[pick].generate(rng)
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Finite values spanning a broad magnitude range (upstream's `any`
    /// includes NaN/∞; every use here wants ordinary numbers).
    fn arbitrary(rng: &mut TestRng) -> Self {
        let magnitude = rng.unit_f64() * 200.0 - 100.0;
        let scale = rng.unit_f64();
        magnitude * scale
    }
}

/// The `any::<T>()` entry point.
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// Strategy over the whole domain of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// `&str` patterns are regex-like string strategies, as in upstream
/// proptest. Supported subset: literal characters, `.` (printable
/// ASCII), character classes `[a-z0-9_]` with ranges and `\`-escapes,
/// the class shorthands `\d` / `\w` / `\s`, and the quantifiers
/// `{n}`, `{m,n}`, `?`, `*`, `+` (unbounded repeats cap at 8).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = pattern::parse(self);
        let mut out = String::new();
        for (ranges, (min, max)) in &atoms {
            let count = if min == max {
                *min
            } else {
                min + rng.below(max - min + 1)
            };
            for _ in 0..count {
                out.push(pattern::pick(ranges, rng));
            }
        }
        out
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        self.as_str().generate(rng)
    }
}

mod pattern {
    //! Tiny regex-subset compiler backing the `&str` strategy.

    use super::TestRng;

    /// Inclusive character ranges; a literal is a single-char range.
    type Ranges = Vec<(char, char)>;

    /// Longest repeat drawn for the unbounded quantifiers `*` and `+`.
    const UNBOUNDED_CAP: usize = 8;

    fn printable_ascii() -> Ranges {
        vec![(' ', '~')]
    }

    fn shorthand(c: char) -> Option<Ranges> {
        match c {
            'd' => Some(vec![('0', '9')]),
            'w' => Some(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
            's' => Some(vec![(' ', ' '), ('\t', '\t')]),
            _ => None,
        }
    }

    /// Compiles `pattern` into (character ranges, repeat bounds) atoms.
    pub(crate) fn parse(pattern: &str) -> Vec<(Ranges, (usize, usize))> {
        let mut chars = pattern.chars().peekable();
        let mut atoms = Vec::new();
        while let Some(c) = chars.next() {
            let ranges = match c {
                '.' => printable_ascii(),
                '[' => parse_class(&mut chars, pattern),
                '\\' => {
                    let esc = chars
                        .next()
                        .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                    shorthand(esc).unwrap_or_else(|| vec![(esc, esc)])
                }
                '(' | ')' | '|' | '^' | '$' => {
                    panic!("unsupported regex construct {c:?} in pattern {pattern:?}")
                }
                literal => vec![(literal, literal)],
            };
            let repeat = match chars.peek() {
                Some('{') => {
                    chars.next();
                    parse_braced_repeat(&mut chars, pattern)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('*') => {
                    chars.next();
                    (0, UNBOUNDED_CAP)
                }
                Some('+') => {
                    chars.next();
                    (1, UNBOUNDED_CAP)
                }
                _ => (1, 1),
            };
            atoms.push((ranges, repeat));
        }
        atoms
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, pattern: &str) -> Ranges {
        let mut ranges = Ranges::new();
        loop {
            let c = chars
                .next()
                .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"));
            match c {
                ']' => break,
                '\\' => {
                    let esc = chars
                        .next()
                        .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                    match shorthand(esc) {
                        Some(mut extra) => ranges.append(&mut extra),
                        None => ranges.push((esc, esc)),
                    }
                }
                lo => {
                    // `a-z` forms a range unless `-` is the closer.
                    if chars.peek() == Some(&'-') {
                        let mut ahead = chars.clone();
                        ahead.next();
                        match ahead.peek() {
                            Some(&hi) if hi != ']' => {
                                chars.next();
                                chars.next();
                                assert!(lo <= hi, "reversed range in pattern {pattern:?}");
                                ranges.push((lo, hi));
                                continue;
                            }
                            _ => {}
                        }
                    }
                    ranges.push((lo, lo));
                }
            }
        }
        assert!(!ranges.is_empty(), "empty class in pattern {pattern:?}");
        ranges
    }

    fn parse_braced_repeat(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
        pattern: &str,
    ) -> (usize, usize) {
        let mut min = String::new();
        let mut max = String::new();
        let mut saw_comma = false;
        loop {
            match chars.next() {
                Some('}') => break,
                Some(',') => saw_comma = true,
                Some(d) if d.is_ascii_digit() => {
                    if saw_comma {
                        max.push(d);
                    } else {
                        min.push(d);
                    }
                }
                other => panic!("bad repeat {other:?} in pattern {pattern:?}"),
            }
        }
        let lo: usize = min
            .parse()
            .unwrap_or_else(|_| panic!("bad repeat in pattern {pattern:?}"));
        let hi = if !saw_comma {
            lo
        } else if max.is_empty() {
            lo + UNBOUNDED_CAP
        } else {
            max.parse()
                .unwrap_or_else(|_| panic!("bad repeat in pattern {pattern:?}"))
        };
        assert!(lo <= hi, "reversed repeat in pattern {pattern:?}");
        (lo, hi)
    }

    /// Draws one character uniformly from the flattened ranges.
    pub(crate) fn pick(ranges: &Ranges, rng: &mut TestRng) -> char {
        let total: u32 = ranges
            .iter()
            .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
            .sum();
        let mut index = rng.below(total as usize) as u32;
        for (lo, hi) in ranges {
            let span = *hi as u32 - *lo as u32 + 1;
            if index < span {
                return char::from_u32(*lo as u32 + index).expect("range stays in valid chars");
            }
            index -= span;
        }
        unreachable!("index within total span")
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
);

/// Uniform choice between equally-weighted strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Property assertion; in this stand-in a failure panics immediately.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` (keep the `#[test]` attribute on each fn, as with
/// upstream proptest) that runs the body over `config.cases` random
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); ) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let ($($arg,)+) = ($($crate::Strategy::generate(&($strategy), &mut __rng),)+);
                $body
            }
        }
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_and_oneof_stay_in_domain() {
        let mut rng = TestRng::for_test("ranges");
        let s = prop_oneof![Just(1u32), Just(2u32), (10u32..20).prop_map(|x| x)];
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v == 1 || v == 2 || (10..20).contains(&v));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        let leaf = prop_oneof![Just("x".to_string()), Just("y".to_string())];
        let expr = leaf.prop_recursive(4, 64, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| format!("({a} {b})"))
        });
        let mut rng = TestRng::for_test("recursive");
        for _ in 0..100 {
            let e = expr.generate(&mut rng);
            assert!(e.contains('x') || e.contains('y'));
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = TestRng::for_test("same");
        let mut b = TestRng::for_test("same");
        let mut c = TestRng::for_test("different");
        let s = 0u64..1_000_000;
        for _ in 0..32 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
        let draws_a: Vec<u64> = (0..8).map(|_| s.generate(&mut a)).collect();
        let draws_c: Vec<u64> = (0..8).map(|_| s.generate(&mut c)).collect();
        assert_ne!(draws_a, draws_c);
    }

    #[test]
    fn string_patterns_match_their_own_shape() {
        let mut rng = TestRng::for_test("patterns");
        for _ in 0..100 {
            let ident = "[a-zA-Z][a-zA-Z0-9_]{0,12}".generate(&mut rng);
            assert!((1..=13).contains(&ident.chars().count()), "{ident:?}");
            let mut chars = ident.chars();
            assert!(chars.next().expect("nonempty").is_ascii_alphabetic());
            assert!(chars.all(|c| c.is_ascii_alphanumeric() || c == '_'));

            let free = ".{0,200}".generate(&mut rng);
            assert!(free.chars().count() <= 200);
            assert!(free.chars().all(|c| (' '..='~').contains(&c)));

            let soup = "[a-z0-9<>=;(){}\\[\\] ]{0,10}".generate(&mut rng);
            assert!(soup.chars().count() <= 10);
            assert!(soup.chars().all(|c| c.is_ascii_lowercase()
                || c.is_ascii_digit()
                || "<>=;(){}[] ".contains(c)));

            let digits = "\\d{3}x?z+".generate(&mut rng);
            assert!(digits.starts_with(|c: char| c.is_ascii_digit()));
            assert!(digits.ends_with('z'));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_multiple_args(x in 0usize..10, (a, b) in (0u8..4, any::<bool>())) {
            prop_assert!(x < 10);
            prop_assert!(a < 4);
            let _ = b;
        }

        #[test]
        fn collection_vec_sizes(items in crate::collection::vec(0i64..5, 3..7)) {
            prop_assert!((3..7).contains(&items.len()));
            prop_assert!(items.iter().all(|v| (0..5).contains(v)));
        }

        #[test]
        fn select_picks_members(node in crate::sample::select(vec![2u32, 3, 5, 7])) {
            prop_assert!([2u32, 3, 5, 7].contains(&node));
        }
    }
}
