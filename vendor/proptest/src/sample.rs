//! Sampling strategies (`proptest::sample::select`).

use crate::{Strategy, TestRng};

/// Strategy choosing uniformly from a fixed set of values.
pub struct Select<T: Clone> {
    options: Vec<T>,
}

/// Uniform choice from `options` (must be nonempty).
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select needs at least one option");
    Select { options }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        use rand::Rng as _;
        let pick: usize = rng.gen_range(0..self.options.len());
        self.options[pick].clone()
    }
}
