//! Offline stand-in for the `rand` crate, API-compatible with the 0.8
//! subset this workspace uses.
//!
//! The container building this repository has no network access to
//! crates.io, so the workspace vendors the handful of external crates it
//! depends on. This one provides [`rngs::StdRng`], the [`Rng`] /
//! [`SeedableRng`] traits, `gen`, `gen_range` and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the
//! upstream ChaCha12, so absolute streams differ from crates.io `rand`,
//! but every consumer in this workspace only relies on *seed
//! determinism* (same seed, same stream) and statistical quality, both
//! of which hold.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
    }
}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from the full value domain
/// (the `Standard` distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for i32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges a value can be drawn from uniformly (`gen_range` argument).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded sampling (Lemire); the bias for
                // spans far below 2^64 is negligible for simulation use.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + hi) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let unit = <$t as Standard>::sample_standard(rng);
                start + unit * (end - start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` from its full domain (`Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the small generator is the same engine here.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seed_determinism() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range_and_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "hits {hits}");
    }
}
