//! JSON rendering and parsing for the [`Value`](crate::Value) document
//! model — the `serde_json` half of the vendored stand-in.

use crate::{Deserialize, Error, Serialize, Value};
use std::fmt::Write as _;

/// Serializes `value` to compact JSON.
#[must_use]
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    out
}

/// Serializes `value` to human-readable, two-space-indented JSON.
#[must_use]
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    out
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or on a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    T::from_value(&parse(text)?)
}

/// Parses JSON text into a raw [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::U64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::F64(x) => {
            if x.is_finite() {
                // Rust's shortest-roundtrip formatting; force a decimal
                // point so integral floats stay floats on re-parse.
                let text = format!("{x}");
                out.push_str(&text);
                if !text.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push(']');
        }
        Value::Map(pairs) => {
            out.push('{');
            for (i, (key, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                // JSON keys must be strings; stringify non-string keys.
                match key {
                    Value::Str(s) => write_string(out, s),
                    other => {
                        let mut raw = String::new();
                        write_value(&mut raw, other, None, 0);
                        write_string(out, &raw);
                    }
                }
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            if !pairs.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(Error::new(format!(
                "unexpected `{}` at byte {}",
                other as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((Value::Str(key), value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(pairs));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while self.peek().is_some_and(|b| b != b'"' && b != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u codepoint"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_round_trip() {
        let value = Value::Map(vec![
            (
                Value::Str("name".into()),
                Value::Str("counter \"8\"".into()),
            ),
            (Value::Str("cells".into()), Value::U64(42)),
            (Value::Str("area".into()), Value::F64(12.5)),
            (Value::Str("neg".into()), Value::I64(-3)),
            (Value::Str("ok".into()), Value::Bool(true)),
            (Value::Str("none".into()), Value::Null),
            (
                Value::Str("steps".into()),
                Value::Seq(vec![Value::F64(1.0), Value::F64(2.25)]),
            ),
        ]);
        let compact = {
            let mut s = String::new();
            write_value(&mut s, &value, None, 0);
            s
        };
        assert_eq!(parse(&compact).unwrap(), value);
        let pretty = {
            let mut s = String::new();
            write_value(&mut s, &value, Some(2), 0);
            s
        };
        assert_eq!(parse(&pretty).unwrap(), value);
        assert!(pretty.contains("\n  \"name\""));
    }

    #[test]
    fn integral_floats_survive_round_trip() {
        let v = Value::F64(2.0);
        let text = {
            let mut s = String::new();
            write_value(&mut s, &v, None, 0);
            s
        };
        assert_eq!(text, "2.0");
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("1 2").is_err());
    }

    #[test]
    fn typed_round_trip() {
        let xs = vec![1.5f64, 2.0, -3.25];
        let text = to_string(&xs);
        let back: Vec<f64> = from_str(&text).unwrap();
        assert_eq!(back, xs);
    }
}
