//! Offline stand-in for `serde` (plus the JSON half of `serde_json`).
//!
//! The build container has no crates.io access, so the workspace vendors
//! its external dependencies. Instead of upstream serde's
//! visitor/serializer architecture, this crate uses a simple document
//! model: types convert to and from a [`Value`] tree, and the [`json`]
//! module renders/parses that tree as JSON text. The derive macros
//! (`#[derive(Serialize, Deserialize)]`, re-exported from the companion
//! `serde_derive` crate) generate the `Value` conversions field by field
//! and honour `#[serde(skip)]`.
//!
//! The API surface intentionally mirrors the subset the workspace uses:
//! `use serde::{Serialize, Deserialize}` plus derive, and JSON encoding
//! through [`json::to_string`] / [`json::from_str`].

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

/// A serialized document: the common shape every serializable type maps
/// onto.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Value>),
    /// Ordered key/value map (insertion order preserved for stable
    /// output).
    Map(Vec<(Value, Value)>),
}

static NULL_VALUE: Value = Value::Null;

impl Value {
    /// Looks up a map entry by string key; absent keys read as `null` so
    /// optional fields deserialize permissively.
    #[must_use]
    pub fn get(&self, key: &str) -> &Value {
        if let Value::Map(pairs) = self {
            for (k, v) in pairs {
                if matches!(k, Value::Str(s) if s == key) {
                    return v;
                }
            }
        }
        &NULL_VALUE
    }

    /// Same as [`Value::get`], kept separate for derive-generated code.
    ///
    /// # Errors
    ///
    /// Returns an error when `self` is not a map.
    pub fn field(&self, key: &str) -> Result<&Value, Error> {
        match self {
            Value::Map(_) => Ok(self.get(key)),
            other => Err(Error::new(format!(
                "expected map with field `{key}`, got {}",
                other.kind()
            ))),
        }
    }

    /// The sequence elements.
    ///
    /// # Errors
    ///
    /// Returns an error when `self` is not a sequence.
    pub fn seq(&self) -> Result<&[Value], Error> {
        match self {
            Value::Seq(items) => Ok(items),
            other => Err(Error::new(format!("expected seq, got {}", other.kind()))),
        }
    }

    /// The string content, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric content widened to `f64`, if numeric.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(x) => Some(*x),
            Value::I64(x) => Some(*x as f64),
            Value::U64(x) => Some(*x as f64),
            _ => None,
        }
    }

    /// Unsigned integer content, if representable.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(x) => Some(*x),
            Value::I64(x) if *x >= 0 => Some(*x as u64),
            _ => None,
        }
    }

    /// A short name of the variant, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "seq",
            Value::Map(_) => "map",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        Error(message.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the document model.
pub trait Serialize {
    /// Converts `self` to a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Conversion out of the document model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value shape does not match.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// --- primitive impls ---

macro_rules! ser_de_int {
    ($($t:ty => $variant:ident as $wide:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::$variant(*self as $wide)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::I64(x) => <$t>::try_from(*x)
                        .map_err(|_| Error::new(format!("{x} out of range for {}", stringify!($t)))),
                    Value::U64(x) => <$t>::try_from(*x)
                        .map_err(|_| Error::new(format!("{x} out of range for {}", stringify!($t)))),
                    other => Err(Error::new(format!(
                        "expected integer, got {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

ser_de_int!(
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64, u64 => U64 as u64,
    usize => U64 as u64,
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64, i64 => I64 as i64,
    isize => I64 as i64
);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                value
                    .as_f64()
                    .map(|x| x as $t)
                    .ok_or_else(|| Error::new(format!("expected number, got {}", value.kind())))
            }
        }
    )*};
}

ser_de_float!(f32, f64);

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(_value: &Value) -> Result<Self, Error> {
        Ok(())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::new("expected single-char string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::new("expected single-char string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::new(format!("expected string, got {}", value.kind())))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    /// Deserializes by leaking the parsed string. Intended for the
    /// handful of `&'static str` name fields in this workspace, which
    /// are deserialized rarely (if ever) — do not use in a hot loop.
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(|s| &*s.to_string().leak())
            .ok_or_else(|| Error::new(format!("expected string, got {}", value.kind())))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.seq()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = value
            .seq()?
            .iter()
            .map(T::from_value)
            .collect::<Result<_, _>>()?;
        let n = items.len();
        <[T; N]>::try_from(items).map_err(|_| Error::new(format!("expected {N} elements, got {n}")))
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value.seq()?;
                Ok(($(
                    $name::from_value(items.get($idx).unwrap_or(&Value::Null))?,
                )+))
            }
        }
    )*};
}

ser_de_tuple!(
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
);

fn map_to_value<'a, K, V, I>(entries: I) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    Value::Map(entries.map(|(k, v)| (k.to_value(), v.to_value())).collect())
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Map(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((K::from_value(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::new(format!("expected map, got {}", other.kind()))),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Map(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((K::from_value(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::new(format!("expected map, got {}", other.kind()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Vec::<u8>::from_value(&vec![1u8, 2, 3].to_value()).unwrap(),
            vec![1, 2, 3]
        );
        assert_eq!(
            <[f64; 3]>::from_value(&[0.1, 0.2, 0.3].to_value()).unwrap(),
            [0.1, 0.2, 0.3]
        );
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn missing_map_fields_read_as_null() {
        let v = Value::Map(vec![(Value::Str("a".into()), Value::U64(1))]);
        assert_eq!(v.get("a"), &Value::U64(1));
        assert_eq!(v.get("b"), &Value::Null);
        assert_eq!(Option::<u64>::from_value(v.get("b")).unwrap(), None);
    }
}
