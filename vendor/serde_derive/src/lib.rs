//! Offline stand-in for `serde_derive`.
//!
//! Generates `serde::Serialize` / `serde::Deserialize` impls against the
//! vendored Value-model `serde` crate. Implemented directly on
//! `proc_macro` token trees (no `syn`/`quote`, which are unavailable
//! offline). Supports the shapes this workspace derives on:
//!
//! - structs with named fields (honouring `#[serde(skip)]`)
//! - tuple structs (newtypes serialize transparently)
//! - unit structs
//! - enums with unit, tuple and struct variants (externally tagged)
//!
//! Generics are not supported — no derived type in the workspace needs
//! them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the Value-model `Serialize` impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives the Value-model `Deserialize` impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let source = match parse(input) {
        Ok(parsed) => parsed,
        Err(message) => {
            return format!("::std::compile_error!({message:?});")
                .parse()
                .expect("literal compile_error parses");
        }
    };
    let code = match mode {
        Mode::Serialize => gen_serialize(&source),
        Mode::Deserialize => gen_deserialize(&source),
    };
    code.parse().unwrap_or_else(|e| {
        format!("::std::compile_error!(\"serde_derive internal codegen error: {e}\");")
            .parse()
            .expect("fallback parses")
    })
}

struct Field {
    name: String,
    skip: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Source {
    name: String,
    shape: Shape,
}

// --- token parsing ---

struct Cursor {
    trees: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            trees: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.trees.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let tree = self.trees.get(self.pos).cloned();
        if tree.is_some() {
            self.pos += 1;
        }
        tree
    }

    /// Consumes leading `#[...]` attributes; returns true if one of them
    /// is `#[serde(skip)]` (or `skip_serializing`/`skip_deserializing`,
    /// which this stand-in treats identically).
    fn skip_attributes(&mut self) -> bool {
        let mut skip = false;
        while matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            self.next();
            if let Some(TokenTree::Group(group)) = self.next() {
                skip |= attribute_is_serde_skip(&group.stream());
            }
        }
        skip
    }

    fn skip_visibility(&mut self) {
        if matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
            self.next();
            if matches!(
                self.peek(),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                self.next();
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(ident)) => Ok(ident.to_string()),
            other => Err(format!("expected identifier, got {other:?}")),
        }
    }

    /// Consumes tokens until a top-level comma (outside `<...>`), and
    /// eats the comma. Returns false when the cursor was already at the
    /// end.
    fn skip_until_comma(&mut self) -> bool {
        let mut angle_depth = 0i32;
        let mut consumed = false;
        while let Some(tree) = self.peek() {
            if let TokenTree::Punct(p) = tree {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        self.next();
                        return true;
                    }
                    _ => {}
                }
            }
            self.next();
            consumed = true;
        }
        consumed
    }
}

fn attribute_is_serde_skip(stream: &TokenStream) -> bool {
    let trees: Vec<TokenTree> = stream.clone().into_iter().collect();
    match trees.as_slice() {
        [TokenTree::Ident(name), TokenTree::Group(args)] if name.to_string() == "serde" => args
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string().starts_with("skip"))),
        _ => false,
    }
}

fn parse(input: TokenStream) -> Result<Source, String> {
    let mut cursor = Cursor::new(input);
    cursor.skip_attributes();
    cursor.skip_visibility();
    let keyword = cursor.expect_ident()?;
    let name = cursor.expect_ident()?;
    if matches!(cursor.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde_derive does not support generic type `{name}`"
        ));
    }
    let shape = match keyword.as_str() {
        "struct" => match cursor.next() {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(group.stream()))
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(group.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => return Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match cursor.next() {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(group.stream())?)
            }
            other => return Err(format!("unsupported enum body: {other:?}")),
        },
        other => return Err(format!("cannot derive for `{other}` items")),
    };
    Ok(Source { name, shape })
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut cursor = Cursor::new(stream);
    let mut fields = Vec::new();
    loop {
        let skip = cursor.skip_attributes();
        cursor.skip_visibility();
        let Some(TokenTree::Ident(ident)) = cursor.next() else {
            break;
        };
        fields.push(Field {
            name: ident.to_string(),
            skip,
        });
        // Consume `: Type,`.
        if !cursor.skip_until_comma() {
            break;
        }
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut cursor = Cursor::new(stream);
    let mut count = 0;
    loop {
        cursor.skip_attributes();
        cursor.skip_visibility();
        if cursor.peek().is_none() {
            break;
        }
        count += 1;
        if !cursor.skip_until_comma() {
            break;
        }
        if cursor.peek().is_none() {
            break; // trailing comma
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut cursor = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        cursor.skip_attributes();
        let Some(tree) = cursor.next() else { break };
        let TokenTree::Ident(ident) = tree else {
            return Err(format!("expected variant name, got {tree:?}"));
        };
        let kind = match cursor.peek() {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                let count = count_tuple_fields(group.stream());
                cursor.next();
                VariantKind::Tuple(count)
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(group.stream());
                cursor.next();
                VariantKind::Named(fields)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant {
            name: ident.to_string(),
            kind,
        });
        // Consume a possible discriminant and the separating comma.
        cursor.skip_until_comma();
    }
    Ok(variants)
}

// --- code generation ---

fn str_value(text: &str) -> String {
    format!("::serde::Value::Str(::std::string::String::from({text:?}))")
}

fn gen_serialize(source: &Source) -> String {
    let name = &source.name;
    let body = match &source.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .filter(|f| !f.skip)
                .map(|f| {
                    format!(
                        "({}, ::serde::Serialize::to_value(&self.{}))",
                        str_value(&f.name),
                        f.name
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(0) | Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|variant| {
                    let v = &variant.name;
                    match &variant.kind {
                        VariantKind::Unit => {
                            format!("{name}::{v} => {},", str_value(v))
                        }
                        VariantKind::Tuple(1) => format!(
                            "{name}::{v}(__a0) => ::serde::Value::Map(::std::vec![({}, \
                             ::serde::Serialize::to_value(__a0))]),",
                            str_value(v)
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__a{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(__a{i})"))
                                .collect();
                            format!(
                                "{name}::{v}({}) => ::serde::Value::Map(::std::vec![({}, \
                                 ::serde::Value::Seq(::std::vec![{}]))]),",
                                binds.join(", "),
                                str_value(v),
                                items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let entries: Vec<String> = fields
                                .iter()
                                .filter(|f| !f.skip)
                                .map(|f| {
                                    format!(
                                        "({}, ::serde::Serialize::to_value({}))",
                                        str_value(&f.name),
                                        f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{v} {{ {} }} => ::serde::Value::Map(::std::vec![({}, \
                                 ::serde::Value::Map(::std::vec![{}]))]),",
                                binds.join(", "),
                                str_value(v),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
         fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

fn gen_deserialize(source: &Source) -> String {
    let name = &source.name;
    let body = match &source.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    if f.skip {
                        format!("{}: ::std::default::Default::default()", f.name)
                    } else {
                        format!(
                            "{}: ::serde::Deserialize::from_value(__value.field({:?})?)?",
                            f.name, f.name
                        )
                    }
                })
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::TupleStruct(0) => format!("::std::result::Result::Ok({name}())"),
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(__items.get({i}).unwrap_or(&::serde::Value::Null))?"
                    )
                })
                .collect();
            format!(
                "let __items = __value.seq()?; ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    format!(
                        "{:?} => ::std::result::Result::Ok({name}::{}),",
                        v.name, v.name
                    )
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|variant| {
                    let v = &variant.name;
                    match &variant.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "{v:?} => ::std::result::Result::Ok({name}::{v}(\
                             ::serde::Deserialize::from_value(_inner)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(__items.get({i}).unwrap_or(&::serde::Value::Null))?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{v:?} => {{ let __items = _inner.seq()?; \
                                 ::std::result::Result::Ok({name}::{v}({})) }}",
                                items.join(", ")
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    if f.skip {
                                        format!(
                                            "{}: ::std::default::Default::default()",
                                            f.name
                                        )
                                    } else {
                                        format!(
                                            "{}: ::serde::Deserialize::from_value(_inner.field({:?})?)?",
                                            f.name, f.name
                                        )
                                    }
                                })
                                .collect();
                            Some(format!(
                                "{v:?} => ::std::result::Result::Ok({name}::{v} {{ {} }}),",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __value {{ \
                   ::serde::Value::Str(__s) => match __s.as_str() {{ \
                     {} \
                     __other => ::std::result::Result::Err(::serde::Error::new(\
                       ::std::format!(\"unknown variant `{{__other}}` of {name}\"))), \
                   }}, \
                   ::serde::Value::Map(__pairs) if __pairs.len() == 1 => {{ \
                     let (_key, _inner) = &__pairs[0]; \
                     match _key.as_str().unwrap_or(\"\") {{ \
                       {} \
                       __other => ::std::result::Result::Err(::serde::Error::new(\
                         ::std::format!(\"unknown variant `{{__other}}` of {name}\"))), \
                     }} \
                   }}, \
                   __other => ::std::result::Result::Err(::serde::Error::new(\
                     ::std::format!(\"expected {name} variant, got {{}}\", __other.kind()))), \
                 }}",
                unit_arms.join(" "),
                data_arms.join(" ")
            )
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
         fn from_value(__value: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{ {body} }} }}"
    )
}
